//! Packed coordinate columns for the halo kernels.
//!
//! The FOF tree build, neighbour queries, and MBP potential sums all work in
//! `f64` analysis precision over particle positions. [`Coords`] stores those
//! positions as three packed columns, widened from `f32` exactly once (the
//! AoS path re-widened per pair), so the hot loops sweep contiguous lanes.
//!
//! Every column kernel is bit-identical to its row-based reference: the
//! widening is the same `as f64` conversion per component, and the distance
//! and summation expressions keep the reference association. The layout
//! conformance suite compares the two paths over the adversarial corpus.

use nbody::particle::Particle;
use nbody::soa::ParticleSoA;

/// Three packed `f64` coordinate columns (one per axis).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Coords {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
}

impl Coords {
    /// An empty column set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from row-major positions.
    pub fn from_rows(positions: &[[f64; 3]]) -> Self {
        Coords {
            xs: positions.iter().map(|p| p[0]).collect(),
            ys: positions.iter().map(|p| p[1]).collect(),
            zs: positions.iter().map(|p| p[2]).collect(),
        }
    }

    /// Build from AoS particles, widening each component with the same
    /// `as f64` conversion as [`Particle::pos_f64`].
    pub fn from_particles(particles: &[Particle]) -> Self {
        Coords {
            xs: particles.iter().map(|p| p.pos[0] as f64).collect(),
            ys: particles.iter().map(|p| p.pos[1] as f64).collect(),
            zs: particles.iter().map(|p| p.pos[2] as f64).collect(),
        }
    }

    /// Build from SoA particle columns (same widening, column sweeps).
    pub fn from_soa(soa: &ParticleSoA) -> Self {
        Coords {
            xs: soa.pos_x().iter().map(|&v| v as f64).collect(),
            ys: soa.pos_y().iter().map(|&v| v as f64).collect(),
            zs: soa.pos_z().iter().map(|&v| v as f64).collect(),
        }
    }

    /// Append one point.
    pub fn push(&mut self, p: [f64; 3]) {
        self.xs.push(p[0]);
        self.ys.push(p[1]);
        self.zs.push(p[2]);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Reassemble point `i` as a row (panics when out of bounds).
    pub fn get(&self, i: usize) -> [f64; 3] {
        [self.xs[i], self.ys[i], self.zs[i]]
    }

    /// Packed x column.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Packed y column.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Packed z column.
    pub fn zs(&self) -> &[f64] {
        &self.zs
    }

    /// The packed column for axis `d` (0 = x, 1 = y, 2 = z).
    pub fn axis(&self, d: usize) -> &[f64] {
        match d {
            0 => &self.xs,
            1 => &self.ys,
            2 => &self.zs,
            _ => panic!("axis {d} out of range"),
        }
    }

    /// Convert back to row-major positions.
    pub fn to_rows(&self) -> Vec<[f64; 3]> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_round_trip() {
        let rows = vec![[1.0, 2.0, 3.0], [-0.0, f64::NAN, 4.5], [7.0, 8.0, 9.0]];
        let c = Coords::from_rows(&rows);
        assert_eq!(c.len(), 3);
        let back = c.to_rows();
        for (a, b) in rows.iter().zip(&back) {
            for d in 0..3 {
                assert_eq!(a[d].to_bits(), b[d].to_bits());
            }
        }
        assert!(std::ptr::eq(c.axis(0), c.xs()));
        assert!(std::ptr::eq(c.axis(1), c.ys()));
        assert!(std::ptr::eq(c.axis(2), c.zs()));
    }

    #[test]
    fn particle_widening_matches_pos_f64() {
        let parts = vec![
            Particle::at_rest([1.5, -0.0, f32::NAN], 1.0, 0),
            Particle::at_rest([f32::MIN_POSITIVE, 2.25, -7.125], 1.0, 1),
        ];
        let c = Coords::from_particles(&parts);
        let soa = ParticleSoA::from_aos(&parts);
        let cs = Coords::from_soa(&soa);
        for (i, p) in parts.iter().enumerate() {
            let r = p.pos_f64();
            for d in 0..3 {
                assert_eq!(c.get(i)[d].to_bits(), r[d].to_bits());
                assert_eq!(cs.get(i)[d].to_bits(), r[d].to_bits());
            }
        }
    }

    #[test]
    fn push_and_empty() {
        let mut c = Coords::new();
        assert!(c.is_empty());
        c.push([1.0, 2.0, 3.0]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(0), [1.0, 2.0, 3.0]);
    }
}
