//! Halo evolution tracking across snapshots (paper §3: "Once the first
//! bound objects (halos) form, analysis tasks are carried out to not only
//! capture these structures within one time snapshot but also to track their
//! evolution to the end of the simulation. Over time, halos merge and
//! accrete mass").
//!
//! Matching is by shared particle tags: halo B at the later step is the
//! *descendant* of halo A at the earlier step if B holds the plurality of
//! A's particles. Several progenitors mapping to one descendant is a
//! merger; a halo with no descendant is disrupted.

use crate::catalog::HaloCatalog;
use std::collections::HashMap;

/// One progenitor → descendant link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloLink {
    /// Halo id in the earlier catalog.
    pub progenitor: u64,
    /// Halo id in the later catalog.
    pub descendant: u64,
    /// Number of shared particles.
    pub shared: usize,
    /// Progenitor member count (for match-fraction computations).
    pub progenitor_size: usize,
}

impl HaloLink {
    /// Fraction of the progenitor's particles found in the descendant.
    pub fn match_fraction(&self) -> f64 {
        self.shared as f64 / self.progenitor_size as f64
    }
}

/// The links between two snapshots' catalogs.
#[derive(Debug, Clone, Default)]
pub struct TrackingResult {
    /// One link per progenitor that found a descendant.
    pub links: Vec<HaloLink>,
    /// Progenitor ids with no descendant (disrupted or below threshold).
    pub disrupted: Vec<u64>,
    /// Descendant ids with no progenitor (newly formed).
    pub newborn: Vec<u64>,
}

impl TrackingResult {
    /// Descendants receiving more than one progenitor (mergers), with their
    /// progenitor lists (largest contribution first).
    pub fn mergers(&self) -> Vec<(u64, Vec<u64>)> {
        let mut by_desc: HashMap<u64, Vec<&HaloLink>> = HashMap::new();
        for l in &self.links {
            by_desc.entry(l.descendant).or_default().push(l);
        }
        let mut out: Vec<(u64, Vec<u64>)> = by_desc
            .into_iter()
            .filter(|(_, ls)| ls.len() > 1)
            .map(|(d, mut ls)| {
                ls.sort_by(|a, b| {
                    b.shared
                        .cmp(&a.shared)
                        .then(a.progenitor.cmp(&b.progenitor))
                });
                (d, ls.iter().map(|l| l.progenitor).collect())
            })
            .collect();
        out.sort_by_key(|(d, _)| *d);
        out
    }
}

/// Link halos of `earlier` to halos of `later` by shared particle tags.
///
/// `min_fraction` is the minimum fraction of a progenitor's particles that
/// must land in one descendant for the link to count (0.5 is typical:
/// plurality-with-majority).
pub fn track_halos(
    earlier: &HaloCatalog,
    later: &HaloCatalog,
    min_fraction: f64,
) -> TrackingResult {
    assert!((0.0..=1.0).contains(&min_fraction));
    // Tag → later-halo id.
    let mut tag_owner: HashMap<u64, u64> = HashMap::new();
    for h in &later.halos {
        for p in &h.particles {
            tag_owner.insert(p.tag, h.id);
        }
    }
    let mut links = Vec::new();
    let mut disrupted = Vec::new();
    let mut matched_descendants: std::collections::HashSet<u64> = Default::default();
    for h in &earlier.halos {
        // Count shared tags per candidate descendant.
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for p in &h.particles {
            if let Some(&d) = tag_owner.get(&p.tag) {
                *counts.entry(d).or_insert(0) += 1;
            }
        }
        let best = counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
        match best {
            Some((descendant, shared)) if shared as f64 / h.count() as f64 >= min_fraction => {
                links.push(HaloLink {
                    progenitor: h.id,
                    descendant,
                    shared,
                    progenitor_size: h.count(),
                });
                matched_descendants.insert(descendant);
            }
            _ => disrupted.push(h.id),
        }
    }
    let newborn = later
        .halos
        .iter()
        .map(|h| h.id)
        .filter(|id| !matched_descendants.contains(id))
        .collect();
    links.sort_by_key(|l| l.progenitor);
    disrupted.sort_unstable();
    TrackingResult {
        links,
        disrupted,
        newborn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Halo;
    use nbody::particle::Particle;

    fn halo_with_tags(tags: &[u64]) -> Halo {
        Halo::from_particles(
            tags.iter()
                .map(|&t| Particle::at_rest([t as f32 % 7.0, 0.0, 0.0], 1.0, t))
                .collect(),
        )
    }

    fn catalog(halos: Vec<Halo>) -> HaloCatalog {
        let mut c = HaloCatalog::new();
        c.halos = halos;
        c
    }

    #[test]
    fn stable_halo_links_to_itself() {
        let a = catalog(vec![halo_with_tags(&[1, 2, 3, 4])]);
        let b = catalog(vec![halo_with_tags(&[1, 2, 3, 4, 5])]); // accreted tag 5
        let t = track_halos(&a, &b, 0.5);
        assert_eq!(t.links.len(), 1);
        assert_eq!(t.links[0].progenitor, 1);
        assert_eq!(t.links[0].descendant, 1);
        assert_eq!(t.links[0].shared, 4);
        assert_eq!(t.links[0].match_fraction(), 1.0);
        assert!(t.disrupted.is_empty());
        assert!(t.newborn.is_empty());
    }

    #[test]
    fn merger_detected() {
        let a = catalog(vec![
            halo_with_tags(&[1, 2, 3]),
            halo_with_tags(&[10, 11, 12, 13]),
        ]);
        // One descendant holds both progenitors' particles.
        let b = catalog(vec![halo_with_tags(&[1, 2, 3, 10, 11, 12, 13])]);
        let t = track_halos(&a, &b, 0.5);
        assert_eq!(t.links.len(), 2);
        let mergers = t.mergers();
        assert_eq!(mergers.len(), 1);
        let (desc, progs) = &mergers[0];
        assert_eq!(*desc, 1);
        // Largest contributor first (the 4-particle progenitor, id 10).
        assert_eq!(progs, &vec![10, 1]);
    }

    #[test]
    fn disruption_and_birth() {
        let a = catalog(vec![halo_with_tags(&[1, 2, 3, 4])]);
        // Progenitor's particles scattered (not in any later halo); a brand
        // new halo appears from other particles.
        let b = catalog(vec![halo_with_tags(&[100, 101, 102])]);
        let t = track_halos(&a, &b, 0.5);
        assert!(t.links.is_empty());
        assert_eq!(t.disrupted, vec![1]);
        assert_eq!(t.newborn, vec![100]);
    }

    #[test]
    fn fragmentation_links_to_plurality_piece() {
        // Progenitor splits 60/40 between two descendants.
        let a = catalog(vec![halo_with_tags(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10])]);
        let b = catalog(vec![
            halo_with_tags(&[1, 2, 3, 4, 5, 6]),
            halo_with_tags(&[7, 8, 9, 10, 50]),
        ]);
        let t = track_halos(&a, &b, 0.5);
        assert_eq!(t.links.len(), 1);
        assert_eq!(t.links[0].descendant, 1, "majority piece wins");
        assert_eq!(t.links[0].shared, 6);
        // The 40% piece counts as newborn.
        assert_eq!(t.newborn, vec![7]);
    }

    #[test]
    fn min_fraction_gates_weak_matches() {
        let a = catalog(vec![halo_with_tags(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10])]);
        let b = catalog(vec![halo_with_tags(&[1, 2, 3, 200, 201, 202, 203])]);
        // Only 30% of the progenitor survives into the descendant.
        let strict = track_halos(&a, &b, 0.5);
        assert!(strict.links.is_empty());
        assert_eq!(strict.disrupted, vec![1]);
        let loose = track_halos(&a, &b, 0.2);
        assert_eq!(loose.links.len(), 1);
        assert!((loose.links[0].match_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_catalogs() {
        let t = track_halos(&HaloCatalog::new(), &HaloCatalog::new(), 0.5);
        assert!(t.links.is_empty() && t.disrupted.is_empty() && t.newborn.is_empty());
    }
}
