//! Balanced k-d tree over particle positions, with per-node bounding boxes
//! and masses. Used by the FOF finder (dual-tree linking), the subhalo
//! finder (k-nearest-neighbour densities), and the A* center finder
//! (optimistic potential bounds).
//!
//! Two equivalent build/query paths exist: the row-based originals
//! ([`KdTree::build`], [`KdTree::within_radius`], [`KdTree::k_nearest`]) and
//! the packed-column versions ([`KdTree::build_cols`],
//! [`KdTree::within_radius_cols`], [`KdTree::k_nearest_cols`]) over
//! [`Coords`]. The column build compares single packed lanes in the median
//! select instead of loading 24-byte rows; both paths use the same median
//! algorithm and comparator over the same values, so they produce identical
//! trees and identical query results — the layout conformance suite checks
//! this bit-for-bit.

use crate::columns::Coords;

/// Axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Per-axis minima.
    pub lo: [f64; 3],
    /// Per-axis maxima.
    pub hi: [f64; 3],
}

impl Aabb {
    /// The empty box (inverted bounds).
    pub fn empty() -> Self {
        Aabb {
            lo: [f64::INFINITY; 3],
            hi: [f64::NEG_INFINITY; 3],
        }
    }

    /// Grow to include `p`.
    pub fn include(&mut self, p: [f64; 3]) {
        for d in 0..3 {
            self.lo[d] = self.lo[d].min(p[d]);
            self.hi[d] = self.hi[d].max(p[d]);
        }
    }

    /// Minimum squared distance from `p` to this box (0 if inside).
    pub fn min_dist2_point(&self, p: [f64; 3]) -> f64 {
        let mut d2 = 0.0;
        for d in 0..3 {
            let v = if p[d] < self.lo[d] {
                self.lo[d] - p[d]
            } else if p[d] > self.hi[d] {
                p[d] - self.hi[d]
            } else {
                0.0
            };
            d2 += v * v;
        }
        d2
    }

    /// Maximum squared distance from `p` to any point of this box.
    pub fn max_dist2_point(&self, p: [f64; 3]) -> f64 {
        let mut d2 = 0.0;
        for d in 0..3 {
            let v = (p[d] - self.lo[d]).abs().max((p[d] - self.hi[d]).abs());
            d2 += v * v;
        }
        d2
    }

    /// Minimum squared distance between two boxes (0 if overlapping).
    pub fn min_dist2_box(&self, other: &Aabb) -> f64 {
        let mut d2 = 0.0;
        for d in 0..3 {
            let v = if other.hi[d] < self.lo[d] {
                self.lo[d] - other.hi[d]
            } else if other.lo[d] > self.hi[d] {
                other.lo[d] - self.hi[d]
            } else {
                0.0
            };
            d2 += v * v;
        }
        d2
    }

    /// Longest side length.
    pub fn longest_side(&self) -> f64 {
        (0..3).map(|d| self.hi[d] - self.lo[d]).fold(0.0, f64::max)
    }
}

/// A node of the tree: either a leaf holding a contiguous slice of reordered
/// particle indices, or an internal node with two children.
#[derive(Debug, Clone)]
pub struct KdNode {
    /// Bounding box of all particles below this node.
    pub bbox: Aabb,
    /// Total mass below this node.
    pub mass: f64,
    /// Range into the reordered index array.
    pub start: usize,
    /// One past the end of the range.
    pub end: usize,
    /// Children `(left, right)` node ids, or `None` for leaves.
    pub children: Option<(usize, usize)>,
}

/// Balanced k-d tree. Positions are referenced by index into the caller's
/// array; the tree stores a reordering.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    /// Particle indices, reordered so each node's range is contiguous.
    order: Vec<u32>,
}

/// Leaf capacity: below this, nodes stay leaves.
pub const LEAF_SIZE: usize = 24;

impl KdTree {
    /// Build over `positions` (with unit masses). `masses` may be supplied
    /// for mass-weighted uses.
    pub fn build(positions: &[[f64; 3]], masses: Option<&[f64]>) -> Self {
        let n = positions.len();
        if let Some(m) = masses {
            assert_eq!(m.len(), n, "one mass per position");
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::new();
        if n > 0 {
            Self::build_node(positions, masses, &mut order, 0, n, &mut nodes);
        }
        KdTree { nodes, order }
    }

    fn build_node(
        positions: &[[f64; 3]],
        masses: Option<&[f64]>,
        order: &mut [u32],
        start: usize,
        end: usize,
        nodes: &mut Vec<KdNode>,
    ) -> usize {
        let mut bbox = Aabb::empty();
        let mut mass = 0.0;
        for &i in &order[start..end] {
            bbox.include(positions[i as usize]);
            mass += masses.map_or(1.0, |m| m[i as usize]);
        }
        let id = nodes.len();
        nodes.push(KdNode {
            bbox,
            mass,
            start,
            end,
            children: None,
        });
        if end - start > LEAF_SIZE {
            // Split on the widest axis at the median (balanced tree).
            let axis = (0..3)
                .max_by(|&a, &b| {
                    (bbox.hi[a] - bbox.lo[a])
                        .partial_cmp(&(bbox.hi[b] - bbox.lo[b]))
                        .unwrap()
                })
                .unwrap();
            let mid = (start + end) / 2;
            order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
                positions[a as usize][axis]
                    .partial_cmp(&positions[b as usize][axis])
                    .unwrap()
            });
            let left = Self::build_node(positions, masses, order, start, mid, nodes);
            let right = Self::build_node(positions, masses, order, mid, end, nodes);
            nodes[id].children = Some((left, right));
        }
        id
    }

    /// Build over packed coordinate columns. Produces a tree identical to
    /// [`KdTree::build`] on the row equivalent of `coords`; the median
    /// select touches only the split axis' packed column.
    pub fn build_cols(coords: &Coords, masses: Option<&[f64]>) -> Self {
        let n = coords.len();
        if let Some(m) = masses {
            assert_eq!(m.len(), n, "one mass per position");
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::new();
        if n > 0 {
            Self::build_node_cols(coords, masses, &mut order, 0, n, &mut nodes);
        }
        KdTree { nodes, order }
    }

    fn build_node_cols(
        coords: &Coords,
        masses: Option<&[f64]>,
        order: &mut [u32],
        start: usize,
        end: usize,
        nodes: &mut Vec<KdNode>,
    ) -> usize {
        let (xs, ys, zs) = (coords.xs(), coords.ys(), coords.zs());
        let mut bbox = Aabb::empty();
        let mut mass = 0.0;
        for &i in &order[start..end] {
            let i = i as usize;
            bbox.include([xs[i], ys[i], zs[i]]);
            mass += masses.map_or(1.0, |m| m[i]);
        }
        let id = nodes.len();
        nodes.push(KdNode {
            bbox,
            mass,
            start,
            end,
            children: None,
        });
        if end - start > LEAF_SIZE {
            // Same split rule as the row build: widest axis, median element.
            let axis = (0..3)
                .max_by(|&a, &b| {
                    (bbox.hi[a] - bbox.lo[a])
                        .partial_cmp(&(bbox.hi[b] - bbox.lo[b]))
                        .unwrap()
                })
                .unwrap();
            let ax = coords.axis(axis);
            let mid = (start + end) / 2;
            order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
                ax[a as usize].partial_cmp(&ax[b as usize]).unwrap()
            });
            let left = Self::build_node_cols(coords, masses, order, start, mid, nodes);
            let right = Self::build_node_cols(coords, masses, order, mid, end, nodes);
            nodes[id].children = Some((left, right));
        }
        id
    }

    /// Number of indexed particles.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the tree indexes no particles.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Root node id (panics on empty tree).
    pub fn root(&self) -> usize {
        assert!(!self.nodes.is_empty(), "empty tree has no root");
        0
    }

    /// Node accessor.
    pub fn node(&self, id: usize) -> &KdNode {
        &self.nodes[id]
    }

    /// The particle indices under `node`, in tree order.
    pub fn indices(&self, node: &KdNode) -> &[u32] {
        &self.order[node.start..node.end]
    }

    /// Indices of all particles within `r` of `query` (Euclidean,
    /// non-periodic).
    pub fn within_radius(&self, positions: &[[f64; 3]], query: [f64; 3], r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let r2 = r * r;
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if node.bbox.min_dist2_point(query) > r2 {
                continue;
            }
            match node.children {
                Some((l, rgt)) => {
                    stack.push(l);
                    stack.push(rgt);
                }
                None => {
                    for &i in self.indices(node) {
                        let p = positions[i as usize];
                        let d2 = (p[0] - query[0]).powi(2)
                            + (p[1] - query[1]).powi(2)
                            + (p[2] - query[2]).powi(2);
                        if d2 <= r2 {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out
    }

    /// The `k` nearest neighbours of `query` (including the query point
    /// itself if it is in the tree). Returns `(index, dist²)` sorted by
    /// distance.
    pub fn k_nearest(&self, positions: &[[f64; 3]], query: [f64; 3], k: usize) -> Vec<(u32, f64)> {
        if self.nodes.is_empty() || k == 0 {
            return Vec::new();
        }
        // Max-heap of current best k (keyed on dist²).
        let mut heap: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
        let worst = |h: &Vec<(f64, u32)>| {
            if h.len() < k {
                f64::INFINITY
            } else {
                h.iter().map(|e| e.0).fold(0.0, f64::max)
            }
        };
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if node.bbox.min_dist2_point(query) > worst(&heap) {
                continue;
            }
            match node.children {
                Some((l, r)) => {
                    // Visit the closer child first for better pruning.
                    let dl = self.nodes[l].bbox.min_dist2_point(query);
                    let dr = self.nodes[r].bbox.min_dist2_point(query);
                    if dl < dr {
                        stack.push(r);
                        stack.push(l);
                    } else {
                        stack.push(l);
                        stack.push(r);
                    }
                }
                None => {
                    for &i in self.indices(node) {
                        let p = positions[i as usize];
                        let d2 = (p[0] - query[0]).powi(2)
                            + (p[1] - query[1]).powi(2)
                            + (p[2] - query[2]).powi(2);
                        if d2 < worst(&heap) || heap.len() < k {
                            heap.push((d2, i));
                            if heap.len() > k {
                                // Drop the farthest.
                                let (mi, _) = heap
                                    .iter()
                                    .enumerate()
                                    .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
                                    .unwrap();
                                heap.swap_remove(mi);
                            }
                        }
                    }
                }
            }
        }
        let mut out: Vec<(u32, f64)> = heap.into_iter().map(|(d2, i)| (i, d2)).collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }

    /// Column-layout [`KdTree::within_radius`]: identical traversal and
    /// distance expression, with leaf coordinates loaded from packed lanes.
    pub fn within_radius_cols(&self, coords: &Coords, query: [f64; 3], r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let (xs, ys, zs) = (coords.xs(), coords.ys(), coords.zs());
        let r2 = r * r;
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if node.bbox.min_dist2_point(query) > r2 {
                continue;
            }
            match node.children {
                Some((l, rgt)) => {
                    stack.push(l);
                    stack.push(rgt);
                }
                None => {
                    for &i in self.indices(node) {
                        let j = i as usize;
                        let d2 = (xs[j] - query[0]).powi(2)
                            + (ys[j] - query[1]).powi(2)
                            + (zs[j] - query[2]).powi(2);
                        if d2 <= r2 {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out
    }

    /// Column-layout [`KdTree::k_nearest`]: identical traversal, heap
    /// discipline, and tie-breaking over packed coordinate lanes.
    pub fn k_nearest_cols(&self, coords: &Coords, query: [f64; 3], k: usize) -> Vec<(u32, f64)> {
        if self.nodes.is_empty() || k == 0 {
            return Vec::new();
        }
        let (xs, ys, zs) = (coords.xs(), coords.ys(), coords.zs());
        let mut heap: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
        let worst = |h: &Vec<(f64, u32)>| {
            if h.len() < k {
                f64::INFINITY
            } else {
                h.iter().map(|e| e.0).fold(0.0, f64::max)
            }
        };
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if node.bbox.min_dist2_point(query) > worst(&heap) {
                continue;
            }
            match node.children {
                Some((l, r)) => {
                    let dl = self.nodes[l].bbox.min_dist2_point(query);
                    let dr = self.nodes[r].bbox.min_dist2_point(query);
                    if dl < dr {
                        stack.push(r);
                        stack.push(l);
                    } else {
                        stack.push(l);
                        stack.push(r);
                    }
                }
                None => {
                    for &i in self.indices(node) {
                        let j = i as usize;
                        let d2 = (xs[j] - query[0]).powi(2)
                            + (ys[j] - query[1]).powi(2)
                            + (zs[j] - query[2]).powi(2);
                        if d2 < worst(&heap) || heap.len() < k {
                            heap.push((d2, i));
                            if heap.len() > k {
                                let (mi, _) = heap
                                    .iter()
                                    .enumerate()
                                    .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
                                    .unwrap();
                                heap.swap_remove(mi);
                            }
                        }
                    }
                }
            }
        }
        let mut out: Vec<(u32, f64)> = heap.into_iter().map(|(d2, i)| (i, d2)).collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> Vec<[f64; 3]> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                [
                    (t * 0.618_034).fract() * 100.0,
                    (t * 0.414_214).fract() * 100.0,
                    (t * 0.732_051).fract() * 100.0,
                ]
            })
            .collect()
    }

    #[test]
    fn aabb_distances() {
        let mut b = Aabb::empty();
        b.include([0.0, 0.0, 0.0]);
        b.include([2.0, 2.0, 2.0]);
        assert_eq!(b.min_dist2_point([1.0, 1.0, 1.0]), 0.0);
        assert_eq!(b.min_dist2_point([4.0, 1.0, 1.0]), 4.0);
        assert_eq!(b.max_dist2_point([0.0, 0.0, 0.0]), 12.0);
        assert_eq!(b.longest_side(), 2.0);
        let mut c = Aabb::empty();
        c.include([5.0, 0.0, 0.0]);
        c.include([6.0, 2.0, 2.0]);
        assert_eq!(b.min_dist2_box(&c), 9.0);
        assert_eq!(c.min_dist2_box(&b), 9.0);
    }

    #[test]
    fn builds_balanced_over_random_cloud() {
        let pos = cloud(10_000);
        let tree = KdTree::build(&pos, None);
        assert_eq!(tree.len(), 10_000);
        let root = tree.node(tree.root());
        assert_eq!(root.start, 0);
        assert_eq!(root.end, 10_000);
        assert_eq!(root.mass, 10_000.0);
        // Every index appears exactly once.
        let mut idx: Vec<u32> = tree.indices(root).to_vec();
        idx.sort_unstable();
        assert_eq!(idx, (0..10_000u32).collect::<Vec<_>>());
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let pos = cloud(2000);
        let tree = KdTree::build(&pos, None);
        for qi in [0usize, 100, 999] {
            let q = pos[qi];
            let r = 7.5;
            let mut got = tree.within_radius(&pos, q, r);
            got.sort_unstable();
            let mut expect: Vec<u32> = (0..pos.len() as u32)
                .filter(|&i| {
                    let p = pos[i as usize];
                    (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2) <= r * r
                })
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let pos = cloud(1500);
        let tree = KdTree::build(&pos, None);
        let q = pos[42];
        let k = 16;
        let got = tree.k_nearest(&pos, q, k);
        let mut all: Vec<(u32, f64)> = (0..pos.len() as u32)
            .map(|i| {
                let p = pos[i as usize];
                let d2 = (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2);
                (i, d2)
            })
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        assert_eq!(got.len(), k);
        for (g, e) in got.iter().zip(&all) {
            assert!((g.1 - e.1).abs() < 1e-12);
        }
        // The query point itself is the nearest (distance 0).
        assert_eq!(got[0].0, 42);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let pos = cloud(5);
        let tree = KdTree::build(&pos, None);
        let got = tree.k_nearest(&pos, pos[0], 10);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn empty_tree_queries() {
        let tree = KdTree::build(&[], None);
        assert!(tree.is_empty());
        assert!(tree.within_radius(&[], [0.0; 3], 1.0).is_empty());
        assert!(tree.k_nearest(&[], [0.0; 3], 3).is_empty());
    }

    #[test]
    fn column_build_produces_identical_tree() {
        let pos = cloud(5000);
        let cols = Coords::from_rows(&pos);
        let a = KdTree::build(&pos, None);
        let b = KdTree::build_cols(&cols, None);
        assert_eq!(a.order, b.order, "reordering must match");
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(na.start, nb.start);
            assert_eq!(na.end, nb.end);
            assert_eq!(na.children, nb.children);
            assert_eq!(na.mass.to_bits(), nb.mass.to_bits());
            for d in 0..3 {
                assert_eq!(na.bbox.lo[d].to_bits(), nb.bbox.lo[d].to_bits());
                assert_eq!(na.bbox.hi[d].to_bits(), nb.bbox.hi[d].to_bits());
            }
        }
    }

    #[test]
    fn column_queries_match_row_queries() {
        let pos = cloud(2000);
        let cols = Coords::from_rows(&pos);
        let tree = KdTree::build(&pos, None);
        for qi in [0usize, 77, 1999] {
            let q = pos[qi];
            let a = tree.within_radius(&pos, q, 6.5);
            let b = tree.within_radius_cols(&cols, q, 6.5);
            assert_eq!(a, b);
            let ka = tree.k_nearest(&pos, q, 12);
            let kb = tree.k_nearest_cols(&cols, q, 12);
            assert_eq!(ka.len(), kb.len());
            for (x, y) in ka.iter().zip(&kb) {
                assert_eq!(x.0, y.0);
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }

    #[test]
    fn masses_accumulate_up_the_tree() {
        let pos = cloud(100);
        let masses: Vec<f64> = (0..100).map(|i| (i % 3 + 1) as f64).collect();
        let total: f64 = masses.iter().sum();
        let tree = KdTree::build(&pos, Some(&masses));
        assert!((tree.node(tree.root()).mass - total).abs() < 1e-9);
        if let Some((l, r)) = tree.node(tree.root()).children {
            let sum = tree.node(l).mass + tree.node(r).mass;
            assert!((sum - total).abs() < 1e-9);
        }
    }
}
