//! # halo — halo analysis algorithms
//!
//! The analysis tasks the paper's workflows orchestrate, written once against
//! the `dpp` data-parallel layer:
//!
//! * **FOF halo identification** (§3.3.1) — balanced k-d tree with
//!   bounding-box pruning ([`fof::fof_kdtree`]), a periodic linked-cell
//!   engine ([`fof::fof_grid`]), and the rank-parallel driver with overload
//!   regions ([`parallel::parallel_fof`]).
//! * **MBP center finding** (§3.3.2) — the data-parallel O(n²) kernel
//!   ([`mbp::mbp_brute`]) and the serial A* baseline ([`mbp::mbp_astar`]).
//! * **Spherical overdensity masses** ([`so::so_mass`]).
//! * **Subhalo finding** ([`subhalo::find_subhalos`]) — k-NN SPH densities,
//!   density-ordered candidate growth, iterative unbinding.
//! * **Mass-function modeling** ([`massfn::MassFunction`]) — the calibrated
//!   population sampler behind the Q-Continuum-scale projections.

#![warn(missing_docs)]
// 3-vector component loops read better indexed; the lint fires on them.
#![allow(clippy::needless_range_loop)]

pub mod catalog;
pub mod columns;
pub mod fof;
pub mod kdtree;
pub mod massfn;
pub mod mbp;
pub mod parallel;
pub mod properties;
pub mod so;
pub mod subhalo;
pub mod tracking;
pub mod unionfind;

pub use catalog::{unwrap_positions, Halo, HaloCatalog};
pub use columns::Coords;
pub use fof::{fof_brute, fof_grid, fof_kdtree, fof_kdtree_cols, members_by_group};
pub use kdtree::{Aabb, KdTree};
pub use massfn::{fit_power_law, FittedMassFunction, MassFunction};
pub use mbp::{
    center_time_titan_gpu, mbp_astar, mbp_brute, mbp_brute_cols, potential_at, potential_of,
    MbpResult,
};
pub use parallel::{fof_and_centers_timed, parallel_fof, FofConfig, RankTiming};
pub use properties::{halo_properties, HaloProperties};
pub use so::{so_mass, SoResult};
pub use subhalo::{find_subhalos, local_densities, Subhalo, SubhaloParams};
pub use tracking::{track_halos, HaloLink, TrackingResult};
