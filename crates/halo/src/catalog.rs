//! Halo records and catalogs (Level 2 → Level 3 data products).

use nbody::particle::Particle;

/// A single FOF halo with its member particles (Level 2) and derived
/// properties (Level 3).
#[derive(Debug, Clone)]
pub struct Halo {
    /// Stable id: the smallest member particle tag.
    pub id: u64,
    /// Member particles. Positions may be *unwrapped* (outside `[0, L)`) so
    /// that the halo is spatially contiguous across periodic boundaries.
    pub particles: Vec<Particle>,
    /// Center of mass.
    pub center_of_mass: [f64; 3],
    /// Most-bound-particle center, once computed.
    pub mbp_center: Option<[f64; 3]>,
    /// Spherical-overdensity mass (in particle-mass units), once computed.
    pub so_mass: Option<f64>,
}

impl Halo {
    /// Build from member particles, computing the id and center of mass.
    pub fn from_particles(particles: Vec<Particle>) -> Self {
        assert!(
            !particles.is_empty(),
            "halo must have at least one particle"
        );
        let id = particles.iter().map(|p| p.tag).min().unwrap();
        let mut com = [0.0f64; 3];
        let mut mass = 0.0f64;
        for p in &particles {
            let m = p.mass as f64;
            for d in 0..3 {
                com[d] += m * p.pos[d] as f64;
            }
            mass += m;
        }
        for c in &mut com {
            *c /= mass;
        }
        Halo {
            id,
            particles,
            center_of_mass: com,
            mbp_center: None,
            so_mass: None,
        }
    }

    /// Number of member particles ("halo mass" in count units — the paper's
    /// halos have equal-mass particles, so mass ∝ count).
    pub fn count(&self) -> usize {
        self.particles.len()
    }

    /// Total mass in particle-mass units.
    pub fn mass(&self) -> f64 {
        self.particles.iter().map(|p| p.mass as f64).sum()
    }
}

/// Unwrap positions to the minimum image around an anchor so a halo that
/// straddles the periodic boundary becomes contiguous. Returns unwrapped
/// copies (positions may leave `[0, box_size)`).
pub fn unwrap_positions(particles: &[Particle], box_size: f64) -> Vec<Particle> {
    if particles.is_empty() {
        return Vec::new();
    }
    let anchor = particles[0].pos_f64();
    particles
        .iter()
        .map(|p| {
            let mut q = *p;
            for d in 0..3 {
                let mut x = q.pos[d] as f64;
                if x - anchor[d] > box_size / 2.0 {
                    x -= box_size;
                } else if x - anchor[d] < -box_size / 2.0 {
                    x += box_size;
                }
                q.pos[d] = x as f32;
            }
            q
        })
        .collect()
}

/// A catalog of halos (one rank's, or merged).
#[derive(Debug, Clone, Default)]
pub struct HaloCatalog {
    /// The halos, in no particular order.
    pub halos: Vec<Halo>,
}

impl HaloCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        HaloCatalog { halos: Vec::new() }
    }

    /// Number of halos.
    pub fn len(&self) -> usize {
        self.halos.len()
    }

    /// True if there are no halos.
    pub fn is_empty(&self) -> bool {
        self.halos.is_empty()
    }

    /// Total member particles across all halos (Level 2 volume).
    pub fn total_particles(&self) -> usize {
        self.halos.iter().map(|h| h.count()).sum()
    }

    /// Merge another catalog in, dropping duplicate halo ids (keeps first).
    pub fn merge(&mut self, other: HaloCatalog) {
        let mut have: std::collections::HashSet<u64> = self.halos.iter().map(|h| h.id).collect();
        for h in other.halos {
            if have.insert(h.id) {
                self.halos.push(h);
            }
        }
    }

    /// Split into (small, large) by member count: `count <= threshold` goes
    /// to the first catalog (the paper's 300,000-particle split).
    pub fn split_by_size(self, threshold: usize) -> (HaloCatalog, HaloCatalog) {
        let mut small = HaloCatalog::new();
        let mut large = HaloCatalog::new();
        for h in self.halos {
            if h.count() <= threshold {
                small.halos.push(h);
            } else {
                large.halos.push(h);
            }
        }
        (small, large)
    }

    /// Sort halos by id (for comparisons between workflows).
    pub fn sort_by_id(&mut self) {
        self.halos.sort_by_key(|h| h.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(tag: u64, pos: [f32; 3]) -> Particle {
        Particle::at_rest(pos, 1.0, tag)
    }

    #[test]
    fn halo_id_is_min_tag_and_com_is_mean() {
        let h = Halo::from_particles(vec![
            mk(7, [0.0, 0.0, 0.0]),
            mk(3, [2.0, 0.0, 0.0]),
            mk(9, [4.0, 0.0, 0.0]),
        ]);
        assert_eq!(h.id, 3);
        assert_eq!(h.count(), 3);
        assert!((h.center_of_mass[0] - 2.0).abs() < 1e-9);
        assert_eq!(h.mass(), 3.0);
    }

    #[test]
    fn unwrap_brings_straddling_halo_together() {
        let parts = vec![mk(0, [9.9, 5.0, 5.0]), mk(1, [0.1, 5.0, 5.0])];
        let un = unwrap_positions(&parts, 10.0);
        // Second particle unwraps to 10.1, adjacent to 9.9.
        assert!((un[1].pos[0] - 10.1).abs() < 1e-5);
        let h = Halo::from_particles(un);
        assert!((h.center_of_mass[0] - 10.0).abs() < 1e-4);
    }

    #[test]
    fn catalog_merge_dedupes_by_id() {
        let mut a = HaloCatalog::new();
        a.halos.push(Halo::from_particles(vec![mk(1, [0.0; 3])]));
        let mut b = HaloCatalog::new();
        b.halos.push(Halo::from_particles(vec![mk(1, [0.0; 3])]));
        b.halos.push(Halo::from_particles(vec![mk(5, [1.0; 3])]));
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total_particles(), 2);
    }

    #[test]
    fn split_by_size_respects_threshold() {
        let mut c = HaloCatalog::new();
        c.halos.push(Halo::from_particles(
            (0..10).map(|t| mk(t, [t as f32, 0.0, 0.0])).collect(),
        ));
        c.halos.push(Halo::from_particles(vec![mk(100, [0.0; 3])]));
        let (small, large) = c.split_by_size(5);
        assert_eq!(small.len(), 1);
        assert_eq!(large.len(), 1);
        assert_eq!(large.halos[0].count(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one particle")]
    fn empty_halo_rejected() {
        Halo::from_particles(Vec::new());
    }
}
