//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map`, ranges, tuples, [`Just`], [`any`],
//!   [`collection::vec`], [`prop_oneof!`], and [`sample::Index`],
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest: cases are sampled from a seed derived
//! deterministically from the test's module path and name (stable across runs
//! and platforms), and there is **no shrinking** — a failure reports the case
//! number so it can be re-examined, but the input is not minimized.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving test-case generation.
pub type TestRng = StdRng;

/// Per-test configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy is
/// just a pure sampling function over a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Box a strategy as a trait object (used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Build from a non-empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi == <$t>::MAX {
                    // Avoid overflow of the exclusive bound; MAX itself is
                    // unreachable in that (never used here) corner.
                    rng.gen_range(lo..hi)
                } else {
                    rng.gen_range(lo..hi + 1)
                }
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specification for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `Vec` strategy: each element from `elem`, length from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Sampling helpers (subset of `proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};
    use rand::Rng;

    /// An arbitrary index, resolved against a collection length at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        raw: usize,
    }

    impl Index {
        /// Map this index into `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.raw % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index {
                raw: rng.gen_range(0..usize::MAX),
            }
        }
    }
}

/// Path-style re-exports so `prop::sample::Index` etc. resolve.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Derive a stable 64-bit seed from a test identifier (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Build the RNG for one test case.
pub fn new_rng(seed: u64, case: u32) -> TestRng {
    StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($arm)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` becomes
/// a `#[test]` running `body` over deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::new_rng(__seed, __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(err) = __outcome {
                        eprintln!(
                            "proptest stand-in: test {} failed at case {}/{} (seed {:#x})",
                            stringify!($name), __case, __cfg.cases, __seed
                        );
                        ::std::panic::resume_unwind(err);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec((0u32..5, 1usize..4).prop_map(|(a, b)| a as usize + b), 0..20)) {
            prop_assert!(v.len() < 20);
            for x in v {
                prop_assert!(x <= 7);
            }
        }

        #[test]
        fn oneof_and_just(o in prop_oneof![Just(None), (1usize..4).prop_map(Some)]) {
            if let Some(v) = o {
                prop_assert!((1..4).contains(&v));
            }
        }

        #[test]
        fn index_resolves(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(17) < 17);
        }
    }
}
