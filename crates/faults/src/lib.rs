//! # faults — deterministic, seed-driven fault injection
//!
//! The paper's co-scheduling pipeline only earns its keep on a real facility,
//! where jobs get killed, filesystems hiccup, and queues stall. This crate
//! provides the machinery the workflow crates use to *rehearse* those
//! failures deterministically:
//!
//! * [`FaultPlan`] — a seed plus per-site specifications ([`SiteSpec`]) of
//!   which faults fire where: a per-hit probability, an explicit hit
//!   schedule, or both, for [`FaultKind::Transient`], [`FaultKind::Crash`],
//!   and [`FaultKind::Stall`] faults.
//! * [`FaultInjector`] — the compiled plan. Every fault site draws from its
//!   own RNG stream derived from `(seed, site)`, so decisions at one site are
//!   independent of how threads interleave at another: **same seed ⇒ same
//!   fault trace** (canonically ordered by site and hit index).
//! * [`fault_point!`] — the hook components embed. It consults the globally
//!   [`install`]ed injector; with nothing installed it is one relaxed atomic
//!   load, and with the crate's `armed` feature disabled it compiles to a
//!   constant `None`.
//! * [`BackoffPolicy`] — capped exponential retry backoff shared by the
//!   batch-scheduler requeue and the listener's transient-error retries.
//! * **Site enumeration** — a record-only plan ([`FaultPlan::record_only`],
//!   or [`FaultPlan::with_recording`] on any plan) makes the injector note
//!   *every* site polled, matched by a spec or not, without injecting
//!   anything extra. [`FaultInjector::sites_reached`] then lists each
//!   concrete site with its hit count, so tools like the conformance
//!   crash-schedule explorer can discover the fault surface a workload
//!   actually exercises instead of grepping the source for `fault_point!`.
//!
//! Components that own their fault checks (the batch simulator, the
//! listener) take an `Arc<FaultInjector>` explicitly and bypass the global;
//! the global exists for call sites buried inside library internals (the
//! `comm` send/recv paths) where threading a handle through would distort the
//! MPI-like API.
//!
//! Site names are dotted paths grouped by component — `scheduler.job`,
//! `listener.{scan,submit,journal,compact}`, `comm.{send,recv}`,
//! `runner.insitu`, `service.c<id>.{emit,analysis}`, and the artifact
//! store's `cache.{read,verify,replicate,fetch.remote}` — so a `"cache.*"`
//! family pattern in one [`SiteSpec`] covers local reads, verification,
//! replica writes, and remote fetches alike. The full site table (per-kind
//! semantics at each site) lives in `DESIGN.md` §7.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What kind of failure a fault point experiences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A retryable failure: the operation fails once and succeeds when
    /// retried (an I/O error, a killed-and-requeued batch job, a dropped
    /// message that the transport retransmits).
    Transient,
    /// A fatal failure of the component: the listener process dies, a batch
    /// job is lost. Recovery happens at a coarser level (journal replay,
    /// workflow degradation), not by retrying the operation.
    Crash,
    /// The operation hangs for the given duration before completing. Sites
    /// with timeouts surface long stalls as errors instead of hanging.
    Stall(Duration),
}

/// Per-site fault specification inside a [`FaultPlan`].
///
/// `pattern` names one site exactly (`"listener.submit"`) or a whole family
/// by prefix when it ends in `*` (`"comm.*"`). The first matching spec in
/// plan order wins.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Site name or `prefix*` pattern.
    pub pattern: String,
    /// Per-hit fault probability in `[0, 1]` (drawn from the site's own RNG
    /// stream).
    pub probability: f64,
    /// The fault injected when this spec fires.
    pub kind: FaultKind,
    /// Fire unconditionally at these hit indices (0-based, per concrete
    /// site), in addition to probabilistic firings.
    pub at_hits: Vec<u64>,
    /// Stop injecting at a site after this many faults (`None` = unlimited).
    pub max_faults: Option<u64>,
}

impl SiteSpec {
    /// Transient faults with probability `p` at sites matching `pattern`.
    pub fn transient(pattern: impl Into<String>, p: f64) -> Self {
        SiteSpec {
            pattern: pattern.into(),
            probability: p,
            kind: FaultKind::Transient,
            at_hits: Vec::new(),
            max_faults: None,
        }
    }

    /// A crash scheduled at exactly hit `hit` of sites matching `pattern`.
    pub fn crash_at(pattern: impl Into<String>, hit: u64) -> Self {
        SiteSpec {
            pattern: pattern.into(),
            probability: 0.0,
            kind: FaultKind::Crash,
            at_hits: vec![hit],
            max_faults: Some(1),
        }
    }

    /// Stalls of `delay` with probability `p` at sites matching `pattern`.
    pub fn stall(pattern: impl Into<String>, p: f64, delay: Duration) -> Self {
        SiteSpec {
            pattern: pattern.into(),
            probability: p,
            kind: FaultKind::Stall(delay),
            at_hits: Vec::new(),
            max_faults: None,
        }
    }

    /// Cap the number of faults this spec may inject.
    pub fn with_max_faults(mut self, n: u64) -> Self {
        self.max_faults = Some(n);
        self
    }

    fn matches(&self, site: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => site == self.pattern,
        }
    }
}

/// The canonical site name for a per-campaign fault point inside the
/// workflow service: `service.c<campaign>.<op>` (e.g. `service.c3.emit`).
///
/// Keeping the campaign index *inside* the site name gives each campaign an
/// independent hit counter and RNG stream, so a crash schedule aimed at one
/// campaign's third analysis cannot drift when a neighbor campaign runs more
/// or fewer operations. Target a single campaign with the exact name, or
/// every campaign at once with the prefix pattern `service.c` + `*` —
/// site-name matching is string-based, so [`SiteSpec`] patterns compose with
/// these names unchanged.
pub fn campaign_site(campaign: u64, op: &str) -> String {
    format!("service.c{campaign}.{op}")
}

/// A seed plus the sites to perturb. Build with [`FaultPlan::new`] and
/// [`FaultPlan::with_site`], then compile into a [`FaultInjector`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Master seed; every per-site stream derives from it.
    pub seed: u64,
    /// Site specifications, first match wins.
    pub sites: Vec<SiteSpec>,
    /// Record hits even at sites no spec matches (see
    /// [`FaultPlan::with_recording`]).
    pub record_all: bool,
}

impl FaultPlan {
    /// An empty plan (no faults) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: Vec::new(),
            record_all: false,
        }
    }

    /// A record-only plan: injects nothing, but every site polled is
    /// recorded so [`FaultInjector::sites_reached`] can enumerate the
    /// workload's fault surface after a clean instrumented run.
    pub fn record_only(seed: u64) -> Self {
        FaultPlan::new(seed).with_recording()
    }

    /// Also record hits at sites that no spec matches. Matched sites keep
    /// their exact RNG-stream semantics (recording draws nothing from a
    /// site's stream), so enabling this never changes which faults fire.
    pub fn with_recording(mut self) -> Self {
        self.record_all = true;
        self
    }

    /// Add a site specification.
    pub fn with_site(mut self, spec: SiteSpec) -> Self {
        self.sites.push(spec);
        self
    }

    /// Compile into a shareable injector.
    pub fn build(self) -> Arc<FaultInjector> {
        Arc::new(FaultInjector::new(self))
    }
}

/// One injected fault, as recorded in the trace.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// Concrete site name the fault fired at.
    pub site: String,
    /// 0-based hit index at that site.
    pub hit: u64,
    /// The injected fault.
    pub kind: FaultKind,
}

/// Per-concrete-site decision state.
#[derive(Debug)]
struct SiteState {
    hits: u64,
    faults: u64,
    rng: StdRng,
}

/// FNV-1a over the site name — stable across runs and platforms, used to
/// derive the per-site RNG stream from the master seed.
fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in site.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// The runtime fault decider: thread-safe, deterministic per site.
///
/// Decisions at a site depend only on `(plan.seed, site, hit index)`; the
/// order in which *different* sites are exercised never shifts another
/// site's stream, so multi-threaded runs stay reproducible.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<BTreeMap<String, SiteState>>,
    trace: Mutex<Vec<FaultEvent>>,
}

impl FaultInjector {
    /// Compile a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            state: Mutex::new(BTreeMap::new()),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Record a hit at `site` and decide whether a fault fires there.
    ///
    /// This is the only mutating entry point; everything else reads the
    /// trace it builds.
    pub fn check(&self, site: &str) -> Option<FaultKind> {
        let spec = self.plan.sites.iter().find(|s| s.matches(site));
        if spec.is_none() && !self.plan.record_all {
            return None;
        }
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let st = state.entry(site.to_string()).or_insert_with(|| SiteState {
            hits: 0,
            faults: 0,
            rng: StdRng::seed_from_u64(self.plan.seed ^ site_hash(site)),
        });
        let hit = st.hits;
        st.hits += 1;
        // Record-only observation of an unmatched site: the hit is counted
        // but the site's RNG stream is left untouched, so a later plan that
        // adds a spec for it sees the same per-hit decisions either way.
        let spec = spec?;
        if spec.max_faults.is_some_and(|cap| st.faults >= cap) {
            // Keep the stream advancing so the cap does not shift later
            // decisions relative to an uncapped plan.
            let _ = st.rng.gen_f64();
            return None;
        }
        let scheduled = spec.at_hits.contains(&hit);
        let rolled = st.rng.gen_f64() < spec.probability;
        if !(scheduled || rolled) {
            return None;
        }
        st.faults += 1;
        let event = FaultEvent {
            site: site.to_string(),
            hit,
            kind: spec.kind,
        };
        drop(state);
        self.trace
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(event);
        Some(spec.kind)
    }

    /// The canonical fault trace: every injected fault, ordered by
    /// `(site, hit)` so concurrent runs under the same seed compare equal.
    pub fn trace(&self) -> Vec<FaultEvent> {
        let mut t = self.trace.lock().unwrap_or_else(|p| p.into_inner()).clone();
        t.sort();
        t
    }

    /// Total faults injected so far.
    pub fn fault_count(&self) -> usize {
        self.trace.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Every concrete site polled so far with its hit count, sorted by
    /// site name.
    ///
    /// Under a plan built with [`FaultPlan::record_only`] (or
    /// [`FaultPlan::with_recording`]) this is the complete fault surface a
    /// workload reached — including sites no spec matched — which is what
    /// the conformance crash-schedule explorer enumerates before re-running
    /// the workload with a [`SiteSpec::crash_at`] for each `(site, hit)`
    /// pair. Without recording it lists only spec-matched sites.
    pub fn sites_reached(&self) -> Vec<(String, u64)> {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(site, st)| (site.clone(), st.hits))
            .collect()
    }

    /// Hits and faults per concrete site, for rate assertions.
    pub fn site_stats(&self) -> BTreeMap<String, (u64, u64)> {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(site, st)| (site.clone(), (st.hits, st.faults)))
            .collect()
    }
}

/// Capped exponential backoff: attempt `k` (0-based) waits
/// `min(base × factor^k, max_delay)` and gives up after `max_attempts`
/// tries in total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in seconds (simulated or wall).
    pub base_seconds: f64,
    /// Multiplier per subsequent retry.
    pub factor: f64,
    /// Ceiling on any single delay, in seconds.
    pub max_delay_seconds: f64,
    /// Total attempts allowed (first try included); at least 1.
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_seconds: 0.01,
            factor: 2.0,
            max_delay_seconds: 1.0,
            max_attempts: 5,
        }
    }
}

impl BackoffPolicy {
    /// The delay after failed attempt `attempt` (0-based), in seconds.
    pub fn delay_seconds(&self, attempt: u32) -> f64 {
        (self.base_seconds * self.factor.powi(attempt as i32)).min(self.max_delay_seconds)
    }

    /// The delay after failed attempt `attempt` (0-based), as a [`Duration`].
    pub fn delay(&self, attempt: u32) -> Duration {
        Duration::from_secs_f64(self.delay_seconds(attempt).max(0.0))
    }
}

/// Fast-path flag: true while an injector is installed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// The globally installed injector, if any.
static GLOBAL: Mutex<Option<Arc<FaultInjector>>> = Mutex::new(None);

/// Guard returned by [`install`]; uninstalls on drop.
#[must_use = "dropping the guard immediately uninstalls the injector"]
pub struct InstallGuard(());

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        *GLOBAL.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }
}

/// Install `injector` as the process-global injector consulted by
/// [`fault_point!`]. Panics if another injector is already installed —
/// tests that arm the global must serialize on their own lock.
pub fn install(injector: Arc<FaultInjector>) -> InstallGuard {
    let mut slot = GLOBAL.lock().unwrap_or_else(|p| p.into_inner());
    assert!(
        slot.is_none(),
        "a global fault injector is already installed"
    );
    *slot = Some(injector);
    ARMED.store(true, Ordering::Release);
    InstallGuard(())
}

/// The decision behind [`fault_point!`]: one relaxed load when disarmed.
#[cfg(feature = "armed")]
#[inline]
pub fn poll(site: &str) -> Option<FaultKind> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let inj = GLOBAL
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .map(Arc::clone)?;
    inj.check(site)
}

/// Disarmed build: every fault point is a constant `None`.
#[cfg(not(feature = "armed"))]
#[inline(always)]
pub fn poll(_site: &str) -> Option<FaultKind> {
    None
}

/// Mark a fault site. Evaluates to `Option<FaultKind>`: `None` on the happy
/// path, `Some(kind)` when the installed plan injects a fault here.
///
/// ```
/// # use faults::fault_point;
/// if let Some(fault) = fault_point!("demo.site") {
///     // simulate the failure `fault` describes
///     let _ = fault;
/// }
/// ```
#[macro_export]
macro_rules! fault_point {
    ($site:expr) => {
        $crate::poll($site)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let inj = FaultPlan::new(7).build();
        for _ in 0..100 {
            assert_eq!(inj.check("anything"), None);
        }
        assert!(inj.trace().is_empty());
    }

    #[test]
    fn probability_one_always_faults_and_zero_never_does() {
        let inj = FaultPlan::new(1)
            .with_site(SiteSpec::transient("hot", 1.0))
            .with_site(SiteSpec::transient("cold", 0.0))
            .build();
        for _ in 0..50 {
            assert_eq!(inj.check("hot"), Some(FaultKind::Transient));
            assert_eq!(inj.check("cold"), None);
        }
        assert_eq!(inj.fault_count(), 50);
    }

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        let run = |seed| {
            let inj = FaultPlan::new(seed)
                .with_site(SiteSpec::transient("a.*", 0.3))
                .build();
            for _ in 0..200 {
                inj.check("a.x");
                inj.check("a.y");
            }
            inj.trace()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn campaign_sites_keep_independent_hit_counters() {
        assert_eq!(campaign_site(3, "emit"), "service.c3.emit");

        // A crash aimed at campaign 1's second emit must not be consumed by
        // campaign 0 hammering its own site, and must not fire for others.
        let inj = FaultPlan::new(11)
            .with_site(SiteSpec::crash_at(campaign_site(1, "emit"), 1))
            .build();
        for _ in 0..10 {
            assert_eq!(inj.check(&campaign_site(0, "emit")), None);
        }
        assert_eq!(inj.check(&campaign_site(1, "emit")), None, "hit 0 clean");
        assert_eq!(
            inj.check(&campaign_site(1, "emit")),
            Some(FaultKind::Crash),
            "hit 1 crashes regardless of neighbor traffic"
        );
        assert_eq!(inj.check(&campaign_site(2, "emit")), None);

        // A prefix pattern covers every campaign's instance of an op family.
        let all = FaultPlan::new(12)
            .with_site(SiteSpec::transient("service.c*", 1.0))
            .build();
        assert_eq!(
            all.check(&campaign_site(7, "analysis")),
            Some(FaultKind::Transient)
        );
    }

    #[test]
    fn per_site_streams_are_interleaving_independent() {
        // Exercising site B between hits of site A must not change A's
        // decisions.
        let decisions = |interleave: bool| {
            let inj = FaultPlan::new(9)
                .with_site(SiteSpec::transient("*", 0.5))
                .build();
            let mut a = Vec::new();
            for _ in 0..100 {
                a.push(inj.check("a").is_some());
                if interleave {
                    inj.check("b");
                }
            }
            a
        };
        assert_eq!(decisions(false), decisions(true));
    }

    #[test]
    fn scheduled_hits_fire_exactly_there() {
        let inj = FaultPlan::new(3)
            .with_site(SiteSpec::crash_at("s", 4))
            .build();
        for hit in 0..10u64 {
            let got = inj.check("s");
            assert_eq!(got.is_some(), hit == 4, "hit {hit}");
        }
        assert_eq!(
            inj.trace(),
            vec![FaultEvent {
                site: "s".into(),
                hit: 4,
                kind: FaultKind::Crash
            }]
        );
    }

    #[test]
    fn max_faults_caps_injection() {
        let inj = FaultPlan::new(5)
            .with_site(SiteSpec::transient("s", 1.0).with_max_faults(3))
            .build();
        let fired = (0..20).filter(|_| inj.check("s").is_some()).count();
        assert_eq!(fired, 3);
        let stats = inj.site_stats();
        assert_eq!(stats["s"], (20, 3));
    }

    #[test]
    fn record_only_enumerates_sites_without_faulting() {
        let inj = FaultPlan::record_only(2).build();
        for _ in 0..3 {
            assert_eq!(inj.check("listener.journal"), None);
        }
        assert_eq!(inj.check("cache.read"), None);
        assert!(inj.trace().is_empty(), "record-only injects nothing");
        assert_eq!(
            inj.sites_reached(),
            vec![
                ("cache.read".to_string(), 1),
                ("listener.journal".to_string(), 3)
            ]
        );
    }

    #[test]
    fn recording_does_not_shift_matched_site_streams() {
        // Interleaving polls of an unmatched, recorded site must not change
        // which faults fire at a matched site.
        let decisions = |record: bool| {
            let mut plan = FaultPlan::new(13).with_site(SiteSpec::transient("a", 0.5));
            if record {
                plan = plan.with_recording();
            }
            let inj = plan.build();
            let mut a = Vec::new();
            for _ in 0..100 {
                a.push(inj.check("a").is_some());
                inj.check("unmatched.site");
            }
            a
        };
        assert_eq!(decisions(false), decisions(true));
    }

    #[test]
    fn sites_reached_without_recording_lists_only_matched_sites() {
        let inj = FaultPlan::new(1)
            .with_site(SiteSpec::transient("a", 0.0))
            .build();
        inj.check("a");
        inj.check("b");
        assert_eq!(inj.sites_reached(), vec![("a".to_string(), 1)]);
    }

    #[test]
    fn prefix_patterns_match_families() {
        let spec = SiteSpec::transient("listener.*", 1.0);
        assert!(spec.matches("listener.submit"));
        assert!(spec.matches("listener.scan"));
        assert!(!spec.matches("scheduler.job"));
        let exact = SiteSpec::transient("comm.send", 1.0);
        assert!(exact.matches("comm.send"));
        assert!(!exact.matches("comm.send.extra"));
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let b = BackoffPolicy {
            base_seconds: 1.0,
            factor: 2.0,
            max_delay_seconds: 5.0,
            max_attempts: 4,
        };
        assert_eq!(b.delay_seconds(0), 1.0);
        assert_eq!(b.delay_seconds(1), 2.0);
        assert_eq!(b.delay_seconds(2), 4.0);
        assert_eq!(b.delay_seconds(3), 5.0, "capped");
        assert_eq!(b.delay(10), Duration::from_secs_f64(5.0));
    }

    #[test]
    fn global_install_arms_fault_points() {
        // Single test exercising the global slot (tests in this module run
        // in one binary; only this one installs).
        assert_eq!(fault_point!("g.x"), None, "disarmed by default");
        let inj = FaultPlan::new(11)
            .with_site(SiteSpec::transient("g.*", 1.0))
            .build();
        {
            let _guard = install(Arc::clone(&inj));
            assert_eq!(fault_point!("g.x"), Some(FaultKind::Transient));
            assert_eq!(fault_point!("other"), None);
        }
        assert_eq!(fault_point!("g.x"), None, "guard drop disarms");
        assert_eq!(inj.fault_count(), 1);
    }
}
