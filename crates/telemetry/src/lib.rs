//! Unified telemetry for the workflow crates: structured **spans** (nested,
//! with parent ids), **counters**, and **histograms** (fixed log-bucket,
//! mergeable), recorded into per-thread lock-free ring buffers and drained
//! into a trace that exports three ways — Chrome trace-event JSON (loadable
//! in Perfetto / `chrome://tracing`), Prometheus-style text metrics, and a
//! human-readable per-phase summary table.
//!
//! # Feature gating (the `faults` pattern)
//!
//! The [`span!`]/[`count!`]/[`observe!`]/[`instant!`] macros compile to
//! no-ops unless the `recording` feature is enabled, so instrumented hot
//! paths (the dpp dispatch path most of all) carry zero overhead by default.
//! With the feature on, every record is one relaxed atomic load when no
//! recorder is installed. The library API itself — [`Recorder`],
//! [`install`], [`Histogram`], the exporters, and the [`json`] parser — is
//! always compiled, so exporter tests and the examples' summary tables work
//! in every build.
//!
//! # Determinism
//!
//! A recorder created with [`Clock::Logical`] strips wall time entirely: its
//! Chrome export contains only completed spans, canonically sorted by
//! `(layer, name, arg)` with rewritten timestamps, so two runs that perform
//! the same logical work — e.g. chaos-harness replays with the same
//! `CHAOS_SEED` — produce **byte-identical** trace files. Counters and
//! histograms are excluded from the logical export because poll-driven hit
//! counts (the listener's scan loop) are wall-clock dependent.
//!
//! ```
//! let recorder = std::sync::Arc::new(telemetry::Recorder::new(telemetry::Clock::Wall));
//! let guard = telemetry::install(recorder);
//! {
//!     let _span = telemetry::enter_span("demo", "work", 7);
//!     telemetry::add_count("demo", "items", 3);
//! }
//! let trace = guard.finish();
//! assert_eq!(trace.counters()[&("demo", "items")], 3);
//! println!("{}", trace.summary_table());
//! ```

#![warn(missing_docs)]

pub mod json;

use parking_lot::Mutex;
use std::cell::{RefCell, UnsafeCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

// ------------------------------------------------------------------ events

/// Time source for a [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Microseconds since the recorder was created. Spans carry real
    /// durations; the Chrome export is a genuine timeline.
    Wall,
    /// No time at all: every timestamp records as zero and the Chrome export
    /// is canonically ordered, making same-work runs byte-identical.
    Logical,
}

/// What one recorded event represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened. `parent` is the id of the enclosing span on the same
    /// thread (0 when the span is a root).
    SpanBegin {
        /// Unique span id (process-wide, never 0).
        id: u64,
        /// Enclosing span's id, or 0.
        parent: u64,
        /// Caller-supplied numeric argument (step number, element count…).
        arg: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Id of the span being closed.
        id: u64,
    },
    /// A counter increment.
    Count {
        /// Amount added to the counter.
        delta: u64,
    },
    /// A histogram observation.
    Observe {
        /// Observed value.
        value: u64,
    },
}

/// One telemetry event: where it came from, when, and what it was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Instrumented layer (`"dpp"`, `"simhpc"`, `"listener"`, `"runner"`,
    /// `"comm"`, `"faults"`).
    pub layer: &'static str,
    /// Event name within the layer.
    pub name: &'static str,
    /// Timestamp per the recorder's [`Clock`] (µs for wall, 0 for logical).
    pub ts: u64,
    /// Ring-buffer lane (≈ thread) that recorded the event.
    pub lane: u64,
    /// Caller-scoped dimension active when the event was recorded (see
    /// [`with_dim`]); `0` means unscoped. The workflow service tags every
    /// event with the campaign id this way, so one trace can be sliced
    /// per campaign without widening the `&'static str` name space.
    pub dim: u64,
    /// Payload.
    pub kind: EventKind,
}

// ------------------------------------------------------------- ring buffer

/// Events buffered per lane before the producer spills to the shared sink.
const LANE_CAP: usize = 1024;

/// A single-producer ring buffer owned by one thread at a time. The producer
/// pushes lock-free; draining (by the producer on overflow, or by the
/// recorder at finish) is serialized by the per-lane `drain` mutex, so the
/// consumer side stays single even when two parties could drain.
struct Lane {
    id: u64,
    head: AtomicUsize,
    tail: AtomicUsize,
    drain: Mutex<()>,
    slots: Box<[UnsafeCell<MaybeUninit<Event>>]>,
}

// The slots are only written by the unique producer and only read by the
// unique drainer (enforced by ownership + the drain mutex).
unsafe impl Send for Lane {}
unsafe impl Sync for Lane {}

impl Lane {
    fn new(id: u64) -> Self {
        Lane {
            id,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            drain: Mutex::new(()),
            slots: (0..LANE_CAP)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        }
    }

    /// Producer-side push; spills the whole ring into `sink` when full, so
    /// no event is ever dropped.
    fn push(&self, ev: Event, sink: &Mutex<Vec<Event>>) {
        loop {
            let head = self.head.load(Ordering::Relaxed);
            let tail = self.tail.load(Ordering::Acquire);
            if head.wrapping_sub(tail) < LANE_CAP {
                unsafe { (*self.slots[head % LANE_CAP].get()).write(ev) };
                self.head.store(head.wrapping_add(1), Ordering::Release);
                return;
            }
            self.drain_into(sink);
        }
    }

    /// Move every buffered event into `sink`, preserving order.
    fn drain_into(&self, sink: &Mutex<Vec<Event>>) {
        let _serial = self.drain.lock();
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        if tail == head {
            return;
        }
        let mut out = sink.lock();
        while tail != head {
            out.push(unsafe { (*self.slots[tail % LANE_CAP].get()).assume_init_read() });
            tail = tail.wrapping_add(1);
        }
        drop(out);
        self.tail.store(tail, Ordering::Release);
    }
}

// --------------------------------------------------------------- recorder

/// Collects events from every instrumented thread. Create one, wrap it in an
/// [`Arc`], [`install`] it, run the workload, then [`RecorderGuard::finish`]
/// to obtain the [`Trace`].
pub struct Recorder {
    clock: Clock,
    epoch: Instant,
    next_lane: AtomicU64,
    next_span: AtomicU64,
    lanes: Mutex<Vec<Arc<Lane>>>,
    free: Mutex<Vec<Arc<Lane>>>,
    sink: Mutex<Vec<Event>>,
}

impl Recorder {
    /// New empty recorder using the given clock.
    pub fn new(clock: Clock) -> Self {
        Recorder {
            clock,
            epoch: Instant::now(),
            next_lane: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
            lanes: Mutex::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            sink: Mutex::new(Vec::new()),
        }
    }

    /// The clock mode this recorder was created with.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    fn now(&self) -> u64 {
        match self.clock {
            Clock::Wall => self.epoch.elapsed().as_micros() as u64,
            Clock::Logical => 0,
        }
    }

    /// Hand a lane to a new recording thread, recycling retired lanes (the
    /// workflow spawns many short-lived rank/job threads).
    fn acquire_lane(&self) -> Arc<Lane> {
        if let Some(lane) = self.free.lock().pop() {
            return lane;
        }
        let lane = Arc::new(Lane::new(self.next_lane.fetch_add(1, Ordering::Relaxed)));
        self.lanes.lock().push(Arc::clone(&lane));
        lane
    }

    /// Return a lane at thread exit: flush it, then make it reusable.
    fn retire_lane(&self, lane: &Arc<Lane>) {
        lane.drain_into(&self.sink);
        self.free.lock().push(Arc::clone(lane));
    }

    /// Drain every lane and return everything recorded so far. Threads still
    /// actively recording may add events afterwards; call this only once the
    /// instrumented workload has joined.
    pub fn drain_trace(&self) -> Trace {
        for lane in self.lanes.lock().iter() {
            lane.drain_into(&self.sink);
        }
        Trace {
            clock: self.clock,
            events: std::mem::take(&mut *self.sink.lock()),
        }
    }
}

// ------------------------------------------------------------ global state

/// Fast-path switch: true while a recorder is installed (and, implicitly,
/// the `recording` feature compiled the macros to something real).
static ARMED: AtomicBool = AtomicBool::new(false);
/// Bumped on every install/uninstall so thread-local lane caches detect
/// recorder turnover.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// The installed recorder, if any.
static GLOBAL: Mutex<Option<Arc<Recorder>>> = Mutex::new(None);

/// Uninstalls the recorder when dropped (mirrors `faults::InstallGuard`).
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub struct RecorderGuard {
    recorder: Arc<Recorder>,
}

impl RecorderGuard {
    /// Uninstall the recorder and return its collected [`Trace`].
    pub fn finish(self) -> Trace {
        let recorder = Arc::clone(&self.recorder);
        drop(self);
        recorder.drain_trace()
    }

    /// The installed recorder (e.g. to snapshot an intermediate trace).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        *GLOBAL.lock() = None;
        GENERATION.fetch_add(1, Ordering::Release);
    }
}

/// Install `recorder` as the process-global recorder. Panics if one is
/// already installed — tests that install must serialize (see
/// `tests/chaos.rs` for the pattern).
pub fn install(recorder: Arc<Recorder>) -> RecorderGuard {
    let mut slot = GLOBAL.lock();
    assert!(
        slot.is_none(),
        "a telemetry recorder is already installed; drop the previous guard first"
    );
    *slot = Some(Arc::clone(&recorder));
    GENERATION.fetch_add(1, Ordering::Release);
    ARMED.store(true, Ordering::Release);
    drop(slot);
    RecorderGuard { recorder }
}

/// True while a recorder is installed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Whether this build compiled the recording macros in. When `false`, the
/// `span!`/`count!`/`observe!`/`instant!` call sites are no-ops and an
/// installed recorder sees only explicitly recorded events — callers use
/// this to warn that a requested trace will come out empty.
pub const COMPILED_WITH_RECORDING: bool = cfg!(feature = "recording");

// -------------------------------------------------------- event dimension

thread_local! {
    /// The dimension stamped onto every event this thread records (0 = none).
    static CURRENT_DIM: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The dimension currently stamped onto this thread's events (0 = none).
pub fn current_dim() -> u64 {
    CURRENT_DIM.with(|d| d.get())
}

/// RAII guard restoring the previous event dimension on drop.
pub struct DimGuard {
    prev: u64,
}

impl Drop for DimGuard {
    fn drop(&mut self) {
        CURRENT_DIM.with(|d| d.set(self.prev));
    }
}

/// Stamp every event recorded by this thread with `dim` until the returned
/// guard drops (guards nest; the previous dimension is restored).
///
/// Layer and name stay `&'static str`, so a long-lived service multiplexing
/// many campaigns cannot mint per-campaign names; instead it wraps each
/// campaign's work in `with_dim(campaign_id)` and slices the finished trace
/// with [`Trace::counters_by_dim`]. Dimension `0` is reserved for unscoped
/// events.
pub fn with_dim(dim: u64) -> DimGuard {
    let prev = CURRENT_DIM.with(|d| d.replace(dim));
    DimGuard { prev }
}

// ------------------------------------------------------- thread-local lane

struct ThreadCtx {
    generation: u64,
    recorder: Weak<Recorder>,
    lane: Arc<Lane>,
    span_stack: Vec<u64>,
}

/// Thread-local slot whose drop (at thread exit) flushes and recycles the
/// lane.
struct ThreadSlot(Option<ThreadCtx>);

impl Drop for ThreadSlot {
    fn drop(&mut self) {
        if let Some(ctx) = self.0.take() {
            if let Some(rec) = ctx.recorder.upgrade() {
                rec.retire_lane(&ctx.lane);
            }
        }
    }
}

thread_local! {
    static TL: RefCell<ThreadSlot> = const { RefCell::new(ThreadSlot(None)) };
}

/// Run `f` with the current recorder and this thread's lane context,
/// (re)acquiring a lane if the installed recorder changed since last use.
/// Returns `None` when no recorder is installed.
fn with_ctx<R>(f: impl FnOnce(&Arc<Recorder>, &mut ThreadCtx) -> R) -> Option<R> {
    TL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let generation = GENERATION.load(Ordering::Acquire);
        let stale = match &slot.0 {
            Some(ctx) => ctx.generation != generation,
            None => true,
        };
        if stale {
            if let Some(old) = slot.0.take() {
                if let Some(rec) = old.recorder.upgrade() {
                    rec.retire_lane(&old.lane);
                }
            }
            let rec = GLOBAL.lock().clone()?;
            let lane = rec.acquire_lane();
            slot.0 = Some(ThreadCtx {
                generation,
                recorder: Arc::downgrade(&rec),
                lane,
                span_stack: Vec::new(),
            });
        }
        let ctx = slot.0.as_mut().expect("ctx just ensured");
        let rec = ctx.recorder.upgrade()?;
        Some(f(&rec, ctx))
    })
}

// ------------------------------------------------------------ explicit API

/// RAII handle for an open span; records the end event on drop. Must be
/// dropped on the thread that created it.
pub struct SpanHandle(Option<ActiveSpan>);

struct ActiveSpan {
    id: u64,
    generation: u64,
    layer: &'static str,
    name: &'static str,
}

impl SpanHandle {
    /// A handle that records nothing (what the disabled macros return).
    pub const fn disabled() -> Self {
        SpanHandle(None)
    }
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        with_ctx(|rec, ctx| {
            if ctx.generation != active.generation {
                return;
            }
            if let Some(pos) = ctx.span_stack.iter().rposition(|&s| s == active.id) {
                ctx.span_stack.truncate(pos);
            }
            ctx.lane.push(
                Event {
                    layer: active.layer,
                    name: active.name,
                    ts: rec.now(),
                    lane: ctx.lane.id,
                    dim: current_dim(),
                    kind: EventKind::SpanEnd { id: active.id },
                },
                &rec.sink,
            );
        });
    }
}

/// Open a span. Nests under the thread's innermost open span. Returns a
/// recording handle, or a no-op handle when no recorder is installed.
pub fn enter_span(layer: &'static str, name: &'static str, arg: u64) -> SpanHandle {
    if !ARMED.load(Ordering::Relaxed) {
        return SpanHandle(None);
    }
    let active = with_ctx(|rec, ctx| {
        let id = rec.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        let parent = ctx.span_stack.last().copied().unwrap_or(0);
        ctx.span_stack.push(id);
        ctx.lane.push(
            Event {
                layer,
                name,
                ts: rec.now(),
                lane: ctx.lane.id,
                dim: current_dim(),
                kind: EventKind::SpanBegin { id, parent, arg },
            },
            &rec.sink,
        );
        ActiveSpan {
            id,
            generation: ctx.generation,
            layer,
            name,
        }
    });
    SpanHandle(active)
}

/// Add `delta` to the counter `(layer, name)`.
pub fn add_count(layer: &'static str, name: &'static str, delta: u64) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    with_ctx(|rec, ctx| {
        ctx.lane.push(
            Event {
                layer,
                name,
                ts: rec.now(),
                lane: ctx.lane.id,
                dim: current_dim(),
                kind: EventKind::Count { delta },
            },
            &rec.sink,
        );
    });
}

/// Record `value` into the histogram `(layer, name)`.
pub fn observe(layer: &'static str, name: &'static str, value: u64) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    with_ctx(|rec, ctx| {
        ctx.lane.push(
            Event {
                layer,
                name,
                ts: rec.now(),
                lane: ctx.lane.id,
                dim: current_dim(),
                kind: EventKind::Observe { value },
            },
            &rec.sink,
        );
    });
}

/// Record a zero-duration span (an instantaneous occurrence — e.g. a fault
/// firing — tagged with the active span as its parent).
pub fn instant(layer: &'static str, name: &'static str, arg: u64) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    with_ctx(|rec, ctx| {
        let id = rec.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        let parent = ctx.span_stack.last().copied().unwrap_or(0);
        let ts = rec.now();
        ctx.lane.push(
            Event {
                layer,
                name,
                ts,
                lane: ctx.lane.id,
                dim: current_dim(),
                kind: EventKind::SpanBegin { id, parent, arg },
            },
            &rec.sink,
        );
        ctx.lane.push(
            Event {
                layer,
                name,
                ts,
                lane: ctx.lane.id,
                dim: current_dim(),
                kind: EventKind::SpanEnd { id },
            },
            &rec.sink,
        );
    });
}

// ----------------------------------------------------------------- macros

/// Open a span: `span!("layer", "name")` or `span!("layer", "name", arg)`.
/// Bind the result (`let _span = span!(…)`) — the span closes when the
/// handle drops. Compiles to a no-op without the `recording` feature.
#[cfg(feature = "recording")]
#[macro_export]
macro_rules! span {
    ($layer:expr, $name:expr) => {
        $crate::enter_span($layer, $name, 0)
    };
    ($layer:expr, $name:expr, $arg:expr) => {
        $crate::enter_span($layer, $name, $arg as u64)
    };
}

/// Open a span: `span!("layer", "name")` or `span!("layer", "name", arg)`.
/// Bind the result (`let _span = span!(…)`) — the span closes when the
/// handle drops. Compiles to a no-op without the `recording` feature.
#[cfg(not(feature = "recording"))]
#[macro_export]
macro_rules! span {
    ($layer:expr, $name:expr) => {{
        let _ = (&$layer, &$name);
        $crate::SpanHandle::disabled()
    }};
    ($layer:expr, $name:expr, $arg:expr) => {{
        let _ = (&$layer, &$name, &$arg);
        $crate::SpanHandle::disabled()
    }};
}

/// Add to a counter: `count!("layer", "name", delta)`. Compiles to a no-op
/// without the `recording` feature.
#[cfg(feature = "recording")]
#[macro_export]
macro_rules! count {
    ($layer:expr, $name:expr, $delta:expr) => {
        $crate::add_count($layer, $name, $delta as u64)
    };
}

/// Add to a counter: `count!("layer", "name", delta)`. Compiles to a no-op
/// without the `recording` feature.
#[cfg(not(feature = "recording"))]
#[macro_export]
macro_rules! count {
    ($layer:expr, $name:expr, $delta:expr) => {{
        let _ = (&$layer, &$name, &$delta);
    }};
}

/// Record a histogram observation: `observe!("layer", "name", value)`.
/// Compiles to a no-op without the `recording` feature.
#[cfg(feature = "recording")]
#[macro_export]
macro_rules! observe {
    ($layer:expr, $name:expr, $value:expr) => {
        $crate::observe($layer, $name, $value as u64)
    };
}

/// Record a histogram observation: `observe!("layer", "name", value)`.
/// Compiles to a no-op without the `recording` feature.
#[cfg(not(feature = "recording"))]
#[macro_export]
macro_rules! observe {
    ($layer:expr, $name:expr, $value:expr) => {{
        let _ = (&$layer, &$name, &$value);
    }};
}

/// Record an instantaneous event: `instant!("layer", "name", arg)`.
/// Compiles to a no-op without the `recording` feature.
#[cfg(feature = "recording")]
#[macro_export]
macro_rules! instant {
    ($layer:expr, $name:expr, $arg:expr) => {
        $crate::instant($layer, $name, $arg as u64)
    };
}

/// Record an instantaneous event: `instant!("layer", "name", arg)`.
/// Compiles to a no-op without the `recording` feature.
#[cfg(not(feature = "recording"))]
#[macro_export]
macro_rules! instant {
    ($layer:expr, $name:expr, $arg:expr) => {{
        let _ = (&$layer, &$name, &$arg);
    }};
}

// -------------------------------------------------------------- histogram

/// Number of log₂ buckets; covers the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed log₂-bucketed histogram. Bucket 0 holds the value 0; bucket `b`
/// (b ≥ 1) holds values in `[2^(b-1), 2^b - 1]`. Merging is element-wise
/// addition, so it is associative and commutative and preserves counts
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Bucket index for `value`. The top bucket (63) absorbs everything
    /// from `2^62` up.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `b`.
    pub fn bucket_bound(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 63 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Merge another histogram into this one (element-wise; associative and
    /// commutative, exact count preservation).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 ≤ q ≤ 1).
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Self::bucket_bound(b);
            }
        }
        u64::MAX
    }
}

// ------------------------------------------------------------------ trace

/// A completed span reconstructed from begin/end events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Instrumented layer.
    pub layer: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Caller-supplied argument.
    pub arg: u64,
    /// Span id (unique, never 0).
    pub id: u64,
    /// Parent span id, or 0 for roots.
    pub parent: u64,
    /// Lane (≈ thread) the span ran on.
    pub lane: u64,
    /// Start timestamp (µs for wall clock, 0 for logical).
    pub ts: u64,
    /// Duration (µs for wall clock, 0 for logical).
    pub dur: u64,
}

/// Everything a recorder collected, with the three exporters.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Clock mode the recorder ran with.
    pub clock: Clock,
    /// Raw events in drain order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Completed spans (unmatched opens are dropped), sorted by start time
    /// then id.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut open: BTreeMap<u64, SpanRecord> = BTreeMap::new();
        let mut done = Vec::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::SpanBegin { id, parent, arg } => {
                    open.insert(
                        id,
                        SpanRecord {
                            layer: ev.layer,
                            name: ev.name,
                            arg,
                            id,
                            parent,
                            lane: ev.lane,
                            ts: ev.ts,
                            dur: 0,
                        },
                    );
                }
                EventKind::SpanEnd { id } => {
                    if let Some(mut rec) = open.remove(&id) {
                        rec.dur = ev.ts.saturating_sub(rec.ts);
                        done.push(rec);
                    }
                }
                _ => {}
            }
        }
        done.sort_by_key(|s| (s.ts, s.id));
        done
    }

    /// Counter totals keyed by `(layer, name)`.
    pub fn counters(&self) -> BTreeMap<(&'static str, &'static str), u64> {
        let mut out = BTreeMap::new();
        for ev in &self.events {
            if let EventKind::Count { delta } = ev.kind {
                *out.entry((ev.layer, ev.name)).or_insert(0u64) += delta;
            }
        }
        out
    }

    /// Counter totals keyed by `(layer, name, dim)` — the per-campaign view
    /// of [`counters`](Self::counters). Events recorded outside any
    /// [`with_dim`] scope land under dim `0`; summing a counter across all
    /// dims reproduces the undimensioned total exactly.
    pub fn counters_by_dim(&self) -> BTreeMap<(&'static str, &'static str, u64), u64> {
        let mut out = BTreeMap::new();
        for ev in &self.events {
            if let EventKind::Count { delta } = ev.kind {
                *out.entry((ev.layer, ev.name, ev.dim)).or_insert(0u64) += delta;
            }
        }
        out
    }

    /// Histograms keyed by `(layer, name)`.
    pub fn histograms(&self) -> BTreeMap<(&'static str, &'static str), Histogram> {
        let mut out: BTreeMap<_, Histogram> = BTreeMap::new();
        for ev in &self.events {
            if let EventKind::Observe { value } = ev.kind {
                out.entry((ev.layer, ev.name)).or_default().record(value);
            }
        }
        out
    }

    /// The distinct layers that contributed at least one event.
    pub fn layers(&self) -> Vec<&'static str> {
        let set: std::collections::BTreeSet<_> = self.events.iter().map(|e| e.layer).collect();
        set.into_iter().collect()
    }

    /// Chrome trace-event JSON (open in Perfetto or `chrome://tracing`).
    ///
    /// Wall clock: every completed span becomes an `"X"` (complete) event
    /// with its real timestamp, duration, and lane as `tid`; span ids and
    /// parent ids ride in `args`.
    ///
    /// Logical clock: only completed spans are exported, canonically sorted
    /// by `(layer, name, arg)` with `ts` rewritten to the sort index and
    /// `dur` fixed at 1 — two runs doing the same logical work produce
    /// byte-identical output (see the crate docs).
    pub fn chrome_json(&self) -> String {
        let mut spans = self.spans();
        let mut out = String::from("{\"traceEvents\":[\n");
        match self.clock {
            Clock::Wall => {
                for (i, s) in spans.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"arg\":{},\"id\":{},\"parent\":{}}}}}",
                        json::escape(s.name),
                        json::escape(s.layer),
                        s.lane,
                        s.ts,
                        s.dur,
                        s.arg,
                        s.id,
                        s.parent
                    );
                    out.push_str(if i + 1 < spans.len() { ",\n" } else { "\n" });
                }
            }
            Clock::Logical => {
                spans.sort_by_key(|s| (s.layer, s.name, s.arg));
                for (i, s) in spans.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{},\"dur\":1,\"args\":{{\"arg\":{}}}}}",
                        json::escape(s.name),
                        json::escape(s.layer),
                        i,
                        s.arg
                    );
                    out.push_str(if i + 1 < spans.len() { ",\n" } else { "\n" });
                }
            }
        }
        out.push_str("]}\n");
        out
    }

    /// Prometheus text-exposition metrics: counters as `_total`, histograms
    /// as `_bucket{le=…}`/`_sum`/`_count`, all prefixed `hacc_`.
    pub fn prometheus_text(&self) -> String {
        fn sanitize(s: &str) -> String {
            s.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for ((layer, name), total) in self.counters() {
            let metric = format!("hacc_{}_{}", sanitize(layer), sanitize(name));
            let _ = writeln!(out, "# TYPE {metric}_total counter");
            let _ = writeln!(out, "{metric}_total {total}");
        }
        for ((layer, name), hist) in self.histograms() {
            let metric = format!("hacc_{}_{}", sanitize(layer), sanitize(name));
            let _ = writeln!(out, "# TYPE {metric} histogram");
            let top = hist.buckets().iter().rposition(|&c| c > 0).unwrap_or(0);
            let mut cumulative = 0u64;
            for b in 0..=top {
                cumulative += hist.buckets()[b];
                let _ = writeln!(
                    out,
                    "{metric}_bucket{{le=\"{}\"}} {cumulative}",
                    Histogram::bucket_bound(b)
                );
            }
            let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", hist.count());
            let _ = writeln!(out, "{metric}_sum {}", hist.sum());
            let _ = writeln!(out, "{metric}_count {}", hist.count());
        }
        out
    }

    /// Human-readable per-phase summary: span totals per `(layer, name)`,
    /// then counters, then histograms.
    pub fn summary_table(&self) -> String {
        let spans = self.spans();
        let counters = self.counters();
        let histograms = self.histograms();
        if spans.is_empty() && counters.is_empty() && histograms.is_empty() {
            return "telemetry summary: no events recorded\n".to_string();
        }
        let mut out = String::from("telemetry summary\n");
        if !spans.is_empty() {
            let mut agg: BTreeMap<(&str, &str), (u64, u64, u64)> = BTreeMap::new();
            for s in &spans {
                let e = agg.entry((s.layer, s.name)).or_insert((0, 0, 0));
                e.0 += 1;
                e.1 += s.dur;
                e.2 = e.2.max(s.dur);
            }
            let _ = writeln!(
                out,
                "  {:<14} {:<24} {:>8} {:>12} {:>10} {:>10}",
                "layer", "span", "count", "total µs", "mean µs", "max µs"
            );
            for ((layer, name), (count, total, max)) in agg {
                let _ = writeln!(
                    out,
                    "  {:<14} {:<24} {:>8} {:>12} {:>10.1} {:>10}",
                    layer,
                    name,
                    count,
                    total,
                    total as f64 / count as f64,
                    max
                );
            }
        }
        if !counters.is_empty() {
            let _ = writeln!(out, "  {:<14} {:<24} {:>8}", "layer", "counter", "total");
            for ((layer, name), total) in counters {
                let _ = writeln!(out, "  {:<14} {:<24} {:>8}", layer, name, total);
            }
        }
        if !histograms.is_empty() {
            let _ = writeln!(
                out,
                "  {:<14} {:<24} {:>8} {:>12} {:>10} {:>10}",
                "layer", "histogram", "count", "mean", "p50 ≤", "p95 ≤"
            );
            for ((layer, name), h) in histograms {
                let _ = writeln!(
                    out,
                    "  {:<14} {:<24} {:>8} {:>12.1} {:>10} {:>10}",
                    layer,
                    name,
                    h.count(),
                    h.mean(),
                    h.quantile_bound(0.5),
                    h.quantile_bound(0.95)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Tests that install the process-global recorder must not overlap.
    static INSTALL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn histogram_buckets_and_bounds() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_006);
        assert!(h.quantile_bound(0.5) <= 3);
        assert!(h.quantile_bound(1.0) >= 1_000_000);
    }

    #[test]
    fn explicit_api_records_spans_counters_histograms() {
        let _serial = INSTALL_LOCK.lock();
        let guard = install(Arc::new(Recorder::new(Clock::Wall)));
        {
            let _outer = enter_span("test", "outer", 1);
            {
                let _inner = enter_span("test", "inner", 2);
                add_count("test", "widgets", 5);
                observe("test", "latency", 40);
            }
            instant("test", "blip", 9);
        }
        let trace = guard.finish();
        let spans = trace.spans();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let blip = spans.iter().find(|s| s.name == "blip").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id, "inner must nest under outer");
        assert_eq!(blip.parent, outer.id, "instants tag the active span");
        assert_eq!(trace.counters()[&("test", "widgets")], 5);
        assert_eq!(trace.histograms()[&("test", "latency")].count(), 1);
        assert_eq!(trace.layers(), vec!["test"]);
    }

    #[test]
    fn dim_scopes_slice_counters_per_campaign() {
        let _serial = INSTALL_LOCK.lock();
        let guard = install(Arc::new(Recorder::new(Clock::Wall)));
        assert_eq!(current_dim(), 0);
        add_count("service", "files", 1); // unscoped → dim 0
        {
            let _c1 = with_dim(1);
            assert_eq!(current_dim(), 1);
            add_count("service", "files", 10);
            {
                // Nested scopes shadow and then restore the outer dim.
                let _c2 = with_dim(2);
                add_count("service", "files", 100);
            }
            assert_eq!(current_dim(), 1);
            add_count("service", "files", 10);
        }
        assert_eq!(current_dim(), 0, "guard drop restores the previous dim");

        // Dims are thread-local: a worker thread scopes independently.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _c3 = with_dim(3);
                add_count("service", "files", 1000);
            });
        });

        let trace = guard.finish();
        let by_dim = trace.counters_by_dim();
        assert_eq!(by_dim[&("service", "files", 0)], 1);
        assert_eq!(by_dim[&("service", "files", 1)], 20);
        assert_eq!(by_dim[&("service", "files", 2)], 100);
        assert_eq!(by_dim[&("service", "files", 3)], 1000);
        // The undimensioned view is exactly the sum over dims.
        assert_eq!(trace.counters()[&("service", "files")], 1121);
    }

    #[test]
    fn ring_overflow_loses_nothing_across_threads() {
        let _serial = INSTALL_LOCK.lock();
        let guard = install(Arc::new(Recorder::new(Clock::Wall)));
        const THREADS: usize = 4;
        const PER_THREAD: usize = 3 * LANE_CAP; // force producer-side spills
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..PER_THREAD {
                        add_count("test", "events", 1);
                    }
                });
            }
        });
        let trace = guard.finish();
        assert_eq!(
            trace.counters()[&("test", "events")],
            (THREADS * PER_THREAD) as u64,
            "every event must survive ring overflow"
        );
    }

    #[test]
    fn lanes_are_recycled_across_short_lived_threads() {
        let _serial = INSTALL_LOCK.lock();
        let recorder = Arc::new(Recorder::new(Clock::Wall));
        let guard = install(Arc::clone(&recorder));
        for _ in 0..32 {
            std::thread::spawn(|| add_count("test", "thread", 1))
                .join()
                .unwrap();
        }
        let lanes = recorder.lanes.lock().len();
        assert!(
            lanes < 8,
            "sequential short-lived threads must reuse lanes, got {lanes}"
        );
        let trace = guard.finish();
        assert_eq!(trace.counters()[&("test", "thread")], 32);
    }

    #[test]
    fn nothing_records_when_uninstalled() {
        let _serial = INSTALL_LOCK.lock();
        {
            let _span = enter_span("test", "ignored", 0);
            add_count("test", "ignored", 1);
        }
        let guard = install(Arc::new(Recorder::new(Clock::Wall)));
        let trace = guard.finish();
        assert!(trace.events.is_empty());
    }

    #[test]
    fn chrome_wall_export_round_trips_with_nesting() {
        let _serial = INSTALL_LOCK.lock();
        let guard = install(Arc::new(Recorder::new(Clock::Wall)));
        std::thread::scope(|scope| {
            for t in 0..3u64 {
                scope.spawn(move || {
                    let _outer = enter_span("test", "outer", t);
                    for i in 0..4u64 {
                        let _inner = enter_span("test", "inner", i);
                        std::hint::black_box(i);
                    }
                });
            }
        });
        let trace = guard.finish();
        let text = trace.chrome_json();
        let doc = json::parse(&text).expect("exported trace must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(json::Value::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 15, "3 outer + 12 inner spans");
        // Index spans by id, then check the nesting invariants: a child
        // lies within its parent's [ts, ts+dur] on the same tid.
        let mut by_id = std::collections::BTreeMap::new();
        for ev in events {
            assert_eq!(ev.get("ph").and_then(json::Value::as_str), Some("X"));
            let id = ev.get("args").unwrap().get("id").unwrap().as_u64().unwrap();
            by_id.insert(id, ev);
        }
        let mut nested = 0;
        for ev in events {
            let args = ev.get("args").unwrap();
            let parent = args.get("parent").unwrap().as_u64().unwrap();
            if parent == 0 {
                continue;
            }
            nested += 1;
            let p = by_id[&parent];
            let (ts, dur) = (
                ev.get("ts").unwrap().as_u64().unwrap(),
                ev.get("dur").unwrap().as_u64().unwrap(),
            );
            let (pts, pdur) = (
                p.get("ts").unwrap().as_u64().unwrap(),
                p.get("dur").unwrap().as_u64().unwrap(),
            );
            assert_eq!(ev.get("tid"), p.get("tid"), "child on parent's thread");
            assert!(ts >= pts, "child starts after parent");
            assert!(ts + dur <= pts + pdur, "child ends before parent");
        }
        assert_eq!(nested, 12);
    }

    #[test]
    fn logical_clock_export_is_byte_identical() {
        let _serial = INSTALL_LOCK.lock();
        let run = || {
            let guard = install(Arc::new(Recorder::new(Clock::Logical)));
            // Interleave from threads so drain order differs run to run.
            std::thread::scope(|scope| {
                for t in 0..4u64 {
                    scope.spawn(move || {
                        for i in 0..20u64 {
                            let _s = enter_span("test", "step", i * 10 + t);
                        }
                    });
                }
            });
            guard.finish().chrome_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "logical-clock exports must be byte-identical");
        assert!(json::parse(&a).is_ok());
    }

    #[test]
    fn prometheus_export_shape() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        let trace = Trace {
            clock: Clock::Wall,
            events: vec![
                Event {
                    layer: "dpp",
                    name: "dispatches",
                    ts: 0,
                    lane: 0,
                    dim: 0,
                    kind: EventKind::Count { delta: 7 },
                },
                Event {
                    layer: "simhpc",
                    name: "queue_wait",
                    ts: 0,
                    lane: 0,
                    dim: 0,
                    kind: EventKind::Observe { value: 100 },
                },
            ],
        };
        let text = trace.prometheus_text();
        assert!(text.contains("hacc_dpp_dispatches_total 7"));
        assert!(text.contains("# TYPE hacc_simhpc_queue_wait histogram"));
        assert!(text.contains("hacc_simhpc_queue_wait_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("hacc_simhpc_queue_wait_sum 100"));
        assert!(text.contains("hacc_simhpc_queue_wait_count 1"));
    }

    #[test]
    fn summary_table_renders_all_sections() {
        let _serial = INSTALL_LOCK.lock();
        let guard = install(Arc::new(Recorder::new(Clock::Wall)));
        {
            let _s = enter_span("runner", "in_situ_step", 4);
            add_count("comm", "bytes_sent", 1024);
            observe("simhpc", "queue_wait_seconds", 30);
        }
        let trace = guard.finish();
        let table = trace.summary_table();
        for needle in ["telemetry summary", "in_situ_step", "bytes_sent", "p95"] {
            assert!(table.contains(needle), "summary missing {needle}:\n{table}");
        }
        let empty = Trace {
            clock: Clock::Wall,
            events: vec![],
        };
        assert!(empty.summary_table().contains("no events"));
    }

    fn arb_histogram() -> impl Strategy<Value = Histogram> {
        proptest::collection::vec(0u64..1_000_000, 0..50).prop_map(|vals| {
            let mut h = Histogram::new();
            for v in vals {
                h.record(v);
            }
            h
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn histogram_merge_is_commutative(a in arb_histogram(), b in arb_histogram()) {
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn histogram_merge_is_associative(
            a in arb_histogram(), b in arb_histogram(), c in arb_histogram()
        ) {
            let mut left = a;
            left.merge(&b);
            left.merge(&c);
            let mut bc = b;
            bc.merge(&c);
            let mut right = a;
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn histogram_merge_preserves_counts_exactly(
            a in arb_histogram(), b in arb_histogram()
        ) {
            let mut merged = a;
            merged.merge(&b);
            prop_assert_eq!(merged.count(), a.count() + b.count());
            let total: u64 = merged.buckets().iter().sum();
            prop_assert_eq!(total, merged.count());
        }
    }

    #[cfg(not(feature = "recording"))]
    #[test]
    fn macros_are_noops_without_the_feature() {
        let _serial = INSTALL_LOCK.lock();
        let guard = install(Arc::new(Recorder::new(Clock::Wall)));
        {
            let _s = span!("test", "macro_span", 1);
            count!("test", "macro_count", 2);
            observe!("test", "macro_observe", 3);
            instant!("test", "macro_instant", 4);
        }
        let trace = guard.finish();
        assert!(
            trace.events.is_empty(),
            "disabled macros must record nothing even when armed"
        );
    }

    #[cfg(feature = "recording")]
    #[test]
    fn macros_record_with_the_feature() {
        let _serial = INSTALL_LOCK.lock();
        let guard = install(Arc::new(Recorder::new(Clock::Wall)));
        {
            let _s = span!("test", "macro_span", 1);
            count!("test", "macro_count", 2);
            observe!("test", "macro_observe", 3);
            instant!("test", "macro_instant", 4);
        }
        let trace = guard.finish();
        assert_eq!(trace.spans().len(), 2);
        assert_eq!(trace.counters()[&("test", "macro_count")], 2);
        assert_eq!(trace.histograms()[&("test", "macro_observe")].count(), 1);
    }
}
