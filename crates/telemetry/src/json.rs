//! Minimal JSON value model and recursive-descent parser.
//!
//! The build environment vendors no JSON crate, so the trace exporters write
//! JSON by hand and this module reads it back — enough for the round-trip
//! tests and the `hacc-driver trace-check` command to validate an exported
//! Chrome trace without external tooling. Supports the full JSON grammar the
//! exporters emit: objects, arrays, strings with escapes, integers, floats,
//! booleans, and null.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is normalized (sorted) by the map.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value truncated to `u64` if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

/// Escape a string for embedding in JSON output (used by the exporters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::Str("a\nbA".into())
        );
        let v = parse(r#"{"a": [1, 2, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Value::Bool(false)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "line\nwith \"quotes\" and \\slashes\\ and \ttabs";
        let parsed = parse(&format!("\"{}\"", escape(s))).unwrap();
        assert_eq!(parsed, Value::Str(s.into()));
    }
}
