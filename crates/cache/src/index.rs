//! The on-disk cache index: an append-only log of `put`/`del` records that
//! survives crash/restart with the same torn-append-healing discipline as
//! `core::journal`.
//!
//! An entry is a single `write` call of one line; a crash mid-append leaves
//! bytes with no trailing newline, which [`Index::load`] drops (the entry
//! never committed). The next append seals such a fragment with a newline
//! first, so the fragment can never corrupt a later (good) entry by
//! concatenation — it reads back as an unparseable line, which replay
//! skips. Because a `put` only lands *after* the object file is durably in
//! place, a dropped or sealed index line degrades to a cache miss and a
//! recompute, never to a false hit.

use crate::digest::{CacheKey, Digest};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// First line of every index file; guards against feeding the cache an
/// unrelated file.
pub const INDEX_HEADER: &str = "hacc-artifact-cache v1";

/// One live index entry after replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Key the artifact is stored under.
    pub key: CacheKey,
    /// Content digest of the object payload (also its object-file name).
    pub digest: Digest,
    /// Payload length in bytes (for the eviction byte budget).
    pub len: u64,
}

/// Append-only `put`/`del` log at a fixed path.
#[derive(Debug, Clone)]
pub struct Index {
    path: PathBuf,
}

impl Index {
    /// An index stored at `path` (created on first append).
    pub fn new(path: PathBuf) -> Self {
        Index { path }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replay the log into the set of live entries, ordered oldest-put
    /// first (a re-`put` of a key moves it to the back — replay order
    /// doubles as the LRU recency order after a restart).
    ///
    /// A missing file is an empty index; a wrong header is an error; a torn
    /// (newline-less) tail and sealed unparseable fragments are skipped.
    pub fn load(&self) -> io::Result<Vec<IndexEntry>> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let text = String::from_utf8_lossy(&bytes);
        let mut lines = text.split_inclusive('\n');
        match lines.next() {
            None => return Ok(Vec::new()),
            Some(header) if header.trim_end_matches('\n') == INDEX_HEADER => {}
            Some(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "not an artifact-cache index (header {:?})",
                        other.trim_end()
                    ),
                ));
            }
        }
        // Replay: later records win; seq remembers when each live entry was
        // last put so the final collect preserves recency order.
        let mut live: std::collections::BTreeMap<u128, (u64, IndexEntry)> =
            std::collections::BTreeMap::new();
        for (seq, line) in lines.enumerate() {
            // A chunk without its trailing newline is a torn append: the
            // record never committed.
            if !line.ends_with('\n') {
                continue;
            }
            match Self::parse_line(line.trim_end_matches('\n')) {
                Some(Record::Put(entry)) => {
                    live.insert(entry.key.0 .0, (seq as u64, entry));
                }
                Some(Record::Del(key)) => {
                    live.remove(&key.0 .0);
                }
                // Sealed torn fragments and any other garbage: skip. The
                // object store is self-verifying, so dropping a record is
                // always safe (it becomes a miss).
                None => {}
            }
        }
        let mut entries: Vec<(u64, IndexEntry)> = live.into_values().collect();
        entries.sort_by_key(|(seq, _)| *seq);
        Ok(entries.into_iter().map(|(_, e)| e).collect())
    }

    fn parse_line(line: &str) -> Option<Record> {
        let mut parts = line.split_ascii_whitespace();
        match parts.next()? {
            "put" => {
                let key = CacheKey(Digest::parse(parts.next()?)?);
                let digest = Digest::parse(parts.next()?)?;
                let len: u64 = parts.next()?.parse().ok()?;
                if parts.next().is_some() {
                    return None;
                }
                Some(Record::Put(IndexEntry { key, digest, len }))
            }
            "del" => {
                let key = CacheKey(Digest::parse(parts.next()?)?);
                if parts.next().is_some() {
                    return None;
                }
                Some(Record::Del(key))
            }
            _ => None,
        }
    }

    /// Record that `entry` is live (object already durably written).
    pub fn append_put(&self, entry: &IndexEntry) -> io::Result<()> {
        self.append_line(&format!("put {} {} {}", entry.key, entry.digest, entry.len))
    }

    /// Record that `key` is gone (evicted or poisoned).
    pub fn append_del(&self, key: CacheKey) -> io::Result<()> {
        self.append_line(&format!("del {key}"))
    }

    /// Current size of the log file in bytes (0 when it does not exist
    /// yet). Drives threshold-triggered compaction.
    pub fn size_bytes(&self) -> io::Result<u64> {
        match std::fs::metadata(&self.path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// Atomically replace the log with exactly `entries` (in the given
    /// order, which becomes the replay/recency order): the compacted file
    /// is staged beside the log, synced, then renamed over it, so a crash
    /// at any point leaves either the old log or the new one — never a
    /// mixture. Superseded `put`s and all `del`s vanish.
    pub fn rewrite(&self, entries: &[IndexEntry]) -> io::Result<()> {
        let tmp = self.path.with_extension("compact");
        {
            let mut f = std::fs::File::create(&tmp)?;
            let mut buf = String::with_capacity(64 * (entries.len() + 1));
            buf.push_str(INDEX_HEADER);
            buf.push('\n');
            for e in entries {
                buf.push_str(&format!("put {} {} {}\n", e.key, e.digest, e.len));
            }
            f.write_all(buf.as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)
    }

    /// One write call per record keeps a torn append detectable as a
    /// missing trailing newline; a pre-existing torn fragment is sealed
    /// first so it cannot merge with this record.
    fn append_line(&self, line: &str) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&self.path)?;
        if f.metadata()?.len() == 0 {
            f.write_all(format!("{INDEX_HEADER}\n").as_bytes())?;
        } else {
            use std::io::{Read, Seek, SeekFrom};
            f.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            f.read_exact(&mut last)?;
            if last[0] != b'\n' {
                f.write_all(b"\n")?;
            }
        }
        f.write_all(format!("{line}\n").as_bytes())?;
        f.sync_data()
    }
}

enum Record {
    Put(IndexEntry),
    Del(CacheKey),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::digest_bytes;

    fn tmpfile(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cache_index_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    fn entry(tag: &[u8]) -> IndexEntry {
        IndexEntry {
            key: CacheKey(digest_bytes(tag)),
            digest: digest_bytes(&[tag, b".payload"].concat()),
            len: tag.len() as u64,
        }
    }

    #[test]
    fn missing_index_is_empty() {
        let idx = Index::new(tmpfile("never_written.idx"));
        assert!(idx.load().unwrap().is_empty());
    }

    #[test]
    fn put_del_replay_keeps_recency_order() {
        let idx = Index::new(tmpfile("replay.idx"));
        let _ = std::fs::remove_file(idx.path());
        let (a, b, c) = (entry(b"a"), entry(b"b"), entry(b"c"));
        idx.append_put(&a).unwrap();
        idx.append_put(&b).unwrap();
        idx.append_put(&c).unwrap();
        // Re-put a (moves it to the back), delete b.
        idx.append_put(&a).unwrap();
        idx.append_del(b.key).unwrap();
        let live = idx.load().unwrap();
        assert_eq!(live, vec![c, a], "oldest-put first, re-put moved back");
    }

    #[test]
    fn torn_tail_is_dropped_and_sealed_fragment_is_skipped() {
        let idx = Index::new(tmpfile("torn.idx"));
        let _ = std::fs::remove_file(idx.path());
        let a = entry(b"a");
        idx.append_put(&a).unwrap();
        // Crash mid-append: half a record, no newline.
        let b = entry(b"b");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(idx.path())
            .unwrap();
        let full = format!("put {} {} {}", b.key, b.digest, b.len);
        f.write_all(&full.as_bytes()[..full.len() / 2]).unwrap();
        drop(f);
        assert_eq!(idx.load().unwrap(), vec![a], "torn record never committed");
        // The next append seals the fragment; replay then skips it as
        // unparseable instead of corrupting the new record.
        let c = entry(b"c");
        idx.append_put(&c).unwrap();
        assert_eq!(idx.load().unwrap(), vec![a, c]);
    }

    #[test]
    fn rewrite_compacts_and_preserves_replay_order() {
        let idx = Index::new(tmpfile("rewrite.idx"));
        let _ = std::fs::remove_file(idx.path());
        let (a, b, c) = (entry(b"a"), entry(b"b"), entry(b"c"));
        // A churny history: re-puts and dels that compaction should erase.
        for _ in 0..8 {
            idx.append_put(&a).unwrap();
            idx.append_put(&b).unwrap();
            idx.append_del(b.key).unwrap();
        }
        idx.append_put(&c).unwrap();
        let before = idx.size_bytes().unwrap();
        let live = idx.load().unwrap();
        idx.rewrite(&live).unwrap();
        assert!(idx.size_bytes().unwrap() < before, "compaction shrinks");
        assert_eq!(idx.load().unwrap(), live, "replay order preserved");
        // The compacted log is still a valid append target.
        idx.append_put(&b).unwrap();
        assert_eq!(idx.load().unwrap(), [live.as_slice(), &[b]].concat());
    }

    #[test]
    fn size_bytes_of_missing_log_is_zero() {
        let idx = Index::new(tmpfile("size_missing.idx"));
        let _ = std::fs::remove_file(idx.path());
        assert_eq!(idx.size_bytes().unwrap(), 0);
        idx.append_put(&entry(b"a")).unwrap();
        assert!(idx.size_bytes().unwrap() > INDEX_HEADER.len() as u64);
    }

    #[test]
    fn wrong_header_is_rejected() {
        let p = tmpfile("wrong_header.idx");
        std::fs::write(&p, "something else\nput x y 1\n").unwrap();
        let err = Index::new(p).load().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_lines_are_skipped_not_fatal() {
        let p = tmpfile("garbage.idx");
        let idx = Index::new(p);
        let _ = std::fs::remove_file(idx.path());
        let a = entry(b"a");
        idx.append_put(&a).unwrap();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(idx.path())
            .unwrap();
        f.write_all(b"put short-key\nnot-a-verb x y z\nput k d extra junk here\n")
            .unwrap();
        drop(f);
        assert_eq!(idx.load().unwrap(), vec![a]);
    }
}
