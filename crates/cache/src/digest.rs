//! The 128-bit content digest and the config fingerprint.
//!
//! The build environment has no crates.io access, so the hash is hand-rolled:
//! FNV-1a widened to 128 bits (the offset basis and prime are the published
//! 128-bit FNV constants), consumed 8 bytes at a time with a final
//! xx-style avalanche fold. It is not cryptographic — it does not need to
//! be: the cache defends against *accidents* (torn writes, truncation, bit
//! rot, stale entries), not adversaries, and 128 bits make an accidental
//! collision between distinct artifacts astronomically unlikely.

/// 128-bit FNV offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content digest. Printed and parsed as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub u128);

impl Digest {
    /// Parse the 32-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<Digest> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Digest)
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental 128-bit hasher behind [`digest_bytes`]; exposed so callers
/// can hash structured data (particle arrays, key compositions) without
/// first serializing into one contiguous buffer.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u128,
    /// Bytes held back until a full 8-byte lane accumulates, so chunk
    /// boundaries across `update` calls cannot change the lane alignment.
    pending: [u8; 8],
    pending_len: usize,
    /// Total bytes consumed — folded into the result so a trailing
    /// zero-padded input does not collide with its unpadded form.
    len: u64,
}

impl Hasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Hasher {
        Hasher {
            state: FNV_OFFSET,
            pending: [0; 8],
            pending_len: 0,
            len: 0,
        }
    }

    fn mix_lane(&mut self, lane: u64) {
        // 8 bytes per multiply: byte-order-sensitive mixing like FNV-1a
        // byte-at-a-time over a u64 lane, ~8x fewer multiplies.
        self.state = (self.state ^ lane as u128).wrapping_mul(FNV_PRIME);
    }

    /// Consume `data`. Chunk boundaries do not affect the result.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.pending_len > 0 {
            let take = (8 - self.pending_len).min(data.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&data[..take]);
            self.pending_len += take;
            data = &data[take..];
            if self.pending_len < 8 {
                return;
            }
            let lane = u64::from_le_bytes(self.pending);
            self.mix_lane(lane);
            self.pending_len = 0;
        }
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            self.mix_lane(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        self.pending[..rest.len()].copy_from_slice(rest);
        self.pending_len = rest.len();
    }

    /// Finish with an avalanche fold so low-entropy inputs still spread
    /// across all 128 bits.
    pub fn finish(&self) -> Digest {
        let mut s = self.state;
        // Flush the partial lane zero-padded; the length fold below keeps
        // padded and unpadded inputs distinct.
        if self.pending_len > 0 {
            let mut tail = [0u8; 8];
            tail[..self.pending_len].copy_from_slice(&self.pending[..self.pending_len]);
            s = (s ^ u64::from_le_bytes(tail) as u128).wrapping_mul(FNV_PRIME);
        }
        let mut s = (s ^ self.len as u128).wrapping_mul(FNV_PRIME);
        s ^= s >> 67;
        s = s.wrapping_mul(FNV_PRIME);
        s ^= s >> 59;
        Digest(s)
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

/// Digest of one contiguous byte buffer (file contents, serialized
/// containers).
pub fn digest_bytes(data: &[u8]) -> Digest {
    let mut h = Hasher::new();
    h.update(data);
    h.finish()
}

/// A fingerprint over configuration: which *parameters* produced an
/// artifact, as opposed to which *input bytes* went in. Two runs with the
/// same input data but a different linking length must not share cache
/// entries; the fingerprint is the second half of every [`CacheKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub Digest);

impl Fingerprint {
    /// Fold a namespace fingerprint into this one, yielding a fingerprint
    /// that can only collide with the same parameters *in the same
    /// namespace*. The workflow service derives a namespace from each
    /// campaign's spec and scopes every product fingerprint with it, so
    /// concurrent campaigns sharing one `ArtifactCache` can never read each
    /// other's entries — while re-running the *same* campaign (solo or in a
    /// service) still hits the same keys.
    pub fn scoped(self, namespace: Fingerprint) -> Fingerprint {
        let mut b = FingerprintBuilder::new();
        b.push_fingerprint(namespace).push_fingerprint(self);
        b.finish()
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Builds a [`Fingerprint`] from typed fields. Every push is prefixed with a
/// one-byte type tag so `push_u64(1); push_u64(2)` cannot collide with
/// `push_str("\x01\0…")` field reorderings of equal bytes.
#[derive(Debug, Clone, Default)]
pub struct FingerprintBuilder {
    h: Hasher,
}

impl FingerprintBuilder {
    /// An empty fingerprint builder.
    pub fn new() -> FingerprintBuilder {
        FingerprintBuilder { h: Hasher::new() }
    }

    /// Add a string field (length-prefixed).
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.h.update(&[1]);
        self.h.update(&(s.len() as u64).to_le_bytes());
        self.h.update(s.as_bytes());
        self
    }

    /// Add an integer field.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.h.update(&[2]);
        self.h.update(&v.to_le_bytes());
        self
    }

    /// Add a float field (bit pattern, so `-0.0 != 0.0` and NaNs are stable).
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.h.update(&[3]);
        self.h.update(&v.to_bits().to_le_bytes());
        self
    }

    /// Add a nested fingerprint field (namespacing / composition).
    pub fn push_fingerprint(&mut self, fp: Fingerprint) -> &mut Self {
        self.h.update(&[4]);
        self.h.update(&fp.0 .0.to_le_bytes());
        self
    }

    /// Finish into a fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.h.finish())
    }
}

/// The key an artifact is stored under: `(operation, input digest, config
/// fingerprint)` composed into one 128-bit id. The operation name separates
/// different analyses of the same input (FOF catalog vs post centers), the
/// input digest binds the entry to exact input bytes, and the fingerprint
/// binds it to the algorithm parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(pub Digest);

impl CacheKey {
    /// Compose a key from its three components.
    pub fn compose(op: &str, input: Digest, fingerprint: Fingerprint) -> CacheKey {
        let mut h = Hasher::new();
        h.update(&(op.len() as u64).to_le_bytes());
        h.update(op.as_bytes());
        h.update(&input.0.to_le_bytes());
        h.update(&fingerprint.0 .0.to_le_bytes());
        CacheKey(h.finish())
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_chunking_invariant() {
        let a = digest_bytes(b"the quick brown fox jumps over the lazy dog");
        let b = digest_bytes(b"the quick brown fox jumps over the lazy dog");
        assert_eq!(a, b);
        let mut h = Hasher::new();
        h.update(b"the quick brown fox ");
        h.update(b"jumps over the lazy dog");
        assert_eq!(h.finish(), a);
        // Odd split across the 8-byte lane boundary.
        let mut h = Hasher::new();
        h.update(b"the");
        h.update(b" quick brown fox jumps over the lazy dog");
        assert_eq!(h.finish(), a);
    }

    #[test]
    fn digest_distinguishes_near_misses() {
        let base = digest_bytes(b"abcdefgh");
        assert_ne!(base, digest_bytes(b"abcdefgi"));
        assert_ne!(base, digest_bytes(b"abcdefgh\0"));
        assert_ne!(base, digest_bytes(b"abcdefg"));
        assert_ne!(digest_bytes(b""), digest_bytes(b"\0"));
    }

    #[test]
    fn digest_hex_roundtrips() {
        let d = digest_bytes(b"roundtrip");
        let s = d.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(Digest::parse(&s), Some(d));
        assert_eq!(Digest::parse("xyz"), None);
        assert_eq!(Digest::parse(&s[..31]), None);
    }

    #[test]
    fn fingerprint_fields_are_typed_and_ordered() {
        let mut a = FingerprintBuilder::new();
        a.push_u64(1).push_u64(2);
        let mut b = FingerprintBuilder::new();
        b.push_u64(2).push_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = FingerprintBuilder::new();
        c.push_f64(1.0);
        let mut d = FingerprintBuilder::new();
        d.push_u64(1.0f64.to_bits());
        assert_ne!(c.finish(), d.finish(), "type tags must separate kinds");
    }

    #[test]
    fn scoped_fingerprints_partition_the_key_space_by_namespace() {
        let fp = FingerprintBuilder::new().push_f64(0.168).finish();
        let ns_a = FingerprintBuilder::new().push_str("campaign-a").finish();
        let ns_b = FingerprintBuilder::new().push_str("campaign-b").finish();

        // Deterministic: the same campaign always lands on the same keys.
        assert_eq!(fp.scoped(ns_a), fp.scoped(ns_a));
        // Distinct namespaces never share a fingerprint, even for identical
        // parameters — this is what prevents cross-campaign cache bleed.
        assert_ne!(fp.scoped(ns_a), fp.scoped(ns_b));
        // Scoping is not a no-op, and direction matters (ns(fp) != fp(ns)).
        assert_ne!(fp.scoped(ns_a), fp);
        assert_ne!(fp.scoped(ns_a), ns_a.scoped(fp));

        let input = digest_bytes(b"same input bytes");
        let ka = CacheKey::compose("centers", input, fp.scoped(ns_a));
        let kb = CacheKey::compose("centers", input, fp.scoped(ns_b));
        assert_ne!(ka, kb);
    }

    #[test]
    fn push_fingerprint_is_tagged_against_collisions() {
        let inner = FingerprintBuilder::new().push_u64(9).finish();
        let mut nested = FingerprintBuilder::new();
        nested.push_fingerprint(inner);
        // A nested fingerprint must not collide with pushing its raw bits
        // through another field type.
        let mut raw_lo = FingerprintBuilder::new();
        raw_lo.push_u64(inner.0 .0 as u64);
        assert_ne!(nested.finish(), raw_lo.finish());
    }

    #[test]
    fn key_composition_separates_all_three_components() {
        let input = digest_bytes(b"input");
        let other_input = digest_bytes(b"other");
        let fp = FingerprintBuilder::new().push_u64(7).finish();
        let other_fp = FingerprintBuilder::new().push_u64(8).finish();
        let k = CacheKey::compose("fof", input, fp);
        assert_eq!(k, CacheKey::compose("fof", input, fp));
        assert_ne!(k, CacheKey::compose("centers", input, fp));
        assert_ne!(k, CacheKey::compose("fof", other_input, fp));
        assert_ne!(k, CacheKey::compose("fof", input, other_fp));
    }
}
