//! Digest-routed placement: rendezvous (highest-random-weight) hashing of
//! cache keys onto simulated nodes.
//!
//! Every node is scored per key with the crate's own 128-bit hash; the
//! replicas live on the R highest-scoring nodes. The scheme needs no
//! central directory, every participant computes the same placement from
//! the key alone, and adding or removing a node only moves the ~1/n of
//! keys whose top-R set actually changed — there is no wholesale reshuffle
//! the way `key % n` would force.

use crate::digest::{CacheKey, Hasher};

/// Deterministic placement of keys across `nodes` simulated nodes with
/// `replicas`-way redundancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    nodes: usize,
    replicas: usize,
}

impl ShardRouter {
    /// A router over `nodes` nodes keeping `replicas` copies of every
    /// artifact. `replicas` is clamped to `[1, nodes]`.
    ///
    /// # Panics
    /// If `nodes == 0`.
    pub fn new(nodes: usize, replicas: usize) -> ShardRouter {
        assert!(nodes > 0, "a store needs at least one node");
        ShardRouter {
            nodes,
            replicas: replicas.clamp(1, nodes),
        }
    }

    /// Number of nodes in the ring.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Copies kept per artifact.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The rendezvous score of `key` on `node` — the shared coin every
    /// participant flips identically.
    fn score(key: CacheKey, node: usize) -> u128 {
        let mut h = Hasher::new();
        h.update(&key.0 .0.to_le_bytes());
        h.update(&(node as u64).to_le_bytes());
        h.finish().0
    }

    /// The replica set for `key`, highest score first. `placement[0]` is
    /// the primary (the artifact's home node); the rest are replicas in
    /// preference order. All entries are distinct.
    pub fn placement(&self, key: CacheKey) -> Vec<usize> {
        let mut scored: Vec<(u128, usize)> =
            (0..self.nodes).map(|n| (Self::score(key, n), n)).collect();
        scored.sort_unstable_by(|a, b| b.cmp(a));
        scored.truncate(self.replicas);
        scored.into_iter().map(|(_, n)| n).collect()
    }

    /// The primary (home) node for `key`.
    pub fn primary(&self, key: CacheKey) -> usize {
        (0..self.nodes)
            .max_by_key(|&n| Self::score(key, n))
            .expect("nodes > 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::{digest_bytes, FingerprintBuilder};

    fn key(i: u32) -> CacheKey {
        let fp = FingerprintBuilder::new().push_u64(42).finish();
        CacheKey::compose("route", digest_bytes(&i.to_le_bytes()), fp)
    }

    #[test]
    fn placement_is_deterministic_distinct_and_r_wide() {
        let r = ShardRouter::new(5, 3);
        for i in 0..200 {
            let p = r.placement(key(i));
            assert_eq!(p, r.placement(key(i)));
            assert_eq!(p.len(), 3);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct nodes");
            assert_eq!(p[0], r.primary(key(i)));
            assert!(p.iter().all(|&n| n < 5));
        }
    }

    #[test]
    fn replicas_clamp_to_node_count() {
        let r = ShardRouter::new(2, 9);
        assert_eq!(r.replicas(), 2);
        assert_eq!(r.placement(key(7)).len(), 2);
        assert_eq!(ShardRouter::new(4, 0).replicas(), 1);
    }

    #[test]
    fn load_spreads_across_nodes() {
        let r = ShardRouter::new(8, 1);
        let mut counts = [0usize; 8];
        let n = 4000;
        for i in 0..n {
            counts[r.primary(key(i))] += 1;
        }
        let expect = n as usize / 8;
        for (node, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "node {node} holds {c} of {n} keys — badly skewed"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_only_a_fraction_of_keys() {
        // Rendezvous hashing's selling point: going 7 → 8 nodes should
        // re-home roughly 1/8 of the keys, nowhere near all of them.
        let before = ShardRouter::new(7, 1);
        let after = ShardRouter::new(8, 1);
        let n = 4000;
        let moved = (0..n)
            .filter(|&i| before.primary(key(i)) != after.primary(key(i)))
            .count();
        assert!(moved > 0, "a new node must take some keys");
        assert!(
            moved < n as usize / 4,
            "{moved}/{n} keys moved — minimal-reshuffle property lost"
        );
        // And keys that moved, moved *to* the new node.
        for i in 0..n {
            if before.primary(key(i)) != after.primary(key(i)) {
                assert_eq!(after.primary(key(i)), 7);
            }
        }
    }
}
