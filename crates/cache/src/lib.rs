//! # cache — content-addressed artifact store with incremental re-execution
//!
//! The paper's economics (Tables 3/4) assume the workflow never pays for the
//! same analysis twice: a listener crash-restart, a re-queued co-scheduled
//! job, or a `compare_all` sweep over identical inputs should reuse existing
//! L3 products, not recompute them. This crate is that memory:
//!
//! * [`Digest`]/[`digest_bytes`] — a hand-rolled 128-bit FNV-style content
//!   hash (this build environment has no crates.io access, so no external
//!   hash crates).
//! * [`FingerprintBuilder`]/[`Fingerprint`] — a typed hash over the
//!   *configuration* that produced an artifact (runner strategy, algorithm
//!   parameters, simulation seed), so changed parameters can never alias a
//!   cached result.
//! * [`CacheKey::compose`] — `(operation, input digest, fingerprint)` in one
//!   128-bit key.
//! * [`ArtifactCache`] — the store: objects at `objects/<digest>` written
//!   tmp+rename and deduplicated by digest; a `put`/`del` index log that
//!   survives crash/restart with the same torn-append-healing discipline as
//!   `core::journal` and self-compacts once it bloats past a threshold;
//!   verify-on-lookup so a poisoned or torn entry degrades to a recompute,
//!   never a wrong catalog; LRU byte-budget eviction driven by an ordered
//!   recency structure (an eviction storm is O(k log n)); a metadata-level
//!   [`ArtifactCache::contains_verified`] resubmission gate; fault sites
//!   `cache.read` / `cache.verify` for the chaos harness; and a telemetry
//!   layer (`cache`) with hit/miss/evict counters and a verify-time
//!   histogram.
//! * [`ShardRouter`] / [`DistributedStore`] — the scale-out layer: the same
//!   content-addressed semantics sharded across simulated nodes by
//!   rendezvous hashing, with R-way replication, remote-fetch costs charged
//!   through a [`RemoteFetchModel`] (numbers drawn from `simhpc`'s machine
//!   model by the workflow glue), node kill/revive/wipe for failure drills,
//!   a [`heal`](DistributedStore::heal) pass restoring full replication,
//!   and fault sites [`SITE_REPLICATE`] / [`SITE_FETCH_REMOTE`] so the
//!   crash-schedule explorer can prove that the death of any single
//!   replica-holding node leaves every artifact reachable.

#![warn(missing_docs)]

mod digest;
mod index;
mod router;
mod shard;
mod store;

pub use digest::{digest_bytes, CacheKey, Digest, Fingerprint, FingerprintBuilder, Hasher};
pub use index::{Index, IndexEntry, INDEX_HEADER};
pub use router::ShardRouter;
pub use shard::{
    DistStats, DistributedConfig, DistributedStore, MaintenanceHandle, RemoteFetchModel,
    SITE_FETCH_REMOTE, SITE_REPLICATE,
};
pub use store::{ArtifactCache, CacheStats};
