//! # cache — content-addressed artifact store with incremental re-execution
//!
//! The paper's economics (Tables 3/4) assume the workflow never pays for the
//! same analysis twice: a listener crash-restart, a re-queued co-scheduled
//! job, or a `compare_all` sweep over identical inputs should reuse existing
//! L3 products, not recompute them. This crate is that memory:
//!
//! * [`Digest`]/[`digest_bytes`] — a hand-rolled 128-bit FNV-style content
//!   hash (this build environment has no crates.io access, so no external
//!   hash crates).
//! * [`FingerprintBuilder`]/[`Fingerprint`] — a typed hash over the
//!   *configuration* that produced an artifact (runner strategy, algorithm
//!   parameters, simulation seed), so changed parameters can never alias a
//!   cached result.
//! * [`CacheKey::compose`] — `(operation, input digest, fingerprint)` in one
//!   128-bit key.
//! * [`ArtifactCache`] — the store: objects at `objects/<digest>` written
//!   tmp+rename and deduplicated by digest; a `put`/`del` index log that
//!   survives crash/restart with the same torn-append-healing discipline as
//!   `core::journal`; verify-on-lookup so a poisoned or torn entry degrades
//!   to a recompute, never a wrong catalog; LRU byte-budget eviction; fault
//!   sites `cache.read` / `cache.verify` for the chaos harness; and a
//!   seventh telemetry layer (`cache`) with hit/miss/evict counters and a
//!   verify-time histogram.

#![warn(missing_docs)]

mod digest;
mod index;
mod store;

pub use digest::{digest_bytes, CacheKey, Digest, Fingerprint, FingerprintBuilder, Hasher};
pub use index::{Index, IndexEntry, INDEX_HEADER};
pub use store::{ArtifactCache, CacheStats};
