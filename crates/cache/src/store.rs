//! The content-addressed artifact store.
//!
//! Objects live at `dir/objects/<digest>` (written tmp+rename, deduplicated
//! by digest with refcounts so two keys mapping to identical payloads share
//! one file); the `dir/index` log maps cache keys to object digests and
//! survives crashes via torn-append healing (see [`crate::index`]).
//!
//! Every lookup **re-verifies** the payload digest before returning, so a
//! poisoned object file, a torn index record, or an injected fault can only
//! ever produce a miss — the caller recomputes, and the workflow's output is
//! byte-identical with the cache on or off. Fault sites `cache.read` and
//! `cache.verify` let the chaos harness rehearse exactly that degradation.

use crate::digest::{digest_bytes, CacheKey, Digest};
use crate::index::{Index, IndexEntry};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Snapshot of the cache's lifetime counters (since [`ArtifactCache::open`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a verified payload.
    pub hits: u64,
    /// Lookups that found nothing usable (absent, fault-forced, or failed
    /// verification).
    pub misses: u64,
    /// Entries inserted (or re-put) by [`ArtifactCache::insert`].
    pub inserts: u64,
    /// Entries removed by the LRU byte-budget policy.
    pub evictions: u64,
    /// Lookups whose payload failed digest verification (a subset of
    /// `misses`); the offending entry is dropped.
    pub verify_failures: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    digest: Digest,
    len: u64,
    /// LRU recency: larger = more recently put or hit.
    seq: u64,
}

#[derive(Debug, Default)]
struct State {
    entries: BTreeMap<u128, Entry>,
    /// Object refcounts by digest: an object file is deleted only when no
    /// live entry references it.
    refs: BTreeMap<u128, u64>,
    total_bytes: u64,
    next_seq: u64,
}

/// A content-addressed artifact cache rooted at one directory.
///
/// Thread-safe; share via `Arc`. All persistence is synchronous — an
/// [`insert`](ArtifactCache::insert) that returns `Ok` has the object file
/// renamed into place and the index record synced, in that order, so a crash
/// at any point leaves either a fully usable entry or a harmless miss.
#[derive(Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    byte_budget: Option<u64>,
    index: Index,
    state: Mutex<State>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    verify_failures: AtomicU64,
}

impl ArtifactCache {
    /// Open (or create) the cache at `dir`, replaying the index. Entries
    /// whose records survived a previous run come back in recency order;
    /// their payloads are verified lazily, on first lookup.
    ///
    /// `byte_budget` caps the total live payload bytes; `None` disables
    /// eviction.
    pub fn open(dir: impl Into<PathBuf>, byte_budget: Option<u64>) -> io::Result<ArtifactCache> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("objects"))?;
        let index = Index::new(dir.join("index"));
        let mut state = State::default();
        for entry in index.load()? {
            state.next_seq += 1;
            let seq = state.next_seq;
            if let Some(old) = state.entries.insert(
                entry.key.0 .0,
                Entry {
                    digest: entry.digest,
                    len: entry.len,
                    seq,
                },
            ) {
                state.total_bytes -= old.len;
                Self::deref_locked(&mut state, old.digest);
            }
            state.total_bytes += entry.len;
            *state.refs.entry(entry.digest.0).or_insert(0) += 1;
        }
        Ok(ArtifactCache {
            dir,
            byte_budget,
            index,
            state: Mutex::new(state),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            verify_failures: AtomicU64::new(0),
        })
    }

    /// The cache root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lifetime counters since open.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            verify_failures: self.verify_failures.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total live payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().total_bytes
    }

    fn object_path(&self, digest: Digest) -> PathBuf {
        self.dir.join("objects").join(digest.to_string())
    }

    /// Store `payload` under `key`, returning its digest. The object file
    /// is written tmp+rename before the index record is appended, so a
    /// crash between the two leaves an orphaned (harmless) object, never a
    /// dangling index entry.
    pub fn insert(&self, key: CacheKey, payload: &[u8]) -> io::Result<Digest> {
        let _span = telemetry::span!("cache", "insert", payload.len());
        let digest = digest_bytes(payload);
        let mut state = self.state.lock();
        state.next_seq += 1;
        let seq = state.next_seq;
        if let Some(existing) = state.entries.get_mut(&key.0 .0) {
            if existing.digest == digest {
                // Idempotent re-insert: just refresh recency.
                existing.seq = seq;
                self.inserts.fetch_add(1, Ordering::Relaxed);
                return Ok(digest);
            }
        }
        let path = self.object_path(digest);
        if state.refs.get(&digest.0).copied().unwrap_or(0) == 0 && !path.exists() {
            let tmp = self.dir.join("objects").join(format!("{digest}.tmp{seq}"));
            std::fs::write(&tmp, payload)?;
            std::fs::rename(&tmp, &path)?;
        }
        let entry = IndexEntry {
            key,
            digest,
            len: payload.len() as u64,
        };
        self.index.append_put(&entry)?;
        if let Some(old) = state.entries.insert(
            key.0 .0,
            Entry {
                digest,
                len: entry.len,
                seq,
            },
        ) {
            state.total_bytes -= old.len;
            self.drop_object_ref(&mut state, old.digest);
        }
        state.total_bytes += entry.len;
        *state.refs.entry(digest.0).or_insert(0) += 1;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.evict_over_budget(&mut state, Some(key));
        Ok(digest)
    }

    /// Fetch and **verify** the payload stored under `key`. Returns `None`
    /// on a miss — absent entry, injected fault, unreadable object, or a
    /// digest mismatch (in which case the poisoned entry is dropped so it
    /// cannot fail again). A `Some` payload is guaranteed to hash to the
    /// digest recorded at insert time.
    pub fn lookup(&self, key: CacheKey) -> Option<Vec<u8>> {
        let _span = telemetry::span!("cache", "lookup");
        let mut state = self.state.lock();
        let entry = match state.entries.get(&key.0 .0) {
            Some(e) => *e,
            None => return self.miss(),
        };
        match faults::fault_point!("cache.read") {
            Some(faults::FaultKind::Transient) => {
                // A transient read error: this lookup misses, the entry
                // survives for the next one.
                return self.miss();
            }
            Some(faults::FaultKind::Crash) => {
                // The object is gone for good (disk corruption, a purged
                // scratch filesystem): poison the entry.
                self.remove_entry(&mut state, key);
                return self.miss();
            }
            Some(faults::FaultKind::Stall(d)) => std::thread::sleep(d),
            None => {}
        }
        let payload = match std::fs::read(self.object_path(entry.digest)) {
            Ok(b) => b,
            Err(_) => {
                self.remove_entry(&mut state, key);
                return self.miss();
            }
        };
        let verify_start = Instant::now();
        let forced_fail = faults::fault_point!("cache.verify").is_some();
        let ok = !forced_fail
            && payload.len() as u64 == entry.len
            && digest_bytes(&payload) == entry.digest;
        telemetry::observe!(
            "cache",
            "verify_us",
            verify_start.elapsed().as_micros() as u64
        );
        if !ok {
            self.verify_failures.fetch_add(1, Ordering::Relaxed);
            telemetry::instant!("cache", "verify_fail", 0);
            self.remove_entry(&mut state, key);
            return self.miss();
        }
        state.next_seq += 1;
        let seq = state.next_seq;
        if let Some(e) = state.entries.get_mut(&key.0 .0) {
            e.seq = seq;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        telemetry::count!("cache", "hits", 1);
        Some(payload)
    }

    /// True when `key` resolves to a payload that passes verification right
    /// now. Equivalent to `lookup(key).is_some()` (and counted the same
    /// way) — the listener's resubmission gate.
    pub fn contains_verified(&self, key: CacheKey) -> bool {
        self.lookup(key).is_some()
    }

    fn miss(&self) -> Option<Vec<u8>> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::count!("cache", "misses", 1);
        None
    }

    /// Drop `key` from the index and the in-memory map; deletes the object
    /// file when no other entry shares its digest. Index-append failures
    /// are swallowed: the in-memory drop already prevents a false hit this
    /// run, and on replay the self-verifying lookup catches the rest.
    fn remove_entry(&self, state: &mut State, key: CacheKey) {
        if let Some(old) = state.entries.remove(&key.0 .0) {
            state.total_bytes -= old.len;
            let _ = self.index.append_del(key);
            self.drop_object_ref(state, old.digest);
        }
    }

    fn deref_locked(state: &mut State, digest: Digest) -> bool {
        match state.refs.get_mut(&digest.0) {
            Some(n) if *n > 1 => {
                *n -= 1;
                false
            }
            Some(_) => {
                state.refs.remove(&digest.0);
                true
            }
            None => false,
        }
    }

    fn drop_object_ref(&self, state: &mut State, digest: Digest) {
        if Self::deref_locked(state, digest) {
            let _ = std::fs::remove_file(self.object_path(digest));
        }
    }

    /// Evict least-recently-used entries until the byte budget is met,
    /// sparing `protect` (the entry just inserted — an insert must be
    /// readable at least once).
    fn evict_over_budget(&self, state: &mut State, protect: Option<CacheKey>) {
        let Some(budget) = self.byte_budget else {
            return;
        };
        while state.total_bytes > budget {
            let victim = state
                .entries
                .iter()
                .filter(|(k, _)| protect.map(|p| p.0 .0 != **k).unwrap_or(true))
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| CacheKey(Digest(*k)));
            let Some(victim) = victim else { break };
            self.remove_entry(state, victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            telemetry::count!("cache", "evictions", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::FingerprintBuilder;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cache_store_test_{}_{}_{}",
            std::process::id(),
            name,
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn key(tag: &str) -> CacheKey {
        let fp = FingerprintBuilder::new().push_u64(1).finish();
        CacheKey::compose(tag, digest_bytes(tag.as_bytes()), fp)
    }

    #[test]
    fn insert_then_lookup_roundtrips_and_counts() {
        let c = ArtifactCache::open(tmpdir("roundtrip"), None).unwrap();
        let d = c.insert(key("a"), b"payload-a").unwrap();
        assert_eq!(d, digest_bytes(b"payload-a"));
        assert_eq!(c.lookup(key("a")).as_deref(), Some(&b"payload-a"[..]));
        assert_eq!(c.lookup(key("b")), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(c.total_bytes(), 9);
    }

    #[test]
    fn survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let c = ArtifactCache::open(&dir, None).unwrap();
            c.insert(key("a"), b"alpha").unwrap();
            c.insert(key("b"), b"beta").unwrap();
        }
        let c = ArtifactCache::open(&dir, None).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(key("a")).as_deref(), Some(&b"alpha"[..]));
        assert_eq!(c.lookup(key("b")).as_deref(), Some(&b"beta"[..]));
    }

    #[test]
    fn corrupted_object_degrades_to_miss_and_drops_entry() {
        let dir = tmpdir("corrupt");
        let c = ArtifactCache::open(&dir, None).unwrap();
        let digest = c.insert(key("a"), b"good bytes").unwrap();
        std::fs::write(dir.join("objects").join(digest.to_string()), b"bad bytess").unwrap();
        assert_eq!(c.lookup(key("a")), None, "corruption must not hit");
        assert_eq!(c.stats().verify_failures, 1);
        assert_eq!(c.len(), 0, "poisoned entry dropped");
        // And it stays gone across reopen (the del record persisted).
        drop(c);
        let c = ArtifactCache::open(&dir, None).unwrap();
        assert_eq!(c.lookup(key("a")), None);
    }

    #[test]
    fn missing_object_file_degrades_to_miss() {
        let dir = tmpdir("missing_obj");
        let c = ArtifactCache::open(&dir, None).unwrap();
        let digest = c.insert(key("a"), b"bytes").unwrap();
        std::fs::remove_file(dir.join("objects").join(digest.to_string())).unwrap();
        assert_eq!(c.lookup(key("a")), None);
        assert!(c.is_empty());
    }

    #[test]
    fn identical_payloads_share_one_object() {
        let dir = tmpdir("dedup");
        let c = ArtifactCache::open(&dir, None).unwrap();
        let d1 = c.insert(key("a"), b"same bytes").unwrap();
        let d2 = c.insert(key("b"), b"same bytes").unwrap();
        assert_eq!(d1, d2);
        let objects: Vec<_> = std::fs::read_dir(dir.join("objects")).unwrap().collect();
        assert_eq!(objects.len(), 1, "one shared object file");
        // Dropping one key keeps the shared object alive for the other.
        std::fs::write(dir.join("objects").join(d1.to_string()), b"same bytes").unwrap();
        let budget_victim = c.lookup(key("a")).unwrap();
        assert_eq!(budget_victim, b"same bytes");
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let c = ArtifactCache::open(tmpdir("lru"), Some(10)).unwrap();
        c.insert(key("a"), b"aaaa").unwrap(); // 4 bytes
        c.insert(key("b"), b"bbbb").unwrap(); // 8 total
                                              // Touch a so b becomes the LRU victim.
        assert!(c.lookup(key("a")).is_some());
        c.insert(key("c"), b"cccc").unwrap(); // 12 > 10: evict b
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup(key("b")).is_none(), "b was least recent");
        assert!(c.lookup(key("a")).is_some());
        assert!(c.lookup(key("c")).is_some());
        assert!(c.total_bytes() <= 10);
    }

    #[test]
    fn oversized_insert_is_protected_once() {
        let c = ArtifactCache::open(tmpdir("oversize"), Some(4)).unwrap();
        c.insert(key("big"), b"way more than four").unwrap();
        // The just-inserted entry is spared even though it exceeds the
        // budget on its own — read-your-write holds.
        assert!(c.lookup(key("big")).is_some());
    }

    #[test]
    fn reinsert_same_payload_is_idempotent() {
        let dir = tmpdir("idempotent");
        let c = ArtifactCache::open(&dir, None).unwrap();
        c.insert(key("a"), b"payload").unwrap();
        c.insert(key("a"), b"payload").unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_bytes(), 7);
    }

    #[test]
    fn overwrite_key_with_new_payload_wins() {
        let dir = tmpdir("overwrite");
        let c = ArtifactCache::open(&dir, None).unwrap();
        c.insert(key("a"), b"old").unwrap();
        c.insert(key("a"), b"newer").unwrap();
        assert_eq!(c.lookup(key("a")).as_deref(), Some(&b"newer"[..]));
        assert_eq!(c.total_bytes(), 5);
        drop(c);
        let c = ArtifactCache::open(dir, None).unwrap();
        assert_eq!(c.lookup(key("a")).as_deref(), Some(&b"newer"[..]));
    }

    #[test]
    fn concurrent_insert_lookup_is_safe() {
        let c = std::sync::Arc::new(ArtifactCache::open(tmpdir("concurrent"), None).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..16u32 {
                        let k = key(&format!("k{}", (t * 16 + i) % 8));
                        let payload = format!("payload-{}", (t * 16 + i) % 8);
                        c.insert(k, payload.as_bytes()).unwrap();
                        assert_eq!(c.lookup(k).unwrap(), payload.as_bytes());
                    }
                });
            }
        });
        assert_eq!(c.len(), 8);
    }
}
