//! The content-addressed artifact store.
//!
//! Objects live at `dir/objects/<digest>` (written tmp+rename, deduplicated
//! by digest with refcounts so two keys mapping to identical payloads share
//! one file); the `dir/index` log maps cache keys to object digests and
//! survives crashes via torn-append healing (see [`crate::index`]).
//!
//! Every lookup **re-verifies** the payload digest before returning, so a
//! poisoned object file, a torn index record, or an injected fault can only
//! ever produce a miss — the caller recomputes, and the workflow's output is
//! byte-identical with the cache on or off. Fault sites `cache.read` and
//! `cache.verify` let the chaos harness rehearse exactly that degradation.

use crate::digest::{digest_bytes, CacheKey, Digest};
use crate::index::{Index, IndexEntry};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Snapshot of the cache's lifetime counters (since [`ArtifactCache::open`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a verified payload.
    pub hits: u64,
    /// Lookups that found nothing usable (absent, fault-forced, or failed
    /// verification).
    pub misses: u64,
    /// Entries inserted (or re-put) by [`ArtifactCache::insert`].
    pub inserts: u64,
    /// Entries removed by the LRU byte-budget policy.
    pub evictions: u64,
    /// Lookups whose payload failed digest verification (a subset of
    /// `misses`); the offending entry is dropped.
    pub verify_failures: u64,
    /// Times the index log was rewritten by threshold-triggered or explicit
    /// compaction.
    pub compactions: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    digest: Digest,
    len: u64,
    /// LRU recency: larger = more recently put or hit.
    seq: u64,
}

#[derive(Debug, Default)]
struct State {
    entries: BTreeMap<u128, Entry>,
    /// Object refcounts by digest: an object file is deleted only when no
    /// live entry references it.
    refs: BTreeMap<u128, u64>,
    /// Mirror of `entries` ordered by recency: `(seq, key)` pairs, least
    /// recent first. Keeps a burst of k evictions at O(k log n) instead of
    /// the old full-scan-per-victim O(k·n).
    recency: BTreeSet<(u64, u128)>,
    total_bytes: u64,
    next_seq: u64,
}

impl State {
    /// Move `key` to the most-recent position under a fresh `seq`.
    fn touch(&mut self, key: CacheKey, seq: u64) {
        if let Some(e) = self.entries.get_mut(&key.0 .0) {
            self.recency.remove(&(e.seq, key.0 .0));
            e.seq = seq;
            self.recency.insert((seq, key.0 .0));
        }
    }
}

/// A content-addressed artifact cache rooted at one directory.
///
/// Thread-safe; share via `Arc`. All persistence is synchronous — an
/// [`insert`](ArtifactCache::insert) that returns `Ok` has the object file
/// renamed into place and the index record synced, in that order, so a crash
/// at any point leaves either a fully usable entry or a harmless miss.
#[derive(Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    byte_budget: Option<u64>,
    /// Rewrite the index log once it grows past this many bytes (checked
    /// after each insert, amortised so churny workloads pay O(1) per op).
    index_compact_bytes: Option<u64>,
    index: Index,
    state: Mutex<State>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    verify_failures: AtomicU64,
    compactions: AtomicU64,
    /// Test-only: stall injected into the out-of-lock object write, to
    /// prove large payload staging cannot block concurrent lookups.
    #[cfg(test)]
    write_stall_ms: AtomicU64,
}

impl ArtifactCache {
    /// Open (or create) the cache at `dir`, replaying the index. Entries
    /// whose records survived a previous run come back in recency order;
    /// their payloads are verified lazily, on first lookup.
    ///
    /// `byte_budget` caps the total live payload bytes; `None` disables
    /// eviction.
    pub fn open(dir: impl Into<PathBuf>, byte_budget: Option<u64>) -> io::Result<ArtifactCache> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("objects"))?;
        let index = Index::new(dir.join("index"));
        let mut state = State::default();
        for entry in index.load()? {
            state.next_seq += 1;
            let seq = state.next_seq;
            if let Some(old) = state.entries.insert(
                entry.key.0 .0,
                Entry {
                    digest: entry.digest,
                    len: entry.len,
                    seq,
                },
            ) {
                state.total_bytes -= old.len;
                state.recency.remove(&(old.seq, entry.key.0 .0));
                Self::deref_locked(&mut state, old.digest);
            }
            state.recency.insert((seq, entry.key.0 .0));
            state.total_bytes += entry.len;
            *state.refs.entry(entry.digest.0).or_insert(0) += 1;
        }
        Ok(ArtifactCache {
            dir,
            byte_budget,
            index_compact_bytes: None,
            index,
            state: Mutex::new(state),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            verify_failures: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            #[cfg(test)]
            write_stall_ms: AtomicU64::new(0),
        })
    }

    /// Enable amortised ("background") index compaction: after an insert,
    /// if the append-only log exceeds `bytes`, it is rewritten down to the
    /// live entries. `del`s and superseded `put`s from eviction churn stop
    /// accumulating forever.
    pub fn with_index_compact_bytes(mut self, bytes: u64) -> ArtifactCache {
        self.index_compact_bytes = Some(bytes);
        self
    }

    /// The cache root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lifetime counters since open.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            verify_failures: self.verify_failures.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total live payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().total_bytes
    }

    fn object_path(&self, digest: Digest) -> PathBuf {
        self.dir.join("objects").join(digest.to_string())
    }

    /// Store `payload` under `key`, returning its digest. The object file
    /// is written tmp+rename before the index record is appended, so a
    /// crash between the two leaves an orphaned (harmless) object, never a
    /// dangling index entry.
    ///
    /// Object-file I/O is staged **outside** the state lock: a concurrent
    /// lookup of another key never waits behind a large payload write. The
    /// lock is taken briefly twice — once to reserve the object's refcount
    /// (so eviction cannot delete the file mid-stage), once to commit the
    /// entry and append the (tiny) index record.
    pub fn insert(&self, key: CacheKey, payload: &[u8]) -> io::Result<Digest> {
        let _span = telemetry::span!("cache", "insert", payload.len());
        let digest = digest_bytes(payload);
        let len = payload.len() as u64;
        // Phase 1 — reserve. The pre-incremented refcount is the pin that
        // keeps a concurrent eviction of some other key sharing this digest
        // from unlinking the object file while we stage it.
        let (seq, need_write) = {
            let mut state = self.state.lock();
            state.next_seq += 1;
            let seq = state.next_seq;
            if let Some(existing) = state.entries.get(&key.0 .0).copied() {
                if existing.digest == digest {
                    // Idempotent re-insert: just refresh recency.
                    state.touch(key, seq);
                    self.inserts.fetch_add(1, Ordering::Relaxed);
                    return Ok(digest);
                }
            }
            let refs = state.refs.entry(digest.0).or_insert(0);
            let need_write = *refs == 0;
            *refs += 1;
            (seq, need_write)
        };
        // Phase 2 — stage the object with no lock held.
        if need_write {
            let path = self.object_path(digest);
            if !path.exists() {
                #[cfg(test)]
                {
                    let ms = self.write_stall_ms.load(Ordering::Relaxed);
                    if ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                }
                let tmp = self.dir.join("objects").join(format!("{digest}.tmp{seq}"));
                let staged =
                    std::fs::write(&tmp, payload).and_then(|()| std::fs::rename(&tmp, &path));
                if let Err(e) = staged {
                    let mut state = self.state.lock();
                    Self::deref_locked(&mut state, digest);
                    return Err(e);
                }
            }
        }
        // Phase 3 — commit: index record then the in-memory entry. The
        // reservation from phase 1 becomes the entry's reference.
        let mut state = self.state.lock();
        let entry = IndexEntry { key, digest, len };
        if let Err(e) = self.index.append_put(&entry) {
            self.drop_object_ref(&mut state, digest);
            return Err(e);
        }
        if let Some(old) = state.entries.insert(key.0 .0, Entry { digest, len, seq }) {
            state.total_bytes -= old.len;
            state.recency.remove(&(old.seq, key.0 .0));
            self.drop_object_ref(&mut state, old.digest);
        }
        state.recency.insert((seq, key.0 .0));
        state.total_bytes += len;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.evict_over_budget(&mut state, Some(key));
        self.maybe_compact(&mut state);
        Ok(digest)
    }

    /// Fetch and **verify** the payload stored under `key`. Returns `None`
    /// on a miss — absent entry, injected fault, unreadable object, or a
    /// digest mismatch (in which case the poisoned entry is dropped so it
    /// cannot fail again). A `Some` payload is guaranteed to hash to the
    /// digest recorded at insert time.
    pub fn lookup(&self, key: CacheKey) -> Option<Vec<u8>> {
        let _span = telemetry::span!("cache", "lookup");
        let mut state = self.state.lock();
        let entry = match state.entries.get(&key.0 .0) {
            Some(e) => *e,
            None => return self.miss(),
        };
        match faults::fault_point!("cache.read") {
            Some(faults::FaultKind::Transient) => {
                // A transient read error: this lookup misses, the entry
                // survives for the next one.
                return self.miss();
            }
            Some(faults::FaultKind::Crash) => {
                // The object is gone for good (disk corruption, a purged
                // scratch filesystem): poison the entry.
                self.remove_entry(&mut state, key);
                return self.miss();
            }
            Some(faults::FaultKind::Stall(d)) => std::thread::sleep(d),
            None => {}
        }
        let payload = match std::fs::read(self.object_path(entry.digest)) {
            Ok(b) => b,
            Err(_) => {
                self.remove_entry(&mut state, key);
                return self.miss();
            }
        };
        let verify_start = Instant::now();
        let forced_fail = faults::fault_point!("cache.verify").is_some();
        let ok = !forced_fail
            && payload.len() as u64 == entry.len
            && digest_bytes(&payload) == entry.digest;
        telemetry::observe!(
            "cache",
            "verify_us",
            verify_start.elapsed().as_micros() as u64
        );
        if !ok {
            self.verify_failures.fetch_add(1, Ordering::Relaxed);
            telemetry::instant!("cache", "verify_fail", 0);
            self.remove_entry(&mut state, key);
            return self.miss();
        }
        state.next_seq += 1;
        let seq = state.next_seq;
        state.touch(key, seq);
        self.hits.fetch_add(1, Ordering::Relaxed);
        telemetry::count!("cache", "hits", 1);
        Some(payload)
    }

    /// True when `key` very likely resolves to a valid payload — the
    /// listener's resubmission gate.
    ///
    /// Fast path: a metadata-level check only (live index entry + object
    /// file `stat` whose length matches the recorded length). No payload is
    /// read or re-hashed, so once the store is sharded the gate costs a
    /// stat, not a remote fetch. Anything suspect — missing file, length
    /// mismatch — falls back to the full verifying [`lookup`], which drops
    /// poisoned entries exactly as before.
    ///
    /// Accounting: a fast-path pass counts one `hit` (and refreshes LRU
    /// recency), a fall-back counts whatever `lookup` counts — so
    /// hit+miss totals remain one-per-call, same as the old
    /// `lookup().is_some()` implementation.
    ///
    /// The guarantee is deliberately weaker than `lookup`: a corrupted
    /// object of *unchanged length* passes the gate. That is safe because
    /// every consumer that actually reads the payload goes through the
    /// verifying `lookup`, which degrades such corruption to a miss and a
    /// recompute — the catalog stays byte-identical either way.
    ///
    /// [`lookup`]: ArtifactCache::lookup
    pub fn contains_verified(&self, key: CacheKey) -> bool {
        let _span = telemetry::span!("cache", "contains");
        let entry = {
            let state = self.state.lock();
            match state.entries.get(&key.0 .0) {
                Some(e) => *e,
                None => {
                    drop(state);
                    self.miss();
                    return false;
                }
            }
        };
        match std::fs::metadata(self.object_path(entry.digest)) {
            Ok(m) if m.len() == entry.len => {
                let mut state = self.state.lock();
                state.next_seq += 1;
                let seq = state.next_seq;
                state.touch(key, seq);
                self.hits.fetch_add(1, Ordering::Relaxed);
                telemetry::count!("cache", "hits", 1);
                true
            }
            // Suspect (unreadable or wrong length): full verify, which
            // also drops the entry when it is genuinely poisoned.
            _ => self.lookup(key).is_some(),
        }
    }

    fn miss(&self) -> Option<Vec<u8>> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::count!("cache", "misses", 1);
        None
    }

    /// Drop `key` from the index and the in-memory map; deletes the object
    /// file when no other entry shares its digest. Index-append failures
    /// are swallowed: the in-memory drop already prevents a false hit this
    /// run, and on replay the self-verifying lookup catches the rest.
    fn remove_entry(&self, state: &mut State, key: CacheKey) {
        if let Some(old) = state.entries.remove(&key.0 .0) {
            state.total_bytes -= old.len;
            state.recency.remove(&(old.seq, key.0 .0));
            let _ = self.index.append_del(key);
            self.drop_object_ref(state, old.digest);
        }
    }

    fn deref_locked(state: &mut State, digest: Digest) -> bool {
        match state.refs.get_mut(&digest.0) {
            Some(n) if *n > 1 => {
                *n -= 1;
                false
            }
            Some(_) => {
                state.refs.remove(&digest.0);
                true
            }
            None => false,
        }
    }

    fn drop_object_ref(&self, state: &mut State, digest: Digest) {
        if Self::deref_locked(state, digest) {
            let _ = std::fs::remove_file(self.object_path(digest));
        }
    }

    /// Evict least-recently-used entries until the byte budget is met,
    /// sparing `protect` (the entry just inserted — an insert must be
    /// readable at least once). The `recency` set hands out victims oldest
    /// first, so an eviction storm of k victims is O(k log n) — the old
    /// implementation re-scanned every entry per victim, O(k·n).
    fn evict_over_budget(&self, state: &mut State, protect: Option<CacheKey>) {
        let Some(budget) = self.byte_budget else {
            return;
        };
        while state.total_bytes > budget {
            // At most one (protected) element is ever skipped, so this
            // `find` inspects one or two entries, never the whole map.
            let victim = state
                .recency
                .iter()
                .map(|&(_, k)| k)
                .find(|k| protect.map(|p| p.0 .0 != *k).unwrap_or(true));
            let Some(victim) = victim else { break };
            self.remove_entry(state, CacheKey(Digest(victim)));
            self.evictions.fetch_add(1, Ordering::Relaxed);
            telemetry::count!("cache", "evictions", 1);
        }
    }

    /// The live entries in recency order (least recent first) — lets a
    /// sharded wrapper enumerate a node's holdings for re-replication.
    pub fn live_entries(&self) -> Vec<IndexEntry> {
        let state = self.state.lock();
        state
            .recency
            .iter()
            .map(|&(_, k)| {
                let e = &state.entries[&k];
                IndexEntry {
                    key: CacheKey(Digest(k)),
                    digest: e.digest,
                    len: e.len,
                }
            })
            .collect()
    }

    /// Current size of the index log in bytes.
    pub fn index_bytes(&self) -> u64 {
        self.index.size_bytes().unwrap_or(0)
    }

    /// Rewrite the index log down to the live entries (recency order
    /// preserved), reclaiming space taken by `del`s and superseded `put`s.
    /// Returns bytes reclaimed. Crash-safe: staged and renamed atomically.
    pub fn compact_index(&self) -> io::Result<u64> {
        let mut state = self.state.lock();
        self.compact_locked(&mut state)
    }

    fn compact_locked(&self, state: &mut State) -> io::Result<u64> {
        let before = self.index.size_bytes()?;
        let entries: Vec<IndexEntry> = state
            .recency
            .iter()
            .map(|&(_, k)| {
                let e = &state.entries[&k];
                IndexEntry {
                    key: CacheKey(Digest(k)),
                    digest: e.digest,
                    len: e.len,
                }
            })
            .collect();
        self.index.rewrite(&entries)?;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        telemetry::count!("cache", "compactions", 1);
        let after = self.index.size_bytes()?;
        Ok(before.saturating_sub(after))
    }

    /// Threshold-triggered compaction after an insert; failures are
    /// swallowed (the append-only log is still valid, just long).
    fn maybe_compact(&self, state: &mut State) {
        if let Some(limit) = self.index_compact_bytes {
            if self.index.size_bytes().unwrap_or(0) > limit {
                let _ = self.compact_locked(state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::FingerprintBuilder;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cache_store_test_{}_{}_{}",
            std::process::id(),
            name,
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn key(tag: &str) -> CacheKey {
        let fp = FingerprintBuilder::new().push_u64(1).finish();
        CacheKey::compose(tag, digest_bytes(tag.as_bytes()), fp)
    }

    #[test]
    fn insert_then_lookup_roundtrips_and_counts() {
        let c = ArtifactCache::open(tmpdir("roundtrip"), None).unwrap();
        let d = c.insert(key("a"), b"payload-a").unwrap();
        assert_eq!(d, digest_bytes(b"payload-a"));
        assert_eq!(c.lookup(key("a")).as_deref(), Some(&b"payload-a"[..]));
        assert_eq!(c.lookup(key("b")), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(c.total_bytes(), 9);
    }

    #[test]
    fn survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let c = ArtifactCache::open(&dir, None).unwrap();
            c.insert(key("a"), b"alpha").unwrap();
            c.insert(key("b"), b"beta").unwrap();
        }
        let c = ArtifactCache::open(&dir, None).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(key("a")).as_deref(), Some(&b"alpha"[..]));
        assert_eq!(c.lookup(key("b")).as_deref(), Some(&b"beta"[..]));
    }

    #[test]
    fn corrupted_object_degrades_to_miss_and_drops_entry() {
        let dir = tmpdir("corrupt");
        let c = ArtifactCache::open(&dir, None).unwrap();
        let digest = c.insert(key("a"), b"good bytes").unwrap();
        std::fs::write(dir.join("objects").join(digest.to_string()), b"bad bytess").unwrap();
        assert_eq!(c.lookup(key("a")), None, "corruption must not hit");
        assert_eq!(c.stats().verify_failures, 1);
        assert_eq!(c.len(), 0, "poisoned entry dropped");
        // And it stays gone across reopen (the del record persisted).
        drop(c);
        let c = ArtifactCache::open(&dir, None).unwrap();
        assert_eq!(c.lookup(key("a")), None);
    }

    #[test]
    fn missing_object_file_degrades_to_miss() {
        let dir = tmpdir("missing_obj");
        let c = ArtifactCache::open(&dir, None).unwrap();
        let digest = c.insert(key("a"), b"bytes").unwrap();
        std::fs::remove_file(dir.join("objects").join(digest.to_string())).unwrap();
        assert_eq!(c.lookup(key("a")), None);
        assert!(c.is_empty());
    }

    #[test]
    fn identical_payloads_share_one_object() {
        let dir = tmpdir("dedup");
        let c = ArtifactCache::open(&dir, None).unwrap();
        let d1 = c.insert(key("a"), b"same bytes").unwrap();
        let d2 = c.insert(key("b"), b"same bytes").unwrap();
        assert_eq!(d1, d2);
        let objects: Vec<_> = std::fs::read_dir(dir.join("objects")).unwrap().collect();
        assert_eq!(objects.len(), 1, "one shared object file");
        // Dropping one key keeps the shared object alive for the other.
        std::fs::write(dir.join("objects").join(d1.to_string()), b"same bytes").unwrap();
        let budget_victim = c.lookup(key("a")).unwrap();
        assert_eq!(budget_victim, b"same bytes");
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let c = ArtifactCache::open(tmpdir("lru"), Some(10)).unwrap();
        c.insert(key("a"), b"aaaa").unwrap(); // 4 bytes
        c.insert(key("b"), b"bbbb").unwrap(); // 8 total
                                              // Touch a so b becomes the LRU victim.
        assert!(c.lookup(key("a")).is_some());
        c.insert(key("c"), b"cccc").unwrap(); // 12 > 10: evict b
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup(key("b")).is_none(), "b was least recent");
        assert!(c.lookup(key("a")).is_some());
        assert!(c.lookup(key("c")).is_some());
        assert!(c.total_bytes() <= 10);
    }

    #[test]
    fn oversized_insert_is_protected_once() {
        let c = ArtifactCache::open(tmpdir("oversize"), Some(4)).unwrap();
        c.insert(key("big"), b"way more than four").unwrap();
        // The just-inserted entry is spared even though it exceeds the
        // budget on its own — read-your-write holds.
        assert!(c.lookup(key("big")).is_some());
    }

    #[test]
    fn reinsert_same_payload_is_idempotent() {
        let dir = tmpdir("idempotent");
        let c = ArtifactCache::open(&dir, None).unwrap();
        c.insert(key("a"), b"payload").unwrap();
        c.insert(key("a"), b"payload").unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_bytes(), 7);
    }

    #[test]
    fn overwrite_key_with_new_payload_wins() {
        let dir = tmpdir("overwrite");
        let c = ArtifactCache::open(&dir, None).unwrap();
        c.insert(key("a"), b"old").unwrap();
        c.insert(key("a"), b"newer").unwrap();
        assert_eq!(c.lookup(key("a")).as_deref(), Some(&b"newer"[..]));
        assert_eq!(c.total_bytes(), 5);
        drop(c);
        let c = ArtifactCache::open(dir, None).unwrap();
        assert_eq!(c.lookup(key("a")).as_deref(), Some(&b"newer"[..]));
    }

    #[test]
    fn large_insert_does_not_block_concurrent_lookup() {
        // Regression: `insert` used to hold the state mutex across the
        // object-file write, so a lookup of a *different* key stalled
        // behind a large payload. Now the write is staged outside the
        // lock: with a 1.5 s stall injected into the write path, a
        // concurrent lookup must still return in a fraction of that.
        let c = std::sync::Arc::new(ArtifactCache::open(tmpdir("nonblocking"), None).unwrap());
        c.insert(key("fast"), b"small payload").unwrap();
        c.write_stall_ms.store(1500, Ordering::Relaxed);
        let writer = {
            let c = std::sync::Arc::clone(&c);
            std::thread::spawn(move || c.insert(key("big"), b"pretend this is huge").unwrap())
        };
        // Give the writer time to take and release the reservation lock
        // and enter the stalled write.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let t0 = Instant::now();
        assert_eq!(
            c.lookup(key("fast")).as_deref(),
            Some(&b"small payload"[..])
        );
        let elapsed = t0.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(700),
            "lookup stalled {elapsed:?} behind a concurrent object write"
        );
        writer.join().unwrap();
        c.write_stall_ms.store(0, Ordering::Relaxed);
        assert_eq!(
            c.lookup(key("big")).as_deref(),
            Some(&b"pretend this is huge"[..])
        );
    }

    #[test]
    fn eviction_storm_over_10k_entries_is_fast_and_correct() {
        // Regression: eviction re-scanned all entries per victim (O(n²)).
        // Fill 10k entries, then shrink the working set against a budget
        // that forces ~90% of them out in one storm. With the ordered
        // recency structure this is well under a second even on a loaded
        // CI box; the old quadratic scan took tens of seconds.
        let n: usize = 10_000;
        let payload = [7u8; 32];
        let budget = (payload.len() * n) as u64; // roomy: no eviction yet
        let c = ArtifactCache::open(tmpdir("storm"), Some(budget)).unwrap();
        for i in 0..n {
            c.insert(key(&format!("k{i}")), &payload).unwrap();
        }
        assert_eq!(c.len(), n);
        assert_eq!(c.stats().evictions, 0);
        // Touch the last 1000 so they are the most recent, then insert one
        // oversized payload that blows ~90% of the budget.
        for i in n - 1000..n {
            assert!(c.lookup(key(&format!("k{i}"))).is_some());
        }
        let big = vec![1u8; (budget as usize * 9) / 10];
        let t0 = Instant::now();
        c.insert(key("big"), &big).unwrap();
        let elapsed = t0.elapsed();
        let s = c.stats();
        assert!(s.evictions > 8_000, "storm evicted {}", s.evictions);
        assert!(c.total_bytes() <= budget);
        // The most-recently-touched survivors are evicted last: everything
        // still live besides `big` must come from the touched tail.
        assert!(c.lookup(key("big")).is_some());
        assert!(c.lookup(key("k0")).is_none(), "oldest entry must be gone");
        assert!(
            elapsed < std::time::Duration::from_secs(5),
            "eviction storm took {elapsed:?} — recency ordering regressed?"
        );
    }

    #[test]
    fn contains_verified_is_metadata_level_with_lookup_fallback() {
        let dir = tmpdir("contains");
        let c = ArtifactCache::open(&dir, None).unwrap();
        let d = c.insert(key("a"), b"ten bytes!").unwrap();
        // Fast path: counts exactly one hit per call, like lookup did.
        assert!(c.contains_verified(key("a")));
        assert_eq!(c.stats().hits, 1);
        // Same-length corruption passes the gate (documented weaker
        // guarantee — proof the payload was not re-hashed) ...
        std::fs::write(dir.join("objects").join(d.to_string()), b"ten bytez!").unwrap();
        assert!(c.contains_verified(key("a")));
        // ... but the verifying lookup still catches it and recovers.
        assert_eq!(c.lookup(key("a")), None);
        assert_eq!(c.stats().verify_failures, 1);
        // Length mismatch is suspect: falls back to full verify → miss,
        // entry dropped. Absent key is a plain miss.
        let d2 = c.insert(key("b"), b"other bytes").unwrap();
        std::fs::write(dir.join("objects").join(d2.to_string()), b"short").unwrap();
        let misses_before = c.stats().misses;
        assert!(!c.contains_verified(key("b")));
        assert!(!c.contains_verified(key("never-inserted")));
        assert_eq!(c.stats().misses, misses_before + 2, "one count per call");
        assert_eq!(c.len(), 0, "suspect entry dropped by the fallback");
    }

    #[test]
    fn contains_verified_refreshes_lru_recency() {
        let c = ArtifactCache::open(tmpdir("contains_lru"), Some(10)).unwrap();
        c.insert(key("a"), b"aaaa").unwrap();
        c.insert(key("b"), b"bbbb").unwrap();
        // Gate-check a: b becomes the LRU victim.
        assert!(c.contains_verified(key("a")));
        c.insert(key("c"), b"cccc").unwrap();
        assert!(c.lookup(key("a")).is_some());
        assert!(c.lookup(key("b")).is_none(), "b was least recent");
    }

    #[test]
    fn threshold_compaction_shrinks_index_and_survives_reopen() {
        let dir = tmpdir("compact");
        let c = ArtifactCache::open(&dir, Some(64))
            .unwrap()
            .with_index_compact_bytes(2_000);
        // Churn: overwrites and evictions bloat the append-only log until
        // the threshold trips.
        for round in 0..200u32 {
            for k in 0..8u32 {
                c.insert(key(&format!("k{k}")), format!("r{round}").as_bytes())
                    .unwrap();
            }
        }
        let s = c.stats();
        assert!(s.compactions > 0, "threshold never tripped");
        assert!(
            c.index_bytes() < 4_000,
            "index stayed bloated: {} bytes",
            c.index_bytes()
        );
        let live = c.live_entries();
        drop(c);
        let c = ArtifactCache::open(&dir, Some(64)).unwrap();
        assert_eq!(c.live_entries(), live, "compacted log replays identically");
        for e in live {
            assert!(c.lookup(e.key).is_some());
        }
    }

    #[test]
    fn explicit_compaction_reclaims_del_records() {
        let dir = tmpdir("compact_explicit");
        let c = ArtifactCache::open(&dir, None).unwrap();
        for i in 0..50u32 {
            c.insert(key("churn"), format!("payload {i}").as_bytes())
                .unwrap();
        }
        let before = c.index_bytes();
        let reclaimed = c.compact_index().unwrap();
        assert!(reclaimed > 0);
        assert_eq!(c.index_bytes(), before - reclaimed);
        assert_eq!(c.lookup(key("churn")).as_deref(), Some(&b"payload 49"[..]));
    }

    #[test]
    fn concurrent_insert_lookup_is_safe() {
        let c = std::sync::Arc::new(ArtifactCache::open(tmpdir("concurrent"), None).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..16u32 {
                        let k = key(&format!("k{}", (t * 16 + i) % 8));
                        let payload = format!("payload-{}", (t * 16 + i) % 8);
                        c.insert(k, payload.as_bytes()).unwrap();
                        assert_eq!(c.lookup(k).unwrap(), payload.as_bytes());
                    }
                });
            }
        });
        assert_eq!(c.len(), 8);
    }
}
