//! The sharded, replicated artifact store spanning simulated nodes.
//!
//! [`DistributedStore`] composes per-node [`ArtifactCache`] shards (one
//! directory per node under the store root) behind the rendezvous placement
//! of [`ShardRouter`]: every artifact lives on the R highest-scoring nodes
//! for its key, `placement[0]` being the *primary* (the home node, modelled
//! as local to the rank that produced the artifact). Reads prefer the
//! primary and fall over to replicas; any non-primary read is a *remote
//! fetch* that crosses the simulated interconnect and is charged through a
//! [`RemoteFetchModel`] (numbers drawn from `simhpc`'s machine specs by the
//! workflow glue — this crate stays model-agnostic).
//!
//! Failure semantics mirror the rest of the workbench — faults degrade,
//! never corrupt:
//!
//! * [`SITE_REPLICATE`] (`cache.replicate`), polled per secondary replica
//!   write. Transient ⇒ that replica is skipped (the artifact is
//!   under-replicated until [`heal`]); Crash ⇒ the *target node dies*
//!   mid-replication, exactly the "replica-holding node crashes" scenario
//!   the conformance explorer sweeps; Stall ⇒ the write is delayed.
//! * [`SITE_FETCH_REMOTE`] (`cache.fetch.remote`), polled per remote read
//!   attempt. Transient ⇒ that replica is unreachable this once, the read
//!   tries the next one; Crash ⇒ the remote node dies and the read routes
//!   around it; Stall ⇒ the fetch is delayed.
//!
//! With R ≥ 2, the death of any single replica-holding node leaves every
//! artifact reachable: reads route to surviving replicas, a warm re-run
//! recomputes nothing, and catalogs stay byte-identical to a
//! single-directory store (placement changes where bytes live, never what
//! they are).
//!
//! [`heal`]: DistributedStore::heal

use crate::digest::{CacheKey, Digest};
use crate::router::ShardRouter;
use crate::store::{ArtifactCache, CacheStats};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fault site polled once per secondary replica write.
pub const SITE_REPLICATE: &str = "cache.replicate";
/// Fault site polled once per remote (non-primary) fetch attempt.
pub const SITE_FETCH_REMOTE: &str = "cache.fetch.remote";

/// Cost model for a remote artifact fetch across the simulated
/// interconnect: `latency_s + bytes / bandwidth_bps` seconds. Construct it
/// from `simhpc`'s `InterconnectSpec` numbers (the workflow glue does) or
/// use [`RemoteFetchModel::free`] when cost is irrelevant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteFetchModel {
    /// Per-fetch link latency in seconds.
    pub latency_s: f64,
    /// Point-to-point link bandwidth in bytes/second.
    pub bandwidth_bps: f64,
}

impl RemoteFetchModel {
    /// A model with the given latency (seconds) and bandwidth (bytes/s).
    pub fn new(latency_s: f64, bandwidth_bps: f64) -> RemoteFetchModel {
        RemoteFetchModel {
            latency_s,
            bandwidth_bps,
        }
    }

    /// Zero-cost fetches (unit tests, single-node stores).
    pub fn free() -> RemoteFetchModel {
        RemoteFetchModel {
            latency_s: 0.0,
            bandwidth_bps: f64::INFINITY,
        }
    }

    /// Simulated seconds to move `bytes` across one link.
    pub fn fetch_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

/// Configuration for [`DistributedStore::open`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedConfig {
    /// Simulated nodes (one shard directory each).
    pub nodes: usize,
    /// Copies kept per artifact (clamped to `[1, nodes]`).
    pub replicas: usize,
    /// Per-shard LRU byte budget (`None`: unbounded).
    pub byte_budget_per_node: Option<u64>,
    /// Per-shard index log size that triggers amortised compaction.
    pub index_compact_bytes: Option<u64>,
    /// Remote-fetch cost model.
    pub fetch: RemoteFetchModel,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            nodes: 4,
            replicas: 2,
            byte_budget_per_node: None,
            index_compact_bytes: Some(64 * 1024),
            fetch: RemoteFetchModel::free(),
        }
    }
}

/// Store-level counters (per-shard [`CacheStats`] are separate, see
/// [`DistributedStore::shard_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Reads satisfied by the primary (home) shard.
    pub local_hits: u64,
    /// Reads satisfied by a non-primary replica — each paid a simulated
    /// interconnect crossing.
    pub remote_hits: u64,
    /// Reads no live replica could satisfy.
    pub misses: u64,
    /// Artifacts inserted.
    pub inserts: u64,
    /// Successful secondary replica writes.
    pub replica_writes: u64,
    /// Secondary replica writes skipped (transient replication fault or
    /// shard I/O error) — healable under-replication.
    pub replica_skips: u64,
    /// Replica-set members skipped because their node was dead.
    pub dead_skips: u64,
    /// Nodes killed by injected crash faults (`kill_node` calls are not
    /// counted — those are the test harness's doing).
    pub fault_kills: u64,
    /// Replicas restored by [`DistributedStore::heal`].
    pub heals: u64,
    /// Bytes moved by remote fetches.
    pub remote_bytes: u64,
}

struct Shard {
    cache: ArtifactCache,
    alive: AtomicBool,
}

/// A replicated artifact store sharded across simulated nodes. Thread-safe;
/// share via `Arc`. See the module docs for placement and failure
/// semantics.
pub struct DistributedStore {
    root: PathBuf,
    router: ShardRouter,
    shards: Vec<Shard>,
    fetch: RemoteFetchModel,
    local_hits: AtomicU64,
    remote_hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    replica_writes: AtomicU64,
    replica_skips: AtomicU64,
    dead_skips: AtomicU64,
    fault_kills: AtomicU64,
    heals: AtomicU64,
    remote_bytes: AtomicU64,
    /// f64 bits of the accumulated simulated remote-fetch seconds.
    remote_seconds_bits: AtomicU64,
}

impl std::fmt::Debug for DistributedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedStore")
            .field("root", &self.root)
            .field("nodes", &self.router.nodes())
            .field("replicas", &self.router.replicas())
            .finish()
    }
}

impl DistributedStore {
    /// Open (or create) the store at `root`, with one shard directory
    /// `node<k>` per simulated node. Every node starts alive; shard indexes
    /// replay exactly like a single-directory [`ArtifactCache`].
    pub fn open(root: impl Into<PathBuf>, cfg: DistributedConfig) -> io::Result<DistributedStore> {
        let root = root.into();
        let router = ShardRouter::new(cfg.nodes, cfg.replicas);
        let mut shards = Vec::with_capacity(cfg.nodes);
        for k in 0..cfg.nodes {
            let mut cache =
                ArtifactCache::open(root.join(format!("node{k}")), cfg.byte_budget_per_node)?;
            if let Some(bytes) = cfg.index_compact_bytes {
                cache = cache.with_index_compact_bytes(bytes);
            }
            shards.push(Shard {
                cache,
                alive: AtomicBool::new(true),
            });
        }
        Ok(DistributedStore {
            root,
            router,
            shards,
            fetch: cfg.fetch,
            local_hits: AtomicU64::new(0),
            remote_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            replica_writes: AtomicU64::new(0),
            replica_skips: AtomicU64::new(0),
            dead_skips: AtomicU64::new(0),
            fault_kills: AtomicU64::new(0),
            heals: AtomicU64::new(0),
            remote_bytes: AtomicU64::new(0),
            remote_seconds_bits: AtomicU64::new(0),
        })
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of simulated nodes.
    pub fn nodes(&self) -> usize {
        self.shards.len()
    }

    /// The placement router (for tests and tooling).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// True when node `k` is alive.
    pub fn alive(&self, k: usize) -> bool {
        self.shards[k].alive.load(Ordering::Relaxed)
    }

    /// Simulate the death of node `k`: its shard stops serving reads and
    /// receiving writes until [`revive_node`](Self::revive_node). The
    /// node's disk is untouched (a rebooted node comes back with its data);
    /// pair with [`wipe_node`](Self::wipe_node) for permanent loss.
    pub fn kill_node(&self, k: usize) {
        self.shards[k].alive.store(false, Ordering::Relaxed);
        telemetry::instant!("store", "node_killed", k as u64);
    }

    /// Bring node `k` back (its on-disk shard state intact).
    pub fn revive_node(&self, k: usize) {
        self.shards[k].alive.store(true, Ordering::Relaxed);
    }

    /// Destroy node `k`'s on-disk shard — permanent data loss, as when a
    /// node's local scratch is gone for good. The node should be (and is
    /// marked) dead; reopen the store to serve from surviving replicas, or
    /// [`revive_node`](Self::revive_node) + [`heal`](Self::heal) after
    /// re-opening to restore replication.
    pub fn wipe_node(&self, k: usize) -> io::Result<()> {
        self.kill_node(k);
        let dir = self.root.join(format!("node{k}"));
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        Ok(())
    }

    /// Live nodes count.
    pub fn alive_nodes(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.alive.load(Ordering::Relaxed))
            .count()
    }

    /// Per-shard cache counters for node `k`.
    pub fn shard_stats(&self, k: usize) -> CacheStats {
        self.shards[k].cache.stats()
    }

    /// The shard cache of node `k` (inspection and tooling).
    pub fn shard(&self, k: usize) -> &ArtifactCache {
        &self.shards[k].cache
    }

    /// Store-level counters.
    pub fn stats(&self) -> DistStats {
        DistStats {
            local_hits: self.local_hits.load(Ordering::Relaxed),
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            replica_writes: self.replica_writes.load(Ordering::Relaxed),
            replica_skips: self.replica_skips.load(Ordering::Relaxed),
            dead_skips: self.dead_skips.load(Ordering::Relaxed),
            fault_kills: self.fault_kills.load(Ordering::Relaxed),
            heals: self.heals.load(Ordering::Relaxed),
            remote_bytes: self.remote_bytes.load(Ordering::Relaxed),
        }
    }

    /// Total simulated seconds spent on remote fetches (per the
    /// [`RemoteFetchModel`]).
    pub fn remote_seconds(&self) -> f64 {
        f64::from_bits(self.remote_seconds_bits.load(Ordering::Relaxed))
    }

    fn add_remote_seconds(&self, s: f64) {
        let mut cur = self.remote_seconds_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + s).to_bits();
            match self.remote_seconds_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    fn fault_kill(&self, node: usize) {
        self.shards[node].alive.store(false, Ordering::Relaxed);
        self.fault_kills.fetch_add(1, Ordering::Relaxed);
        telemetry::instant!("store", "fault_killed_node", node as u64);
    }

    /// Store `payload` under `key` on its replica set. The first *live*
    /// placement node must accept the write (its error propagates — an
    /// artifact with zero copies is a hard failure); each further replica
    /// polls [`SITE_REPLICATE`] and degrades to under-replication on
    /// trouble. Returns the content digest.
    pub fn insert(&self, key: CacheKey, payload: &[u8]) -> io::Result<Digest> {
        let _span = telemetry::span!("store", "insert", payload.len());
        let placement = self.router.placement(key);
        let mut digest = None;
        for &node in &placement {
            if !self.alive(node) {
                self.dead_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if digest.is_none() {
                // First live replica: the required write.
                digest = Some(self.shards[node].cache.insert(key, payload)?);
                continue;
            }
            // Secondary replica: degrade on trouble, never fail the insert.
            match faults::fault_point!("cache.replicate") {
                Some(faults::FaultKind::Transient) => {
                    self.replica_skips.fetch_add(1, Ordering::Relaxed);
                    telemetry::count!("store", "replica_skips", 1);
                    continue;
                }
                Some(faults::FaultKind::Crash) => {
                    // The target node dies mid-replication.
                    self.fault_kill(node);
                    continue;
                }
                Some(faults::FaultKind::Stall(d)) => std::thread::sleep(d),
                None => {}
            }
            match self.shards[node].cache.insert(key, payload) {
                Ok(_) => {
                    self.replica_writes.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.replica_skips.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        match digest {
            Some(d) => {
                self.inserts.fetch_add(1, Ordering::Relaxed);
                Ok(d)
            }
            None => Err(io::Error::other(format!(
                "no live replica target among {placement:?}"
            ))),
        }
    }

    /// Fetch and verify the payload under `key`, preferring the primary
    /// and falling over to replicas. Non-primary attempts poll
    /// [`SITE_FETCH_REMOTE`] and charge the fetch model. `None` only when
    /// no live replica holds a verifiable copy — the caller recomputes,
    /// and the result is byte-identical to a store-less run.
    pub fn lookup(&self, key: CacheKey) -> Option<Vec<u8>> {
        let _span = telemetry::span!("store", "lookup");
        for (i, &node) in self.router.placement(key).iter().enumerate() {
            if !self.alive(node) {
                self.dead_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if i > 0 {
                match faults::fault_point!("cache.fetch.remote") {
                    Some(faults::FaultKind::Transient) => {
                        // Link hiccup: this replica is unreachable for this
                        // fetch; try the next one.
                        telemetry::count!("store", "fetch_faults", 1);
                        continue;
                    }
                    Some(faults::FaultKind::Crash) => {
                        // The remote node dies; route around it.
                        self.fault_kill(node);
                        continue;
                    }
                    Some(faults::FaultKind::Stall(d)) => std::thread::sleep(d),
                    None => {}
                }
            }
            if let Some(payload) = self.shards[node].cache.lookup(key) {
                if i > 0 {
                    let cost = self.fetch.fetch_seconds(payload.len() as u64);
                    self.add_remote_seconds(cost);
                    self.remote_bytes
                        .fetch_add(payload.len() as u64, Ordering::Relaxed);
                    self.remote_hits.fetch_add(1, Ordering::Relaxed);
                    telemetry::count!("store", "remote_hits", 1);
                    telemetry::observe!("store", "fetch_us", (cost * 1e6) as u64);
                } else {
                    self.local_hits.fetch_add(1, Ordering::Relaxed);
                    telemetry::count!("store", "local_hits", 1);
                }
                return Some(payload);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::count!("store", "misses", 1);
        None
    }

    /// The resubmission gate: true when some live replica passes the
    /// metadata-level check of [`ArtifactCache::contains_verified`]. No
    /// payload crosses the interconnect (that is the point of the
    /// metadata-level gate), so no fetch cost and no
    /// [`SITE_FETCH_REMOTE`] poll.
    pub fn contains_verified(&self, key: CacheKey) -> bool {
        for &node in &self.router.placement(key) {
            if !self.alive(node) {
                self.dead_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if self.shards[node].cache.contains_verified(key) {
                return true;
            }
        }
        false
    }

    /// Restore full replication: for every artifact on a live shard, copy
    /// it to live placement nodes that lack it. Heals transient replica
    /// skips and re-protects artifacts after a node death (once a
    /// replacement is alive). Returns replicas restored.
    pub fn heal(&self) -> io::Result<u64> {
        let mut restored = 0u64;
        for (k, shard) in self.shards.iter().enumerate() {
            if !shard.alive.load(Ordering::Relaxed) {
                continue;
            }
            for entry in shard.cache.live_entries() {
                let mut payload: Option<Vec<u8>> = None;
                for &target in &self.router.placement(entry.key) {
                    if target == k || !self.alive(target) {
                        continue;
                    }
                    if self.shards[target].cache.contains_verified(entry.key) {
                        continue;
                    }
                    if payload.is_none() {
                        payload = shard.cache.lookup(entry.key);
                        if payload.is_none() {
                            // Our copy turned out poisoned: nothing to heal
                            // from here.
                            break;
                        }
                    }
                    self.shards[target]
                        .cache
                        .insert(entry.key, payload.as_deref().expect("checked above"))?;
                    restored += 1;
                    self.heals.fetch_add(1, Ordering::Relaxed);
                    telemetry::count!("store", "heals", 1);
                }
            }
        }
        Ok(restored)
    }

    /// Compact every live shard's index log now. Returns total bytes
    /// reclaimed. (Shards also self-compact amortised via
    /// `index_compact_bytes`; this is the explicit/background entry point.)
    pub fn compact(&self) -> io::Result<u64> {
        let mut reclaimed = 0;
        for shard in &self.shards {
            if shard.alive.load(Ordering::Relaxed) {
                reclaimed += shard.cache.compact_index()?;
            }
        }
        Ok(reclaimed)
    }

    /// Total compactions across shards (threshold-triggered + explicit).
    pub fn compactions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.cache.stats().compactions)
            .sum()
    }

    /// Spawn the background maintenance thread: every `interval` it
    /// compacts shard indexes (and heals replication when `heal` is set).
    /// The thread stops when the returned handle drops.
    pub fn spawn_maintenance(
        self: &Arc<Self>,
        interval: Duration,
        heal: bool,
    ) -> MaintenanceHandle {
        let store = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                let _ = store.compact();
                if heal {
                    let _ = store.heal();
                }
            }
        });
        MaintenanceHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Stops the background maintenance thread when dropped.
#[derive(Debug)]
pub struct MaintenanceHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for MaintenanceHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::{digest_bytes, FingerprintBuilder};
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cache_shard_test_{}_{}_{}",
            std::process::id(),
            name,
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn key(tag: &str) -> CacheKey {
        let fp = FingerprintBuilder::new().push_u64(9).finish();
        CacheKey::compose("shard-test", digest_bytes(tag.as_bytes()), fp)
    }

    fn cfg(nodes: usize, replicas: usize) -> DistributedConfig {
        DistributedConfig {
            nodes,
            replicas,
            ..DistributedConfig::default()
        }
    }

    #[test]
    fn insert_places_r_replicas_where_the_router_says() {
        let s = DistributedStore::open(tmpdir("placement"), cfg(5, 3)).unwrap();
        let k = key("artifact");
        s.insert(k, b"bytes of the artifact").unwrap();
        let placement = s.router().placement(k);
        for node in 0..5 {
            let holds = s.shard(node).live_entries().iter().any(|e| e.key == k);
            assert_eq!(holds, placement.contains(&node), "node {node}");
        }
        assert_eq!(s.stats().replica_writes, 2);
    }

    #[test]
    fn primary_read_is_local_replica_read_is_remote_and_charged() {
        let mut c = cfg(4, 2);
        c.fetch = RemoteFetchModel::new(0.5, 1000.0);
        let s = DistributedStore::open(tmpdir("remote"), c).unwrap();
        let k = key("x");
        s.insert(k, b"0123456789").unwrap();
        assert_eq!(s.lookup(k).as_deref(), Some(&b"0123456789"[..]));
        assert_eq!(s.stats().local_hits, 1);
        assert_eq!(s.remote_seconds(), 0.0);

        s.kill_node(s.router().primary(k));
        assert_eq!(s.lookup(k).as_deref(), Some(&b"0123456789"[..]));
        let st = s.stats();
        assert_eq!((st.remote_hits, st.remote_bytes), (1, 10));
        let expect = 0.5 + 10.0 / 1000.0;
        assert!((s.remote_seconds() - expect).abs() < 1e-12);
    }

    #[test]
    fn any_single_node_death_leaves_every_artifact_reachable() {
        let dir = tmpdir("singledeath");
        let keys: Vec<CacheKey> = (0..40).map(|i| key(&format!("k{i}"))).collect();
        {
            let s = DistributedStore::open(&dir, cfg(4, 2)).unwrap();
            for (i, &k) in keys.iter().enumerate() {
                s.insert(k, format!("payload {i}").as_bytes()).unwrap();
            }
        }
        for dead in 0..4 {
            let s = DistributedStore::open(&dir, cfg(4, 2)).unwrap();
            s.kill_node(dead);
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(
                    s.lookup(k).as_deref(),
                    Some(format!("payload {i}").as_bytes()),
                    "key {i} unreachable with node {dead} dead"
                );
                assert!(s.contains_verified(k));
            }
            assert_eq!(s.stats().misses, 0);
        }
    }

    #[test]
    fn wiped_node_is_permanent_loss_but_replicas_cover_and_heal_restores() {
        let dir = tmpdir("wipe");
        let keys: Vec<CacheKey> = (0..30).map(|i| key(&format!("w{i}"))).collect();
        let s = DistributedStore::open(&dir, cfg(3, 2)).unwrap();
        for &k in &keys {
            s.insert(k, b"replicated payload").unwrap();
        }
        s.wipe_node(1).unwrap();
        drop(s);
        // Reopen: node1's shard is empty. Everything is still reachable.
        let s = DistributedStore::open(&dir, cfg(3, 2)).unwrap();
        for &k in &keys {
            assert_eq!(s.lookup(k).as_deref(), Some(&b"replicated payload"[..]));
        }
        assert_eq!(s.stats().misses, 0);
        // Heal restores full R=2 replication onto the fresh node1.
        let restored = s.heal().unwrap();
        let on_node1 = keys
            .iter()
            .filter(|k| s.router().placement(**k).contains(&1))
            .count() as u64;
        assert_eq!(restored, on_node1);
        for &k in &keys {
            let live = s.router().placement(k);
            for &n in &live {
                assert!(s.shard(n).live_entries().iter().any(|e| e.key == k));
            }
        }
        // A second heal is a no-op.
        assert_eq!(s.heal().unwrap(), 0);
    }

    #[test]
    fn all_replicas_dead_degrades_to_miss_and_insert_fails_hard() {
        let s = DistributedStore::open(tmpdir("alldead"), cfg(3, 2)).unwrap();
        let k = key("doomed");
        s.insert(k, b"bytes").unwrap();
        for &n in &s.router().placement(k) {
            s.kill_node(n);
        }
        assert_eq!(s.lookup(k), None);
        assert_eq!(s.stats().misses, 1);
        assert!(!s.contains_verified(k));
        assert!(s.insert(k, b"bytes").is_err(), "no live replica target");
    }

    #[test]
    fn primary_shard_miss_falls_over_to_replica_without_a_store_miss() {
        // The primary node is alive but lost its copy (poisoned object):
        // the read must route to the replica, not recompute.
        let s = DistributedStore::open(tmpdir("failover"), cfg(4, 2)).unwrap();
        let k = key("p");
        let d = s.insert(k, b"precious bytes").unwrap();
        let primary = s.router().primary(k);
        std::fs::remove_file(
            s.root()
                .join(format!("node{primary}"))
                .join("objects")
                .join(d.to_string()),
        )
        .unwrap();
        assert_eq!(s.lookup(k).as_deref(), Some(&b"precious bytes"[..]));
        let st = s.stats();
        assert_eq!((st.remote_hits, st.misses), (1, 0));
    }

    #[test]
    fn single_node_store_degenerates_to_plain_cache() {
        let s = DistributedStore::open(tmpdir("solo"), cfg(1, 1)).unwrap();
        let k = key("solo");
        s.insert(k, b"alone").unwrap();
        assert_eq!(s.lookup(k).as_deref(), Some(&b"alone"[..]));
        let st = s.stats();
        assert_eq!(
            (st.local_hits, st.remote_hits, st.replica_writes),
            (1, 0, 0)
        );
        assert_eq!(s.remote_seconds(), 0.0);
    }

    #[test]
    fn maintenance_thread_compacts_in_the_background() {
        let mut c = cfg(2, 1);
        c.index_compact_bytes = None; // no amortised compaction—only the thread
        let s = Arc::new(DistributedStore::open(tmpdir("maint"), c).unwrap());
        for i in 0..60 {
            s.insert(key("churn"), format!("payload {i}").as_bytes())
                .unwrap();
        }
        let bloated = (0..2).map(|k| s.shard(k).index_bytes()).sum::<u64>();
        let handle = s.spawn_maintenance(Duration::from_millis(20), false);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while s.compactions() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(handle);
        assert!(s.compactions() > 0, "maintenance thread never compacted");
        let after = (0..2).map(|k| s.shard(k).index_bytes()).sum::<u64>();
        assert!(after < bloated, "compaction did not shrink the index logs");
        assert_eq!(s.lookup(key("churn")).as_deref(), Some(&b"payload 59"[..]));
    }
}
