//! Eviction vs. concurrent readers, and shared-digest refcounting.
//!
//! The cache's contract under byte-budget pressure: a lookup racing an
//! eviction returns either the complete verified payload or a clean miss —
//! never torn bytes — and an object file shared by several keys (identical
//! payloads deduplicated by digest) survives until its *last* referencing
//! entry is gone.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use cache::{digest_bytes, ArtifactCache, CacheKey, FingerprintBuilder};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cache_evict_test_{}_{}_{}",
        std::process::id(),
        name,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn key(tag: u64) -> CacheKey {
    let fp = FingerprintBuilder::new().push_u64(tag).finish();
    CacheKey::compose("evict-test", digest_bytes(&tag.to_le_bytes()), fp)
}

/// Deterministic payload for key `tag`: 1 KiB, content derived from the tag
/// so a torn or cross-wired read is detectable byte-for-byte.
fn payload(tag: u64) -> Vec<u8> {
    (0..1024u64)
        .flat_map(|i| (tag.wrapping_mul(0x9E37_79B9).wrapping_add(i)).to_le_bytes())
        .take(1024)
        .collect()
}

/// Readers hammer a rotating window of keys while a writer inserts past the
/// byte budget, evicting from under them. Every successful lookup must
/// return the exact inserted bytes; eviction may only ever surface as a
/// miss.
#[test]
fn eviction_under_concurrent_readers_never_tears() {
    // Budget fits ~4 payloads; the writer inserts 64, so eviction runs
    // almost continuously.
    let cache = Arc::new(ArtifactCache::open(tmpdir("readers"), Some(4 * 1100)).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut hits = 0u64;
                let mut misses = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for tag in 0..64u64 {
                        match cache.lookup(key(tag)) {
                            Some(bytes) => {
                                assert_eq!(
                                    bytes,
                                    payload(tag),
                                    "lookup for tag {tag} returned torn/foreign bytes"
                                );
                                hits += 1;
                            }
                            None => misses += 1,
                        }
                    }
                }
                (hits, misses)
            })
        })
        .collect();
    for round in 0..4 {
        for tag in 0..64u64 {
            cache.insert(key(tag), &payload(tag)).unwrap();
            if round == 0 && tag % 8 == 0 {
                std::thread::yield_now();
            }
        }
    }
    stop.store(true, Ordering::Release);
    let mut total_hits = 0;
    for r in readers {
        let (hits, _misses) = r.join().unwrap();
        total_hits += hits;
    }
    // The window rotates through live keys, so readers must have seen real
    // payloads, not just misses.
    assert!(total_hits > 0, "readers never hit — test exercised nothing");
    let stats = cache.stats();
    assert!(stats.evictions > 0, "budget never forced an eviction");
    // Budget holds after the dust settles.
    assert!(cache.total_bytes() <= 4 * 1100);
}

/// Two keys storing identical bytes share one object file. Evicting one key
/// must not delete the object while the other still references it; only the
/// last drop removes the file.
#[test]
fn shared_digest_object_survives_partial_eviction() {
    let dir = tmpdir("refcount");
    let cache = ArtifactCache::open(&dir, None).unwrap();
    let shared = payload(7);
    let d1 = cache.insert(key(1), &shared).unwrap();
    let d2 = cache.insert(key(2), &shared).unwrap();
    assert_eq!(d1, d2, "identical payloads must share a digest");
    let object = dir.join("objects").join(d1.to_string());
    assert!(object.exists());

    // Overwrite key 1 with different bytes: its ref on the shared object
    // drops, but key 2 still holds one.
    cache.insert(key(1), &payload(8)).unwrap();
    assert!(
        object.exists(),
        "shared object deleted while a key still references it"
    );
    assert_eq!(cache.lookup(key(2)).as_deref(), Some(&shared[..]));

    // Replace key 2 as well: the last reference is gone, the file goes too.
    cache.insert(key(2), &payload(9)).unwrap();
    assert!(
        !object.exists(),
        "unreferenced object file leaked after last eviction"
    );
    // Both keys still resolve to their new payloads.
    assert_eq!(cache.lookup(key(1)).as_deref(), Some(&payload(8)[..]));
    assert_eq!(cache.lookup(key(2)).as_deref(), Some(&payload(9)[..]));
}

/// A payload handed out by `lookup` is owned: evicting the entry afterwards
/// cannot corrupt it, and the next lookup is a clean miss, not an error.
#[test]
fn held_payload_outlives_eviction() {
    let cache = ArtifactCache::open(tmpdir("held"), Some(2 * 1100)).unwrap();
    cache.insert(key(1), &payload(1)).unwrap();
    let held = cache.lookup(key(1)).expect("fresh insert must hit");
    // Blow the budget: key 1 is the LRU victim (later keys are protected or
    // more recent).
    for tag in 2..8u64 {
        cache.insert(key(tag), &payload(tag)).unwrap();
    }
    assert_eq!(
        cache.lookup(key(1)),
        None,
        "evicted entry must miss cleanly"
    );
    // The held bytes are untouched by the eviction.
    assert_eq!(held, payload(1));
    let stats = cache.stats();
    assert!(stats.evictions > 0);
}
