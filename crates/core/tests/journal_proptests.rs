//! Property tests for the listener crash-recovery journal: whatever prefix
//! of appends survives a crash — including a torn final write — loading the
//! journal yields exactly the committed entries, never a phantom or a
//! corrupted one.

use hacc_core::journal::{Journal, JOURNAL_HEADER};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn tmpfile(tag: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!("journal_prop_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d.join(format!("case_{tag}.journal"))
}

/// Paths the listener could plausibly hand the journal (no newlines — the
/// API rejects those by contract).
fn arb_entries() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        (0u32..10_000, 0u8..4).prop_map(|(step, kind)| match kind {
            0 => format!("/out/l2_step{step:04}.hcio"),
            1 => format!("/scratch/run7/halo_{step}.hcio"),
            2 => format!("relative/dir/file {step} with spaces.hcio"),
            _ => format!("/out/unicode_µ{step}.hcio"),
        }),
        0..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-trip: after any sequence of appends, `load` returns exactly the
    /// set of appended paths.
    #[test]
    fn append_load_roundtrip(entries in arb_entries(), tag in any::<u64>()) {
        let path = tmpfile(tag);
        let _ = std::fs::remove_file(&path);
        let j = Journal::new(path.clone());
        for e in &entries {
            j.append(Path::new(e)).unwrap();
        }
        let expect: BTreeSet<PathBuf> = entries.iter().map(PathBuf::from).collect();
        prop_assert_eq!(j.load().unwrap(), expect);
        let _ = std::fs::remove_file(&path);
    }

    /// Crash at any byte boundary: truncate the file after `k` appends plus
    /// an arbitrary partial slice of the next entry's write. Loading must
    /// return exactly the first `k` committed entries — the torn tail never
    /// surfaces as a handled file, and never corrupts later appends.
    #[test]
    fn truncated_journal_recovers_committed_prefix(
        entries in arb_entries(),
        cut in 0usize..1000,
        tag in any::<u64>(),
    ) {
        let path = tmpfile(tag.wrapping_add(1));
        let _ = std::fs::remove_file(&path);
        let j = Journal::new(path.clone());
        for e in &entries {
            j.append(Path::new(e)).unwrap();
        }
        // Zero entries: the file may not exist yet.
        let bytes = std::fs::read(&path).unwrap_or_default();
        // Crash point: keep at least the header (a torn header is just "not
        // a journal yet" and is covered by the wrong-header unit test).
        let header_len = JOURNAL_HEADER.len() + 1;
        let cut = if bytes.len() <= header_len {
            bytes.len()
        } else {
            header_len + cut % (bytes.len() - header_len + 1)
        };
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let recovered = j.load().unwrap();
        // Committed = every entry whose full line fits inside the cut.
        let text = String::from_utf8_lossy(&bytes[..cut]).into_owned();
        let committed: BTreeSet<PathBuf> = text
            .split_inclusive('\n')
            .skip(1) // header
            .filter(|l| l.ends_with('\n'))
            .map(|l| PathBuf::from(l.trim_end_matches('\n')))
            .collect();
        prop_assert_eq!(&recovered, &committed);
        let full: BTreeSet<PathBuf> = entries.iter().map(PathBuf::from).collect();
        prop_assert!(recovered.is_subset(&full), "no phantom entries after a crash");

        // A post-crash restart keeps appending safely: the torn fragment is
        // sealed, and new entries always read back.
        j.append(Path::new("/out/after_restart.hcio")).unwrap();
        let after = j.load().unwrap();
        prop_assert!(after.contains(Path::new("/out/after_restart.hcio")));
        prop_assert!(after.is_superset(&committed), "crash recovery must not lose entries");
        let _ = std::fs::remove_file(&path);
    }
}
