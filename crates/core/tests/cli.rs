//! End-to-end tests of the `hacc-driver` executable — the whole combined
//! workflow driven through the CLI exactly as the listener's batch scripts
//! would drive it.

use std::path::PathBuf;
use std::process::Command;

fn driver() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hacc-driver"))
}

fn workdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hacc_cli_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn no_args_fails_with_usage() {
    let out = driver().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_command_fails() {
    let out = driver().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn experiments_qcontinuum_prints_headline() {
    let out = driver()
        .args(["experiments", "qcontinuum"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cost factor"), "{stdout}");
    assert!(stdout.contains("core-hours"));
}

#[test]
fn experiments_rejects_unknown_name() {
    let out = driver().args(["experiments", "table99"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn sim_then_offline_analyze_then_centers_roundtrip() {
    let dir = workdir("pipeline");
    let deck = dir.join("deck.ini");
    std::fs::write(
        &deck,
        "[simulation]\n\
         np = 16\nng = 16\nnsteps = 20\nseed = 4242\nbox_size = 162.5\n\
         write_level1 = true\n\
         [powerspectrum]\nenabled = true\nevery = 10\nbins = 8\n\
         [halofinder]\nenabled = true\nlinking_length = 0.28\nmin_size = 12\ncenter_threshold = 60\n",
    )
    .unwrap();

    // 1. The simulation job.
    let out = driver()
        .args([
            "sim",
            "--deck",
            deck.to_str().unwrap(),
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "sim failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote"), "{stdout}");
    assert!(dir.join("level1.hcio").exists());

    // 2. The off-line analysis job over Level 1.
    let out = driver()
        .args([
            "analyze",
            "--level1",
            dir.join("level1.hcio").to_str().unwrap(),
            "--link",
            "0.28",
            "--min-size",
            "12",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("found"), "{stdout}");

    // 3. If the run produced a Level 2 file, the centers job consumes it.
    let l2: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("l2_"))
        .collect();
    for f in l2 {
        let out = driver()
            .args(["centers", "--level2", f.path().to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success());
        assert!(String::from_utf8_lossy(&out.stdout).contains("centered"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn listen_picks_up_files_and_exits() {
    let dir = workdir("listen");
    std::fs::write(dir.join("a.hcio"), b"x").unwrap();
    std::fs::write(dir.join("b.hcio"), b"x").unwrap();
    let out = driver()
        .args([
            "listen",
            "--dir",
            dir.to_str().unwrap(),
            "--max-files",
            "2",
            "--timeout-ms",
            "10000",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("handled 2 file(s)"), "{stdout}");
    assert_eq!(stdout.matches("submit:").count(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_rejects_garbage_file() {
    let dir = workdir("garbage");
    let p = dir.join("junk.hcio");
    std::fs::write(&p, b"this is not a container").unwrap();
    let out = driver()
        .args(["analyze", "--level1", p.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("HCIO"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_flag_exports_parseable_chrome_json() {
    let dir = workdir("trace");
    let trace = dir.join("trace.json");
    let out = driver()
        .args(["experiments", "table1", "--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote trace"), "{stdout}");
    // Whether or not the build recorded events, the export must be valid
    // Chrome trace-event JSON with a traceEvents array.
    let text = std::fs::read_to_string(&trace).unwrap();
    let v = telemetry::json::parse(&text).expect("exported trace parses");
    assert!(
        v.get("traceEvents").and_then(|e| e.as_arr()).is_some(),
        "trace must carry a traceEvents array"
    );
    // The bundled validator agrees.
    let check = driver()
        .args(["trace-check", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    assert!(String::from_utf8_lossy(&check.stdout).contains("event(s)"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_check_rejects_garbage() {
    let dir = workdir("tracejunk");
    let p = dir.join("junk.json");
    std::fs::write(&p, b"{not json").unwrap();
    let out = driver()
        .args(["trace-check", p.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiments_report_writes_markdown() {
    let dir = workdir("report");
    let out = dir.join("report.md");
    let res = driver()
        .args(["experiments", "all", "--out", out.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        res.status.success(),
        "{}",
        String::from_utf8_lossy(&res.stderr)
    );
    let text = std::fs::read_to_string(&out).unwrap();
    assert!(text.contains("# Reproduction report"));
    assert!(text.contains("Table 1"));
    assert!(text.contains("Moonlight campaign"));
    std::fs::remove_dir_all(&dir).ok();
}
