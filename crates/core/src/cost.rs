//! Cost accounting in the paper's terms (Tables 3 and 4): per-phase wall
//! seconds and core-hours for the simulation job and the post-processing job.

use simhpc::MachineSpec;

/// Wall-clock seconds per phase of one job (Table 4 columns).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseSeconds {
    /// Queue wait before the job starts.
    pub queuing: f64,
    /// Simulation proper (zero for post-processing jobs).
    pub sim: f64,
    /// Reading input data.
    pub read: f64,
    /// Redistributing particles after read-in.
    pub redistribute: f64,
    /// Analysis compute.
    pub analysis: f64,
    /// Writing output data.
    pub write: f64,
    /// Graceful-degradation work: off-line fallback analysis performed
    /// because an in-situ step failed (zero on a fault-free run).
    pub fallback: f64,
}

impl PhaseSeconds {
    /// Total wall seconds excluding queue wait (the paper quotes
    /// "total + queuing").
    pub fn total(&self) -> f64 {
        self.sim + self.read + self.redistribute + self.analysis + self.write + self.fallback
    }
}

/// One job's cost: phases, node count, and the machine it ran on.
#[derive(Debug, Clone, PartialEq)]
pub struct JobCost {
    /// Job label ("simulation", "post-processing").
    pub label: String,
    /// Machine name.
    pub machine: String,
    /// Nodes held.
    pub nodes: usize,
    /// Charge factor (core-hours per node-hour).
    pub charge_factor: f64,
    /// Phase durations.
    pub phases: PhaseSeconds,
}

impl JobCost {
    /// Build against a machine spec.
    pub fn new(label: &str, machine: &MachineSpec, nodes: usize, phases: PhaseSeconds) -> Self {
        JobCost {
            label: label.to_string(),
            machine: machine.name.clone(),
            nodes,
            charge_factor: machine.charge_factor,
            phases,
        }
    }

    /// Core-hours for one phase duration.
    pub fn phase_core_hours(&self, seconds: f64) -> f64 {
        self.nodes as f64 * (seconds / 3600.0) * self.charge_factor
    }

    /// Core-hours for the whole job (excluding queue wait, which holds no
    /// nodes).
    pub fn total_core_hours(&self) -> f64 {
        self.phase_core_hours(self.phases.total())
    }
}

/// A complete workflow cost: the simulation job plus zero or more
/// post-processing jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowCost {
    /// Strategy name (Table 3 row label).
    pub strategy: String,
    /// The simulation job.
    pub simulation: JobCost,
    /// Post-processing jobs (off-line / co-scheduled analysis).
    pub post: Vec<JobCost>,
    /// Node-seconds of analysis that the artifact cache answered from
    /// existing objects instead of recomputing (zero for a cold run or a
    /// purely modeled projection). Not subtracted from the phase columns —
    /// those record what the run *would* have cost — but reported alongside
    /// so Table 4 shows what incremental re-execution saved.
    pub saved_node_seconds: f64,
}

impl WorkflowCost {
    /// The paper's Table 3 "core hours" number: analysis + write cost of the
    /// simulation job, plus the full cost of post-processing (the simulation
    /// phase itself is common to all strategies and excluded).
    ///
    /// Fallback work is analysis by another name — off-line recomputation of
    /// a failed in-situ step — so it counts here too; leaving it out made a
    /// degraded run look *cheaper* than a clean one.
    pub fn analysis_core_hours(&self) -> f64 {
        let sim_part = self.simulation.phase_core_hours(
            self.simulation.phases.analysis
                + self.simulation.phases.write
                + self.simulation.phases.fallback,
        );
        let post: f64 = self.post.iter().map(|j| j.total_core_hours()).sum();
        sim_part + post
    }

    /// Core-hours the artifact cache saved (`saved_node_seconds` converted
    /// at the simulation job's charge factor).
    pub fn saved_core_hours(&self) -> f64 {
        self.saved_node_seconds / 3600.0 * self.simulation.charge_factor
    }

    /// Total core-hours including the simulation itself.
    pub fn total_core_hours(&self) -> f64 {
        self.simulation.total_core_hours()
            + self.post.iter().map(|j| j.total_core_hours()).sum::<f64>()
    }

    /// End-to-end wall time assuming post jobs run after the simulation
    /// (sequential bound; co-scheduling shortens this).
    pub fn sequential_wall_seconds(&self) -> f64 {
        self.simulation.phases.queuing
            + self.simulation.phases.total()
            + self
                .post
                .iter()
                .map(|j| j.phases.queuing + j.phases.total())
                .sum::<f64>()
    }
}

/// Render a Table 4-style breakdown.
pub fn format_table4(costs: &[WorkflowCost]) -> String {
    let mut out = String::new();
    use std::fmt::Write;
    for wc in costs {
        writeln!(out, "=== {} ===", wc.strategy).unwrap();
        writeln!(
            out,
            "{:<18} {:>9} {:>9} {:>9} {:>12} {:>9} {:>9} {:>9} {:>9} | {:>10}",
            "job",
            "queuing",
            "sim",
            "read",
            "redistribute",
            "analysis",
            "write",
            "fallback",
            "total",
            "core-hrs"
        )
        .unwrap();
        for job in std::iter::once(&wc.simulation).chain(wc.post.iter()) {
            let p = &job.phases;
            writeln!(
                out,
                "{:<18} {:>9.1} {:>9.1} {:>9.1} {:>12.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} | {:>10.1}",
                format!("{} ({}x{})", job.label, job.nodes, job.machine),
                p.queuing,
                p.sim,
                p.read,
                p.redistribute,
                p.analysis,
                p.write,
                p.fallback,
                p.total(),
                job.total_core_hours()
            )
            .unwrap();
        }
        writeln!(
            out,
            "analysis core-hours (Table 3 convention): {:.1}",
            wc.analysis_core_hours()
        )
        .unwrap();
        if wc.saved_node_seconds > 0.0 {
            writeln!(
                out,
                "saved by artifact cache: {:.1} node-seconds ({:.2} core-hours)",
                wc.saved_node_seconds,
                wc.saved_core_hours()
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simhpc::machine::titan;

    fn phases(sim: f64, analysis: f64, write: f64) -> PhaseSeconds {
        PhaseSeconds {
            queuing: 0.0,
            sim,
            read: 0.0,
            redistribute: 0.0,
            analysis,
            write,
            fallback: 0.0,
        }
    }

    #[test]
    fn in_situ_table3_anchor() {
        // Paper: in-situ analysis = 722 s on 32 Titan nodes → 193 core-hours.
        let t = titan();
        let job = JobCost::new("simulation", &t, 32, phases(772.0, 722.0, 0.3));
        let wc = WorkflowCost {
            strategy: "in-situ".into(),
            simulation: job,
            post: vec![],
            saved_node_seconds: 0.0,
        };
        let ch = wc.analysis_core_hours();
        assert!((ch - 193.0).abs() < 2.0, "{ch}");
    }

    #[test]
    fn fallback_seconds_count_as_analysis_core_hours() {
        // Regression: a degraded run (in-situ step failed, off-line fallback
        // recomputed it) must cost *more* than the clean run, not the same.
        let t = titan();
        let clean = WorkflowCost {
            strategy: "in-situ".into(),
            simulation: JobCost::new("simulation", &t, 32, phases(772.0, 722.0, 0.3)),
            post: vec![],
            saved_node_seconds: 0.0,
        };
        let mut degraded = clean.clone();
        degraded.simulation.phases.fallback = 100.0;
        let extra = degraded.analysis_core_hours() - clean.analysis_core_hours();
        let expected = degraded.simulation.phase_core_hours(100.0);
        assert!(
            (extra - expected).abs() < 1e-9,
            "fallback must be charged: extra={extra} expected={expected}"
        );
        // And it shows up in the total column identically.
        assert!(degraded.total_core_hours() > clean.total_core_hours());
    }

    #[test]
    fn saved_core_hours_line_renders_only_when_nonzero() {
        let t = titan();
        let mut wc = WorkflowCost {
            strategy: "warm".into(),
            simulation: JobCost::new("simulation", &t, 32, phases(1.0, 2.0, 3.0)),
            post: vec![],
            saved_node_seconds: 0.0,
        };
        assert!(!format_table4(std::slice::from_ref(&wc)).contains("saved by artifact cache"));
        wc.saved_node_seconds = 7200.0;
        let s = format_table4(&[wc.clone()]);
        assert!(s.contains("saved by artifact cache"), "{s}");
        assert!((wc.saved_core_hours() - 2.0 * t.charge_factor).abs() < 1e-9);
    }

    #[test]
    fn offline_post_job_charges_for_all_phases() {
        let t = titan();
        let post = JobCost::new(
            "post-processing",
            &t,
            32,
            PhaseSeconds {
                queuing: 1e5,
                sim: 0.0,
                read: 5.0,
                redistribute: 435.0,
                analysis: 892.0,
                write: 0.3,
                fallback: 0.0,
            },
        );
        // Table 4: 1332 s on 32 nodes → 355 core-hours.
        assert!((post.phases.total() - 1332.3).abs() < 1.0);
        assert!((post.total_core_hours() - 355.0).abs() < 2.0);
        // Queue wait holds no nodes.
        let with_queue = WorkflowCost {
            strategy: "off-line".into(),
            simulation: JobCost::new("simulation", &t, 32, phases(779.0, 0.0, 5.0)),
            post: vec![post],
            saved_node_seconds: 0.0,
        };
        assert!(with_queue.sequential_wall_seconds() > 1e5);
        // Analysis convention: sim-side write (5 s) + post job.
        let ch = with_queue.analysis_core_hours();
        assert!((354.0..358.0).contains(&ch), "{ch}");
    }

    #[test]
    fn combined_beats_in_situ_by_about_30_percent() {
        // Table 4 combined: in-situ part 361 s analysis + 3 s write on 32
        // nodes; post 1153 s on 4 nodes.
        let t = titan();
        let wc = WorkflowCost {
            strategy: "combined".into(),
            simulation: JobCost::new("simulation", &t, 32, phases(774.0, 361.0, 3.0)),
            post: vec![JobCost::new(
                "post-processing",
                &t,
                4,
                PhaseSeconds {
                    queuing: 0.0,
                    sim: 0.0,
                    read: 3.0,
                    redistribute: 75.0,
                    analysis: 1075.0,
                    write: 0.2,
                    fallback: 0.0,
                },
            )],
            saved_node_seconds: 0.0,
        };
        let combined = wc.analysis_core_hours();
        assert!((combined - 135.0).abs() < 5.0, "{combined}");
        // ~30% below the 193 core-hour in-situ cost.
        assert!(combined < 193.0 * 0.75);
    }

    #[test]
    fn format_includes_all_jobs() {
        let t = titan();
        let wc = WorkflowCost {
            strategy: "x".into(),
            simulation: JobCost::new("simulation", &t, 32, phases(1.0, 2.0, 3.0)),
            post: vec![JobCost::new(
                "post-processing",
                &t,
                4,
                phases(0.0, 5.0, 0.0),
            )],
            saved_node_seconds: 12.5 * 3600.0,
        };
        let s = format_table4(&[wc]);
        assert!(s.contains("simulation (32xtitan)"));
        assert!(s.contains("post-processing (4xtitan)"));
        assert!(s.contains("analysis core-hours"));
    }
}
