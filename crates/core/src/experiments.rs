//! Experiment drivers: one function per table/figure of the paper's
//! evaluation. Each returns structured data plus a formatted text rendering;
//! the `bench` crate and the examples call these.

use crate::model::{expected_center_seconds, qcontinuum_projection, RunSpec, TitanFrame};
use halo::massfn::{qcontinuum, MassFunction};
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------- Table 1

/// One row of Table 1: data sizes per level for a run size.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Run label (e.g. "1024³").
    pub label: String,
    /// Level 1 bytes (raw particles).
    pub level1: u64,
    /// Level 2 bytes (halo particles above the split).
    pub level2: u64,
    /// Level 3 bytes (halo centers).
    pub level3: u64,
}

/// Generate Table 1 from the calibrated mass function.
pub fn table1() -> Vec<Table1Row> {
    let mf = MassFunction::q_continuum();
    let frame = TitanFrame::default();
    let mut rows = Vec::new();
    for (label, n_particles, n_halos) in [
        ("1024^3", 1u64 << 30, qcontinuum::TOTAL_HALOS / 512),
        ("8192^3", 8192u64.pow(3), qcontinuum::TOTAL_HALOS),
    ] {
        // Level 2 particles: expected mass in halos above the threshold.
        // E[Σ m · 1(m>T)] = n_halos · ∫ m dP; reuse the center integral with
        // c=1 over m¹ by sampling the tabulated distribution.
        let threshold = qcontinuum::SPLIT_THRESHOLD as f64;
        let l2_particles = expected_particles_above(&mf, n_halos, threshold);
        let _ = &frame;
        rows.push(Table1Row {
            label: label.to_string(),
            level1: cosmotools::level1_bytes(n_particles),
            level2: cosmotools::level2_bytes(l2_particles),
            level3: cosmotools::level3_center_bytes(n_halos),
        });
    }
    rows
}

/// Expected total member particles in halos above `threshold`.
pub fn expected_particles_above(mf: &MassFunction, n_halos: u64, threshold: f64) -> u64 {
    let steps = 2048;
    let lmin = threshold.max(1.0).ln();
    let lmax = (qcontinuum::LARGEST_HALO as f64 * 4.0).ln();
    let mut acc = 0.0;
    let mut prev = mf.fraction_above(lmin.exp());
    for i in 1..=steps {
        let m1 = (lmin + (lmax - lmin) * i as f64 / steps as f64).exp();
        let f1 = mf.fraction_above(m1);
        let dp = (prev - f1).max(0.0);
        let mid = (lmin + (lmax - lmin) * (i as f64 - 0.5) / steps as f64).exp();
        acc += dp * mid;
        prev = f1;
    }
    (acc * n_halos as f64) as u64
}

/// Render Table 1.
pub fn format_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "Table 1: data sizes per level (last step)\n\
         run        Level 1 (raw)   Level 2 (halo particles)   Level 3 (centers)\n",
    );
    let human = |b: u64| -> String {
        let b = b as f64;
        if b >= 1e12 {
            format!("{:.1} TB", b / 1e12)
        } else if b >= 1e9 {
            format!("{:.1} GB", b / 1e9)
        } else {
            format!("{:.1} MB", b / 1e6)
        }
    };
    for r in rows {
        writeln!(
            out,
            "{:<10} {:>13} {:>26} {:>19}",
            r.label,
            human(r.level1),
            human(r.level2),
            human(r.level3)
        )
        .unwrap();
    }
    out
}

// ---------------------------------------------------------------- Table 2

/// One row of Table 2: per-slice find/center extremes across nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Output slice number.
    pub slice: usize,
    /// Redshift.
    pub redshift: f64,
    /// Slowest node's FOF time (s).
    pub find_max: f64,
    /// Fastest node's FOF time (s).
    pub find_min: f64,
    /// Slowest node's center time (s).
    pub center_max: f64,
    /// Fastest node's center time (s).
    pub center_min: f64,
}

/// Paper's Table 2 values for comparison: (slice, z, find_max, find_min,
/// center_max, center_min).
pub const TABLE2_PAPER: [(usize, f64, f64, f64, f64, f64); 4] = [
    (60, 1.680, 433.0, 352.0, 449.0, 19.0),
    (64, 1.433, 483.0, 385.0, 668.0, 19.0),
    (73, 0.959, 663.0, 532.0, 1819.0, 19.0),
    (100, 0.0, 2143.0, 1859.0, 21250.0, 2.4),
];

/// Project Table 2 through the evolution model (see EXPERIMENTS.md):
/// the largest halo grows ∝ D(a)² (anchored at 25 M at z = 0), FOF time
/// grows with clustering ∝ D(a)^1.7 (anchored at z = 0), and center extremes
/// come from the O(n²) kernel over the evolving population.
pub fn table2(frame: &TitanFrame) -> Vec<Table2Row> {
    TABLE2_PAPER
        .iter()
        .map(|&(slice, z, _, _, _, _)| {
            let a = 1.0 / (1.0 + z);
            // Largest halo at this epoch.
            let n_max = (qcontinuum::LARGEST_HALO as f64 * a * a) as u64;
            let center_max = frame.center_seconds(n_max);
            // FOF: anchored per-particle cost at z = 0, clustering growth.
            let find_z0 = frame.find_seconds(8192u64.pow(3), qcontinuum::TITAN_NODES as usize)
                * (1859.0 / 342.0 / 5.0); // clustering excess of the 8192³ run
            let find_min = find_z0 * 5.0 * a.powf(1.7);
            let find_max = find_min * 1.2;
            // Fastest node's center work: the small-halo load of an
            // underdense node; clustering concentrates halos, widening the
            // node-to-node spread as a → 1.
            let mf = evolved_mass_function(a);
            let n_halos = (qcontinuum::TOTAL_HALOS as f64 * a.powf(0.5)) as u64;
            let small_mean = expected_center_seconds(
                frame,
                &mf,
                n_halos,
                mf.m_min,
                qcontinuum::SPLIT_THRESHOLD as f64,
            ) / qcontinuum::TITAN_NODES as f64;
            let center_min = small_mean * (1.0 - 0.95 * a).max(0.03);
            Table2Row {
                slice,
                redshift: z,
                find_max,
                find_min,
                center_max,
                center_min,
            }
        })
        .collect()
}

/// Mass function at scale factor `a`: the exponential cutoff tracks the
/// largest-halo growth (m_cut ∝ D², matching the Table 2 anchor points).
pub fn evolved_mass_function(a: f64) -> MassFunction {
    let base = MassFunction::q_continuum();
    MassFunction::new(
        base.alpha,
        base.m_cut * (a * a).max(1e-4),
        base.m_min,
        qcontinuum::LARGEST_HALO as f64 * 40.0,
    )
}

/// Render Table 2 with the paper's values alongside.
pub fn format_table2(rows: &[Table2Row]) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "Table 2: per-node analysis extremes (seconds) — model vs paper\n\
         slice     z   find_max  (paper)  find_min  (paper)  center_max  (paper)  center_min  (paper)\n",
    );
    for (r, p) in rows.iter().zip(TABLE2_PAPER.iter()) {
        writeln!(
            out,
            "{:>5} {:>5.3} {:>10.0} {:>8.0} {:>9.0} {:>8.0} {:>11.0} {:>8.0} {:>11.1} {:>8.1}",
            r.slice,
            r.redshift,
            r.find_max,
            p.2,
            r.find_min,
            p.3,
            r.center_max,
            p.4,
            r.center_min,
            p.5
        )
        .unwrap();
    }
    out
}

// ---------------------------------------------------------------- Figure 3

/// One mass bin of the Figure 3 histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Bin {
    /// Bin lower edge (particles).
    pub m_lo: f64,
    /// Bin upper edge (particles).
    pub m_hi: f64,
    /// Expected halo count in the bin (full population).
    pub count: f64,
    /// True when the bin is above the off-load threshold (blue in the paper).
    pub offloaded: bool,
}

/// Figure 3: halo counts vs mass with the 300,000-particle split.
pub fn fig3(nbins: usize) -> Vec<Fig3Bin> {
    let mf = MassFunction::q_continuum();
    let n_total = qcontinuum::TOTAL_HALOS;
    let m_min = mf.m_min;
    let m_max = qcontinuum::LARGEST_HALO as f64 * 2.0;
    let (lmin, lmax) = (m_min.ln(), m_max.ln());
    (0..nbins)
        .map(|b| {
            let m_lo = (lmin + (lmax - lmin) * b as f64 / nbins as f64).exp();
            let m_hi = (lmin + (lmax - lmin) * (b + 1) as f64 / nbins as f64).exp();
            let count =
                (mf.fraction_above(m_lo) - mf.fraction_above(m_hi)).max(0.0) * n_total as f64;
            Fig3Bin {
                m_lo,
                m_hi,
                count,
                offloaded: m_lo >= qcontinuum::SPLIT_THRESHOLD as f64,
            }
        })
        .collect()
}

/// Render Figure 3 as an ASCII log-log histogram.
pub fn format_fig3(bins: &[Fig3Bin]) -> String {
    use std::fmt::Write;
    let mut out =
        String::from("Figure 3: halo counts vs mass (log-log); '#' in-situ, 'O' off-loaded\n");
    let max_log = bins
        .iter()
        .map(|b| b.count.max(1.0).log10())
        .fold(0.0, f64::max);
    for b in bins {
        if b.count < 0.5 {
            continue;
        }
        let bar_len = (b.count.max(1.0).log10() / max_log * 60.0) as usize;
        let ch = if b.offloaded { 'O' } else { '#' };
        writeln!(
            out,
            "{:>12.0} {:>14.0} |{}",
            b.m_lo,
            b.count,
            ch.to_string().repeat(bar_len.max(1))
        )
        .unwrap();
    }
    let total: f64 = bins.iter().map(|b| b.count).sum();
    let offloaded: f64 = bins.iter().filter(|b| b.offloaded).map(|b| b.count).sum();
    writeln!(
        out,
        "total halos {:.0} (paper 167,686,789); off-loaded {:.0} (paper 84,719); in-situ share {:.3}%",
        total,
        offloaded,
        (1.0 - offloaded / total) * 100.0
    )
    .unwrap();
    out
}

// ---------------------------------------------------------------- Figure 4

/// Figure 4: histogram of projected per-node center-finding times for the
/// off-loaded halos on 16,384 Titan nodes (1000-second bins, log counts).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// Count of nodes per 1000 s bin (bin i covers `[1000·i, 1000·(i+1))`).
    pub node_counts: Vec<u64>,
    /// Number of off-loaded halos realized.
    pub n_offloaded: usize,
    /// Longest single-node projected time (s).
    pub max_node_seconds: f64,
}

/// Realize the off-loaded population and distribute it over the nodes.
pub fn fig4(frame: &TitanFrame, seed: u64) -> Fig4 {
    let mf = MassFunction::q_continuum();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n_off = qcontinuum::OFFLOADED_HALOS as usize;
    let tail = mf.sample_many_above(&mut rng, n_off, qcontinuum::SPLIT_THRESHOLD as f64);
    let nodes = qcontinuum::TITAN_NODES as usize;
    let per_node = frame.per_node_center_seconds(&tail, nodes, |_| true);
    let max_node_seconds = per_node.iter().cloned().fold(0.0, f64::max);
    let nbins = (max_node_seconds / 1000.0) as usize + 1;
    let mut node_counts = vec![0u64; nbins];
    for s in &per_node {
        node_counts[(s / 1000.0) as usize] += 1;
    }
    Fig4 {
        node_counts,
        n_offloaded: n_off,
        max_node_seconds,
    }
}

/// Render Figure 4 as an ASCII histogram with log-scaled bars.
pub fn format_fig4(f: &Fig4) -> String {
    use std::fmt::Write;
    let mut out = format!(
        "Figure 4: projected per-node center times for {} off-loaded halos on 16,384 nodes\n\
         bin (s)          nodes  (log bar)\n",
        f.n_offloaded
    );
    for (i, &c) in f.node_counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let bar = "#".repeat(((c as f64).log10() * 12.0) as usize + 1);
        writeln!(
            out,
            "{:>6}-{:<6} {:>8}  {}",
            i * 1000,
            (i + 1) * 1000,
            c,
            bar
        )
        .unwrap();
    }
    writeln!(
        out,
        "longest node: {:.0} s (paper's slowest block: 10.6 h on Moonlight ≈ {:.0} s Titan)",
        f.max_node_seconds,
        10.6 * 3600.0 * 0.55
    )
    .unwrap();
    out
}

// ------------------------------------------------------- Tables 3 & 4, §4.1

/// Tables 3/4: the projected workflow costs for the small run — all five
/// Table 3 rows (in-situ, off-line, combined simple/co-scheduled/in-transit).
pub fn table3_4(frame: &TitanFrame, seed: u64) -> Vec<crate::cost::WorkflowCost> {
    let spec = RunSpec::small_run(seed);
    frame.workflow_costs_all(&spec)
}

/// Render Table 3's summary line per workflow.
pub fn format_table3(costs: &[crate::cost::WorkflowCost]) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "Table 3: workflow comparison (analysis core-hours; paper: in-situ 193, off-line 356, combined 135)\n",
    );
    for wc in costs {
        writeln!(
            out,
            "{:<40} {:>10.1} core-hours",
            wc.strategy,
            wc.analysis_core_hours()
        )
        .unwrap();
    }
    out
}

/// §4.1 Q Continuum headline numbers.
pub fn qcontinuum_report(frame: &TitanFrame) -> String {
    let q = qcontinuum_projection(frame);
    format!(
        "Q Continuum analysis projection (paper §4.1)\n\
         halo identification:            {:.1} h on 16,384 nodes (paper ~1 h)\n\
         in-situ small-halo centers:     {:.0} s/node (paper: 'just over one minute')\n\
         largest-halo center time:       {:.1} h (paper: 5.9 h Titan-equivalent)\n\
         full in-situ analysis:          {:.2}M core-hours (paper 3.4M)\n\
         combined in-situ + off-load:    {:.2}M core-hours (paper 0.52M)\n\
         cost factor:                    {:.1}x (paper 6.5x)\n\
         off-loaded work on Moonlight:   {:.0} node-hours (paper 1770, incl. per-job overheads)\n",
        q.find_hours,
        q.small_center_seconds,
        q.largest_halo_hours,
        q.full_in_situ_core_hours / 1e6,
        q.combined_core_hours / 1e6,
        q.cost_factor,
        q.moonlight_node_hours
    )
}

// ------------------------------------------------- §4.1 Moonlight campaign

/// The off-load campaign as the paper actually ran it: Level 2 data
/// aggregated into 128 files, each analyzed by an independent single-node
/// Moonlight job.
#[derive(Debug, Clone, PartialEq)]
pub struct MoonlightCampaign {
    /// Number of file-level jobs (paper: 128).
    pub n_jobs: usize,
    /// Longest job in hours (paper: 37.8).
    pub longest_hours: f64,
    /// Shortest job in hours (paper: 6.0).
    pub shortest_hours: f64,
    /// Longest single halo ("block") in hours (paper: 10.6).
    pub longest_block_hours: f64,
    /// Total Moonlight node-hours (paper: ~1770).
    pub node_hours: f64,
}

/// Simulate the Moonlight campaign: sample the off-loaded population, spread
/// halos over 16,384 producing nodes, aggregate 128 nodes per file, and run
/// one single-node job per file through the batch simulator.
///
/// `per_job_overhead_hours` models the file-level fixed costs the paper's
/// jobs carried (staging a ~30 GB file to one node, unpacking, small-halo
/// passes): the shortest observed job was 6.0 h even for light files.
pub fn moonlight_campaign(
    frame: &TitanFrame,
    seed: u64,
    per_job_overhead_hours: f64,
) -> MoonlightCampaign {
    let mf = MassFunction::q_continuum();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let tail = mf.sample_many_above(
        &mut rng,
        qcontinuum::OFFLOADED_HALOS as usize,
        qcontinuum::SPLIT_THRESHOLD as f64,
    );
    // Producing node of each halo, then 128 nodes aggregate per file:
    // node / 128 = file index. Nodes hold spatial sub-volumes, and massive
    // halos trace large-scale structure, so the per-node off-loaded halo
    // density is far from uniform — model it as a lognormal field (the
    // standard approximation for cosmic density fluctuations). This is what
    // spreads the 128 jobs from near-pure-overhead (the paper's 6.0 h
    // shortest) to the 37.8 h longest; a uniform hash would give every file
    // an almost identical load.
    let n_files = 128usize;
    let nodes = qcontinuum::TITAN_NODES as usize;
    let sigma = 1.7; // per-node lognormal width; file-level spread ~ paper's
    let mut node_cdf = Vec::with_capacity(nodes);
    let mut acc = 0.0f64;
    for _ in 0..nodes {
        // Box-Muller standard normal.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        acc += (sigma * z).exp();
        node_cdf.push(acc);
    }
    let mut per_file_seconds = vec![per_job_overhead_hours * 3600.0; n_files];
    let mut longest_block: f64 = 0.0;
    let moonlight_slowdown = 1.0 / frame.moonlight.node_speed;
    for &n in tail.iter() {
        let u: f64 = rng.gen_range(0.0..acc);
        let node = node_cdf.partition_point(|&c| c < u).min(nodes - 1);
        let file = node / (nodes / n_files);
        let t = frame.center_seconds(n) * moonlight_slowdown;
        per_file_seconds[file] += t;
        longest_block = longest_block.max(t);
    }
    // One single-node job per file through the analysis cluster's queue.
    let mut sim =
        simhpc::BatchSimulator::new(frame.moonlight.clone(), simhpc::QueuePolicy::ideal());
    for (i, &secs) in per_file_seconds.iter().enumerate() {
        sim.submit(simhpc::JobRequest::new(format!("file{i:04}"), 1, secs, 0.0));
    }
    let recs = sim.run_to_completion();
    let node_hours: f64 = recs.iter().map(|r| r.runtime() / 3600.0).sum();
    MoonlightCampaign {
        n_jobs: n_files,
        longest_hours: per_file_seconds.iter().cloned().fold(0.0, f64::max) / 3600.0,
        shortest_hours: per_file_seconds
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            / 3600.0,
        longest_block_hours: longest_block / 3600.0,
        node_hours,
    }
}

// ------------------------------------------------------- §4.2 subhalos

/// Projected in-situ subhalo imbalance (paper §4.2: 8172 s slowest vs 1457 s
/// fastest on 32 nodes, >5×). Subhalo cost is modeled ∝ n^1.5 (tree-based,
/// CPU-only), calibrated so the slowest node lands near the paper's value.
pub fn subhalo_imbalance(seed: u64) -> (f64, f64) {
    let spec = RunSpec::small_run(seed);
    // CPU algorithm cost model: c·n^1.5 for parents above 5000 particles,
    // calibrated so the paper's largest halo (2,548,321 particles) costs
    // ~8172 s: c = 8172 / 2.55e6^1.5 ≈ 2.0e-6.
    let c_sub = 2.0e-6;
    let mut per_node = vec![0.0f64; spec.sim_nodes];
    for (i, &n) in spec.halo_sizes.iter().enumerate() {
        if n < 5000 {
            continue;
        }
        let h = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(27)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        per_node[(h % spec.sim_nodes as u64) as usize] += c_sub * (n as f64).powf(1.5);
    }
    let max = per_node.iter().cloned().fold(0.0, f64::max);
    let min = per_node.iter().cloned().fold(f64::INFINITY, f64::min);
    (max, min)
}

// ---------------------------------------------------------- robustness

/// Fault/robustness accounting surfaced by the full report: a chaos run of
/// the batch scheduler (the paper's file-level job campaign under transient
/// node failures) plus a faulted co-scheduled workflow on the real testbed.
#[derive(Debug, Clone)]
pub struct RobustnessSummary {
    /// Jobs pushed through the faulted batch queue.
    pub jobs_submitted: usize,
    /// Jobs that eventually completed, retries included.
    pub jobs_completed: usize,
    /// Jobs dropped after exhausting every allowed attempt.
    pub jobs_exhausted: usize,
    /// Attempts consumed across all jobs (equals `jobs_submitted` on a
    /// fault-free run).
    pub total_attempts: u64,
    /// Node-seconds of held-but-unproductive machine time burnt by failed
    /// attempts, summed over every [`simhpc::JobOutcome`].
    pub wasted_node_seconds: f64,
    /// Co-scheduled analysis steps that fell back to re-shipping the last
    /// good Level-2 output.
    pub degraded_steps: usize,
    /// Transient in-situ failures absorbed by the retry policy.
    pub insitu_retries: u64,
}

/// Run both robustness experiments; deterministic in `seed`.
///
/// The batch half replays the Moonlight campaign's job shape against a
/// 30 %-transient-failure queue; the workflow half re-runs the co-scheduled
/// strategy on a tiny testbed with an in-situ fault plan aggressive enough
/// to exhaust one step's retries (graceful degradation) and be absorbed on
/// the next.
pub fn robustness_report(frame: &TitanFrame, seed: u64) -> RobustnessSummary {
    // (a) File-level jobs through a faulted batch queue.
    let mut sim =
        simhpc::BatchSimulator::new(frame.moonlight.clone(), simhpc::QueuePolicy::ideal());
    sim.inject_faults(
        faults::FaultPlan::new(seed)
            .with_site(faults::SiteSpec::transient(
                simhpc::SCHEDULER_FAULT_SITE,
                0.3,
            ))
            .build(),
        faults::BackoffPolicy::default(),
    );
    let n_jobs = 40usize;
    for i in 0..n_jobs {
        let secs = 3600.0 * (1.0 + (i % 7) as f64);
        sim.submit(simhpc::JobRequest::new(
            format!("file{i:02}"),
            1,
            secs,
            i as f64 * 60.0,
        ));
    }
    let _ = sim.run_to_completion();
    let outcomes = sim.job_outcomes();
    let jobs_completed = outcomes
        .iter()
        .filter(|o| o.state == simhpc::JobState::Completed)
        .count();
    let jobs_exhausted = outcomes
        .iter()
        .filter(|o| o.state == simhpc::JobState::Exhausted)
        .count();
    let total_attempts: u64 = outcomes.iter().map(|o| u64::from(o.attempts)).sum();
    let wasted_node_seconds: f64 = outcomes.iter().map(|o| o.wasted_seconds).sum();

    // (b) The co-scheduled workflow under in-situ faults: seven consecutive
    // transients exhaust the first analysis step's five attempts (one
    // degraded step) and are absorbed by retries on the next.
    let mut cfg = crate::runner::RunnerConfig {
        sim: nbody::SimConfig {
            np: 16,
            ng: 16,
            nsteps: 30,
            seed: 4242,
            ..nbody::SimConfig::default()
        },
        nranks: 4,
        post_ranks: 2,
        linking_length: 0.28,
        threshold: 60,
        min_size: 12,
        workdir: std::env::temp_dir()
            .join(format!("hacc_robustness_{seed}_{}", std::process::id())),
        ..Default::default()
    };
    cfg.injector = Some(
        faults::FaultPlan::new(seed)
            .with_site(
                faults::SiteSpec::transient(crate::runner::RUNNER_FAULT_SITE, 1.0)
                    .with_max_faults(7),
            )
            .build(),
    );
    let backend = dpp::Threaded::new(2);
    let bed = crate::runner::TestBed::create(cfg, &backend);
    let run = bed.run_combined_coscheduled(&backend, 4);

    RobustnessSummary {
        jobs_submitted: n_jobs,
        jobs_completed,
        jobs_exhausted,
        total_attempts,
        wasted_node_seconds,
        degraded_steps: run.degraded_steps,
        insitu_retries: run.insitu_retries,
    }
}

/// Text rendering of the robustness summary.
pub fn format_robustness(r: &RobustnessSummary) -> String {
    let mut s = String::new();
    s.push_str("batch queue under 30% transient job faults:\n");
    s.push_str(&format!(
        "  jobs submitted        {:>8}\n",
        r.jobs_submitted
    ));
    s.push_str(&format!(
        "  jobs completed        {:>8}\n",
        r.jobs_completed
    ));
    s.push_str(&format!(
        "  jobs exhausted        {:>8}\n",
        r.jobs_exhausted
    ));
    s.push_str(&format!(
        "  attempts consumed     {:>8}\n",
        r.total_attempts
    ));
    s.push_str(&format!(
        "  wasted node-seconds   {:>8.0}\n",
        r.wasted_node_seconds
    ));
    s.push_str("co-scheduled workflow under in-situ faults:\n");
    s.push_str(&format!(
        "  degraded steps        {:>8}\n",
        r.degraded_steps
    ));
    s.push_str(&format!(
        "  in-situ retries       {:>8}\n",
        r.insitu_retries
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_orders() {
        let rows = table1();
        assert_eq!(rows.len(), 2);
        // 1024³: ~40 GB Level 1, a few GB Level 2, tens of MB Level 3.
        let small = &rows[0];
        assert!(
            (35e9..45e9).contains(&(small.level1 as f64)),
            "{}",
            small.level1
        );
        assert!(
            (0.5e9..15e9).contains(&(small.level2 as f64)),
            "{}",
            small.level2
        );
        assert!(
            (5e6..50e6).contains(&(small.level3 as f64)),
            "{}",
            small.level3
        );
        // 8192³: ~20 TB Level 1, ~4 TB Level 2, ~10 GB Level 3.
        let big = &rows[1];
        assert!((18e12..22e12).contains(&(big.level1 as f64)));
        assert!(
            (0.5e12..8e12).contains(&(big.level2 as f64)),
            "{}",
            big.level2
        );
        assert!((4e9..16e9).contains(&(big.level3 as f64)));
        let s = format_table1(&rows);
        assert!(s.contains("1024^3") && s.contains("8192^3"));
    }

    #[test]
    fn table2_reproduces_the_imbalance_pattern() {
        let frame = TitanFrame::default();
        let rows = table2(&frame);
        assert_eq!(rows.len(), 4);
        for (r, p) in rows.iter().zip(TABLE2_PAPER.iter()) {
            // Find stays balanced (≤30%), center is wildly imbalanced.
            assert!(r.find_max / r.find_min < 1.3);
            assert!(
                r.center_max / r.center_min.max(0.1) > 5.0,
                "slice {}: center must be imbalanced",
                r.slice
            );
            // Model within a factor ~2.5 of the paper's center_max.
            let ratio = r.center_max / p.4;
            assert!(
                (0.4..2.5).contains(&ratio),
                "slice {}: center_max {} vs paper {}",
                r.slice,
                r.center_max,
                p.4
            );
            // Find within a factor 2 of the paper.
            let fr = r.find_min / p.3;
            assert!(
                (0.5..2.0).contains(&fr),
                "slice {}: find {} vs {}",
                r.slice,
                r.find_min,
                p.3
            );
        }
        // Imbalance grows toward z = 0.
        let early = rows[0].center_max / rows[0].center_min.max(0.1);
        let late = rows[3].center_max / rows[3].center_min.max(0.1);
        assert!(late > early, "imbalance must grow with structure formation");
        let s = format_table2(&rows);
        assert!(s.contains("slice"));
    }

    #[test]
    fn fig3_split_matches_paper_census() {
        let bins = fig3(40);
        let total: f64 = bins.iter().map(|b| b.count).sum();
        let off: f64 = bins.iter().filter(|b| b.offloaded).map(|b| b.count).sum();
        assert!(
            (total / qcontinuum::TOTAL_HALOS as f64 - 1.0).abs() < 0.02,
            "total {total}"
        );
        assert!(
            (0.3..3.0).contains(&(off / qcontinuum::OFFLOADED_HALOS as f64)),
            "off-loaded {off} (paper 84,719)"
        );
        // Counts decrease with mass (steep mass function).
        let first_nonzero = bins.iter().find(|b| b.count > 0.0).unwrap();
        let last_nonzero = bins.iter().rev().find(|b| b.count > 0.5).unwrap();
        assert!(first_nonzero.count / last_nonzero.count > 1e4);
        let s = format_fig3(&bins);
        assert!(s.contains("off-loaded"));
    }

    #[test]
    fn fig4_histogram_shape() {
        let frame = TitanFrame::default();
        let f = fig4(&frame, 3);
        assert_eq!(f.n_offloaded, 84_719);
        // Most nodes are in the low bins; a long tail exists.
        assert!(f.node_counts[0] + f.node_counts.get(1).copied().unwrap_or(0) > 10_000);
        assert!(
            f.max_node_seconds > 10_000.0,
            "the slowest node must be hours-scale: {}",
            f.max_node_seconds
        );
        // Total nodes accounted (only nodes holding work appear in per_node
        // histogram — all 16,384 appear since vec covers all).
        let total: u64 = f.node_counts.iter().sum();
        assert_eq!(total, 16_384);
        let s = format_fig4(&f);
        assert!(s.contains("16,384"));
    }

    #[test]
    fn robustness_summary_accounts_for_faults() {
        let frame = TitanFrame::default();
        let r = robustness_report(&frame, 7);
        // Every job terminates one way or the other.
        assert_eq!(r.jobs_completed + r.jobs_exhausted, r.jobs_submitted);
        // A 30% transient rate forces retries, which burn node time.
        assert!(r.total_attempts > r.jobs_submitted as u64);
        assert!(r.wasted_node_seconds > 0.0);
        // The in-situ fault plan exhausts exactly one step's retries.
        assert_eq!(r.degraded_steps, 1);
        assert_eq!(r.insitu_retries, 7);
        // Deterministic in the seed.
        let again = robustness_report(&frame, 7);
        assert_eq!(again.total_attempts, r.total_attempts);
        assert_eq!(again.wasted_node_seconds, r.wasted_node_seconds);
    }

    #[test]
    fn moonlight_campaign_matches_paper_shape() {
        let frame = TitanFrame::default();
        // Shortest observed job (6.0 h) was essentially pure per-file
        // overhead; use it as the overhead anchor.
        let c = moonlight_campaign(&frame, 20150715, 6.0);
        assert_eq!(c.n_jobs, 128);
        // Longest block: the ~25M halo took 10.6 h on Moonlight.
        assert!(
            (6.0..16.0).contains(&c.longest_block_hours),
            "longest block {:.1} h (paper 10.6)",
            c.longest_block_hours
        );
        // Longest job 37.8 h in the paper; shortest 6.0 h.
        assert!(
            c.longest_hours > 2.0 * c.shortest_hours,
            "jobs must be strongly imbalanced: {:.1} vs {:.1}",
            c.longest_hours,
            c.shortest_hours
        );
        assert!(c.shortest_hours >= 6.0);
        // Node-hours within ~2.5x of the paper's 1770 (our kernel-only tail
        // integral overshoots the paper's census slightly; EXPERIMENTS.md).
        assert!(
            (700.0..4500.0).contains(&c.node_hours),
            "{} node-hours (paper 1770)",
            c.node_hours
        );
    }

    #[test]
    fn subhalo_imbalance_exceeds_factor_three() {
        let (max, min) = subhalo_imbalance(11);
        assert!(max / min > 3.0, "paper reports >5x: got {max}/{min}");
        // Order of magnitude near the paper's 8172 s / 1457 s slowest node.
        assert!((1500.0..50_000.0).contains(&max), "{max}");
    }

    #[test]
    fn reports_render() {
        let frame = TitanFrame::default();
        let s = qcontinuum_report(&frame);
        assert!(s.contains("cost factor"));
        let costs = table3_4(&frame, 5);
        let s3 = format_table3(&costs);
        assert!(s3.contains("in-situ"));
        assert!(s3.contains("combined"));
    }
}
