//! The long-lived workflow **service**: many concurrent campaigns over one
//! shared `dpp` pool and one `simhpc` batch scheduler.
//!
//! The single-campaign pieces ([`crate::runner`] + [`crate::listener`]) run
//! one simulation, one drop directory, one listener thread, then exit. A
//! facility-resident deployment looks different: one long-lived process
//! multiplexes *many* campaigns — each with its own drop directory, cache
//! namespace, and telemetry dimension — over shared infrastructure. This
//! module provides that service:
//!
//! * **Campaign registry** — [`WorkflowService::submit_campaign`] admits a
//!   [`CampaignSpec`] and returns a [`CampaignId`]; per-campaign state
//!   (scan cursor, executions, catalog, scoped pool counters) lives in a
//!   `CampaignId`-keyed registry. [`WorkflowService::detach`] tears one
//!   campaign down without disturbing its neighbors.
//! * **Sharded listener** — the watch namespace is partitioned into N
//!   shards, each with its own crash-recovery [`Journal`] and its own
//!   scanning thread. Scan work is queued as due-tasks; a shard worker
//!   prefers its own shard's tasks but **steals** overdue work from other
//!   shards, so one slow campaign cannot starve the rest. Each sweep reuses
//!   the single-directory listener's gated scan
//!   ([`crate::listener`]: quiescence, cache gate, retry, journal append,
//!   cursor eviction, size-triggered compaction) — the sharding changes
//!   who scans, not how.
//! * **Admission control** — every admitted campaign enqueues one batch
//!   job and holds one admission slot until it completes or is detached;
//!   when the slots (or the active-campaign bound) fill,
//!   [`ServiceError::Saturated`] is returned as explicit backpressure
//!   instead of panicking or silently dropping the campaign. Slot
//!   occupancy is tracked by the service itself — not derived from the
//!   simulator's job list, whose clock only advances when the cost model
//!   is drained at shutdown — so completing or detaching one campaign
//!   frees exactly its own slot and the bound keeps biting for the rest
//!   of the service's life. A detached campaign's job is withdrawn from
//!   the simulator ([`simhpc::BatchSimulator::cancel`]); a completed
//!   campaign's job stays queued and is drained into
//!   [`ServiceReport::job_records`] at shutdown.
//! * **Namespace isolation** — every campaign's cache keys are scoped by a
//!   fingerprint of its spec ([`Fingerprint::scoped`]), so two campaigns
//!   can never alias each other's artifacts, while a re-submitted (or solo)
//!   run of the *same* spec shares them. Telemetry emitted while working on
//!   a campaign is stamped with its id ([`telemetry::with_dim`]), and fault
//!   sites are per-campaign ([`faults::campaign_site`]).
//! * **Crash model** — an injected `Crash` at any `service.c<id>.*` or
//!   `listener.*` site kills the whole service incarnation (the process
//!   dies, not one thread): the `died` flag stops every worker and emitter,
//!   [`WorkflowService::crashed`] reports it, and a *new* service over the
//!   same root recovers from the shard journals and the artifact cache —
//!   exactly-once analysis per campaign holds across restarts.

use crate::journal::Journal;
use crate::listener::{
    journal_append, submit_one, sweep_dir, CacheGate, ListenerConfig, ListenerReport, ScanState,
    SubmitError,
};
use crate::stream::{ChunkRef, StreamHub};
use cache::{
    CacheKey, Digest, DistributedConfig, DistributedStore, Fingerprint, FingerprintBuilder,
    RemoteFetchModel,
};
use cosmotools::{
    assemble_chunks, chunk_container, encode_centers, write_container, CenterRecord, Container,
    SnapshotMeta,
};
use dpp::{Backend, PoolStats, Threaded};
use faults::{FaultInjector, FaultKind};
use halo::mbp_brute;
use nbody::Particle;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simhpc::{titan, BatchSimulator, JobId, JobRecord, JobRequest, MachineSpec, QueuePolicy};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Gravitational softening used by the campaign analysis jobs (part of the
/// product cache fingerprint).
const SOFTENING: f64 = 0.05;

/// Handle to one admitted campaign. Ids are assigned in submission order
/// starting at 1 and are never reused within a service instance, so a fresh
/// service over the same root assigns the same ids to the same submission
/// sequence — which keeps per-campaign fault sites stable across restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CampaignId(pub u64);

impl std::fmt::Display for CampaignId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Everything that defines one campaign: its workload and its batch-job
/// shape. The spec — not the numeric id — derives the campaign's cache
/// namespace, so a re-submitted campaign (same name/seed/steps) reuses its
/// own surviving artifacts while two different campaigns never collide.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Unique campaign name; doubles as the drop-directory name under the
    /// service root, so it must be stable across restarts.
    pub name: String,
    /// Seed for the campaign's deterministic Level-2 drops.
    pub seed: u64,
    /// Number of Level-2 drops the campaign emits (and must analyze).
    pub steps: usize,
    /// Node count of the campaign's batch allocation.
    pub nodes: usize,
    /// Requested runtime (seconds) of the campaign's batch allocation.
    pub job_runtime: f64,
    /// Streaming in-transit mode: the emitter publishes halo-particle
    /// chunks into the distributed store as they are produced (announced on
    /// the service's [`StreamHub`]) instead of staging whole `l2_*.hcio`
    /// files, and the analysis side ingests chunk sets instead of scanning
    /// the drop directory. Deliberately **not** part of
    /// [`CampaignSpec::namespace`]: the chunk protocol is byte-lossless, so
    /// a streamed and a whole-file run of the same spec produce identical
    /// drop bytes, share their analysis artifacts, and assemble
    /// byte-identical catalogs.
    pub stream: bool,
}

impl CampaignSpec {
    /// A spec with default batch shape (4 nodes, 600 s), whole-file mode.
    pub fn new(name: impl Into<String>, seed: u64, steps: usize) -> CampaignSpec {
        CampaignSpec {
            name: name.into(),
            seed,
            steps,
            nodes: 4,
            job_runtime: 600.0,
            stream: false,
        }
    }

    /// Like [`CampaignSpec::new`], but in streaming in-transit mode.
    pub fn streamed(name: impl Into<String>, seed: u64, steps: usize) -> CampaignSpec {
        CampaignSpec {
            stream: true,
            ..CampaignSpec::new(name, seed, steps)
        }
    }

    /// The campaign's cache namespace: a fingerprint of the identity fields.
    pub fn namespace(&self) -> Fingerprint {
        let mut fp = FingerprintBuilder::new();
        fp.push_str("campaign")
            .push_str(&self.name)
            .push_u64(self.seed)
            .push_u64(self.steps as u64);
        fp.finish()
    }

    /// Fingerprint of the analysis parameters, scoped into this campaign's
    /// namespace. The unscoped half matches what a solo run of the same
    /// analysis would use; the scoping partitions the key space per spec.
    pub fn product_fingerprint(&self) -> Fingerprint {
        let mut fp = FingerprintBuilder::new();
        fp.push_str("mbp-centers").push_f64(SOFTENING);
        fp.finish().scoped(self.namespace())
    }

    /// Cache key of the analysis product for an input with this digest.
    pub fn product_key(&self, input: Digest) -> CacheKey {
        CacheKey::compose("centers", input, self.product_fingerprint())
    }

    /// Store key of one streamed Level-2 chunk. Content-addressed by the
    /// chunk bytes and scoped by `(step, index)` within the campaign
    /// namespace, so a restarted emitter re-inserting the same chunk dedups
    /// instead of duplicating.
    pub fn chunk_key(&self, step: u64, index: u32, chunk: &[u8]) -> CacheKey {
        let mut fp = FingerprintBuilder::new();
        fp.push_str("l2-chunk")
            .push_u64(step)
            .push_u64(index as u64);
        CacheKey::compose(
            "l2chunk",
            cache::digest_bytes(chunk),
            fp.finish().scoped(self.namespace()),
        )
    }
}

/// Why the service refused a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Admission control rejected the campaign: the batch queue (or the
    /// active-campaign bound) is full. Back off and resubmit — nothing was
    /// registered, nothing was dropped.
    Saturated {
        /// Work currently occupying the contended resource.
        pending: usize,
        /// The configured bound it ran into.
        limit: usize,
    },
    /// A campaign with this name is already registered; names double as
    /// drop-directory names and must be unique per service root.
    DuplicateName(String),
    /// No campaign with this id is registered (never admitted, or detached).
    UnknownCampaign(CampaignId),
    /// The service is stopping or its incarnation died to an injected
    /// crash; no new campaigns are admitted.
    ShuttingDown,
    /// Filesystem setup for the campaign failed.
    Io(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Saturated { pending, limit } => write!(
                f,
                "service saturated: {pending} pending against a limit of {limit}"
            ),
            ServiceError::DuplicateName(n) => write!(f, "campaign name `{n}` already registered"),
            ServiceError::UnknownCampaign(id) => write!(f, "unknown campaign {id}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Io(e) => write!(f, "campaign setup failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Where a campaign is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStatus {
    /// Emitting and/or analyzing drops.
    Running,
    /// Every drop analyzed; catalog assembled.
    Completed,
    /// Removed via [`WorkflowService::detach`] before completion.
    Detached,
    /// The service incarnation died before this campaign completed.
    Failed,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Root directory: per-campaign drop dirs, shard journals, and the
    /// shared artifact cache all live under it.
    pub root: PathBuf,
    /// Number of listener shards (scanning threads + journals). Clamped to
    /// at least 1.
    pub shards: usize,
    /// Worker threads of the shared `dpp` pool.
    pub pool_workers: usize,
    /// Bound on concurrently `Running` campaigns; admission beyond it
    /// returns [`ServiceError::Saturated`].
    pub max_active: usize,
    /// Bound on admission slots: each campaign holds one from submission
    /// until it completes or is detached (its batch job occupies the queue
    /// for exactly that window). Submissions beyond it return
    /// [`ServiceError::Saturated`].
    pub max_pending_jobs: usize,
    /// Scan cadence per campaign (and the emitters' inter-step pacing).
    pub poll_interval: Duration,
    /// Per-shard journal compaction threshold (see
    /// [`ListenerConfig::journal_compact_bytes`]).
    pub journal_compact_bytes: Option<u64>,
    /// Simulated nodes of the distributed artifact store under
    /// `<root>/cache`. Clamped to at least 1.
    pub store_nodes: usize,
    /// Replicas kept per artifact (clamped to `[1, store_nodes]`); with 2+
    /// the death of any single replica-holding node leaves every artifact
    /// reachable.
    pub store_replicas: usize,
    /// Fault injector consulted at the `service.*` / `listener.*` sites;
    /// `None` falls back to the globally installed injector.
    pub injector: Option<Arc<FaultInjector>>,
    /// Facility model backing the batch queue.
    pub machine: MachineSpec,
    /// Queue policy of the batch simulator.
    pub queue_policy: QueuePolicy,
}

impl ServiceConfig {
    /// Defaults: 2 shards, 4 pool workers, 64 active campaigns, 64 pending
    /// jobs, 4 ms polls, no compaction, a 2-node/2-replica store, Titan
    /// with an ideal queue.
    pub fn new(root: impl Into<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            root: root.into(),
            shards: 2,
            pool_workers: 4,
            max_active: 64,
            max_pending_jobs: 64,
            poll_interval: Duration::from_millis(4),
            journal_compact_bytes: None,
            store_nodes: 2,
            store_replicas: 2,
            injector: None,
            machine: titan(),
            queue_policy: QueuePolicy::ideal(),
        }
    }
}

/// What one campaign did, snapshotted at detach or shutdown.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign's id.
    pub id: CampaignId,
    /// The campaign's name.
    pub name: String,
    /// Lifecycle state at snapshot time ([`CampaignStatus::Failed`] when the
    /// incarnation died while the campaign was still running).
    pub status: CampaignStatus,
    /// Assembled catalog bytes; `Some` only once [`CampaignStatus::Completed`].
    pub catalog: Option<Vec<u8>>,
    /// Drop file name → completed analyses (exactly-once means every value
    /// is 1 *summed across incarnations*, not necessarily within one).
    pub executions: BTreeMap<String, u64>,
    /// Drops handled so far (journal-recovered included).
    pub handled: usize,
    /// The campaign's listener-side counters (submissions, retries,
    /// cache skips, compactions).
    pub listener: ListenerReport,
    /// Pool counters attributed to this campaign alone, via its scoped
    /// [`Threaded`] backend handle.
    pub pool: PoolStats,
    /// Catalog-assembly cache misses (0 = every product came from the
    /// artifacts the analysis jobs inserted).
    pub assembly_misses: u64,
}

/// What the whole service did, returned by [`WorkflowService::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The incarnation died to an injected crash.
    pub crashed: bool,
    /// One report per registered campaign, keyed by id.
    pub campaigns: BTreeMap<u64, CampaignReport>,
    /// Directory sweeps performed across all shards.
    pub scans: u64,
    /// Sweeps a shard worker stole from another shard's backlog.
    pub steals: u64,
    /// Batch-job records drained from the simulator.
    pub job_records: Vec<JobRecord>,
}

/// A unit of scan work: one campaign due for one sweep. `shard` is the
/// campaign's *owning* shard (which journal its appends go to); any worker
/// may execute the task.
struct ScanTask {
    campaign: u64,
    shard: usize,
    due: Instant,
}

/// Per-campaign state held in the registry.
struct CampaignState {
    id: u64,
    spec: CampaignSpec,
    /// Drop directory (`<root>/<name>/drop`).
    dir: PathBuf,
    /// Owning shard: its journal records this campaign's handled files.
    shard: usize,
    /// The campaign's batch job in the simulator; cancelled if the campaign
    /// is detached while still running.
    job: JobId,
    /// Listener configuration (per-campaign cache gate baked in).
    lcfg: ListenerConfig,
    scan: Mutex<ScanState>,
    lreport: Mutex<ListenerReport>,
    executions: Mutex<BTreeMap<String, u64>>,
    status: Mutex<CampaignStatus>,
    catalog: Mutex<Option<Vec<u8>>>,
    assembly_misses: AtomicU64,
    /// Scoped handle onto the shared pool: counters attribute to this
    /// campaign alone while work still runs on the shared workers.
    backend: Threaded,
    /// Set by detach/shutdown; the emitter thread checks it.
    cancel: AtomicBool,
    emitter: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Streaming mode: the campaign's read position in its hub topic.
    stream_cursor: Mutex<usize>,
    /// Streaming mode: announced-but-not-yet-ingested chunks, keyed
    /// `step → index → ref`. A step leaves this map only once handled.
    pending_chunks: Mutex<BTreeMap<u64, BTreeMap<u32, ChunkRef>>>,
}

impl CampaignState {
    /// Snapshot the campaign. Each lock is taken in its own statement so
    /// the guard drops before the next acquisition — built as struct-literal
    /// temporaries the guards would all live to the end of the expression,
    /// and holding `scan` while taking `lreport` inverts the order a shard
    /// worker mid-sweep uses, deadlocking a concurrent `report`/`detach`.
    fn report(&self, died: bool) -> CampaignReport {
        let status = match *self.status.lock() {
            CampaignStatus::Running if died => CampaignStatus::Failed,
            s => s,
        };
        let catalog = self.catalog.lock().clone();
        let executions = self.executions.lock().clone();
        let handled = self.scan.lock().handled_total();
        let listener = self.lreport.lock().clone();
        CampaignReport {
            id: CampaignId(self.id),
            name: self.spec.name.clone(),
            status,
            catalog,
            executions,
            handled,
            listener,
            pool: self.backend.pool_stats().unwrap_or_default(),
            assembly_misses: self.assembly_misses.load(Ordering::Relaxed),
        }
    }
}

/// Shared service state.
struct Inner {
    cfg: ServiceConfig,
    store: Arc<DistributedStore>,
    /// Pub/sub edge for streaming campaigns (topic = campaign id).
    hub: StreamHub,
    sim: Mutex<BatchSimulator>,
    registry: Mutex<BTreeMap<u64, Arc<CampaignState>>>,
    queue: Mutex<Vec<ScanTask>>,
    journals: Vec<Journal>,
    /// Base (unscoped) handle onto the shared pool; campaigns derive scoped
    /// handles from it.
    base: Threaded,
    stop: AtomicBool,
    died: AtomicBool,
    /// Admission slots currently held: one per campaign from submission
    /// until completion or detach. The authoritative occupancy behind
    /// [`ServiceConfig::max_pending_jobs`] — the simulator's own pending
    /// count cannot serve here because its clock stands still until the
    /// cost model is drained at shutdown. Incremented under the registry
    /// lock at submission; decremented under the owning campaign's status
    /// lock at release, so a reader that observes `Completed`/`Detached`
    /// through that lock also observes the freed slot.
    jobs_pending: AtomicU64,
    next_id: AtomicU64,
    steals: AtomicU64,
    scans: AtomicU64,
    drained: Mutex<Vec<JobRecord>>,
}

/// The multi-campaign workflow service. See the module docs for the model.
pub struct WorkflowService {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkflowService {
    /// Start the service: open the sharded, replicated artifact store under
    /// `<root>/cache` (remote-fetch costs drawn from the machine model's
    /// interconnect), create one journal per shard, and spawn the shard
    /// workers. No campaigns run until submitted.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<WorkflowService> {
        std::fs::create_dir_all(&cfg.root)?;
        let store = Arc::new(DistributedStore::open(
            cfg.root.join("cache"),
            DistributedConfig {
                nodes: cfg.store_nodes.max(1),
                replicas: cfg.store_replicas,
                fetch: RemoteFetchModel::new(cfg.machine.net.latency, cfg.machine.net.per_node_bw),
                ..DistributedConfig::default()
            },
        )?);
        let shards = cfg.shards.max(1);
        let journals: Vec<Journal> = (0..shards)
            .map(|k| Journal::new(cfg.root.join(format!("shard{k}.journal"))))
            .collect();
        let base = Threaded::new(cfg.pool_workers.max(1));
        let sim = BatchSimulator::new(cfg.machine.clone(), cfg.queue_policy.clone());
        let inner = Arc::new(Inner {
            cfg,
            store,
            hub: StreamHub::new(),
            sim: Mutex::new(sim),
            registry: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(Vec::new()),
            journals,
            base,
            stop: AtomicBool::new(false),
            died: AtomicBool::new(false),
            jobs_pending: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            steals: AtomicU64::new(0),
            scans: AtomicU64::new(0),
            drained: Mutex::new(Vec::new()),
        });
        let workers = (0..shards)
            .map(|k| {
                let i = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("service-shard{k}"))
                    .spawn(move || shard_worker(i, k))
                    .expect("spawn shard worker")
            })
            .collect();
        Ok(WorkflowService { inner, workers })
    }

    /// Admit a campaign: admission control first (active bound, then the
    /// batch-queue slots), then filesystem setup and journal recovery, and
    /// only then the batch-job enqueue, registration, and the emitter
    /// spawn — so no error path leaves a job queued without a registered
    /// campaign behind it. On [`ServiceError::Saturated`] nothing was
    /// registered — back off and resubmit.
    pub fn submit_campaign(&self, spec: CampaignSpec) -> Result<CampaignId, ServiceError> {
        let inner = &self.inner;
        if inner.stop.load(Ordering::SeqCst) || inner.died.load(Ordering::SeqCst) {
            return Err(ServiceError::ShuttingDown);
        }
        let mut registry = inner.registry.lock();
        if registry.values().any(|c| c.spec.name == spec.name) {
            return Err(ServiceError::DuplicateName(spec.name));
        }
        let active = registry
            .values()
            .filter(|c| *c.status.lock() == CampaignStatus::Running)
            .count();
        if active >= inner.cfg.max_active {
            telemetry::count!("service", "admission_rejections", 1);
            return Err(ServiceError::Saturated {
                pending: active,
                limit: inner.cfg.max_active,
            });
        }
        let held = inner.jobs_pending.load(Ordering::SeqCst) as usize;
        if held >= inner.cfg.max_pending_jobs {
            telemetry::count!("service", "admission_rejections", 1);
            return Err(ServiceError::Saturated {
                pending: held,
                limit: inner.cfg.max_pending_jobs,
            });
        }
        // Filesystem setup before the enqueue: failing here must not
        // consume a batch-queue slot.
        let dir = inner.cfg.root.join(&spec.name).join("drop");
        std::fs::create_dir_all(&dir).map_err(|e| ServiceError::Io(e.to_string()))?;
        let job = {
            let mut sim = inner.sim.lock();
            let now = sim.now();
            sim.submit(JobRequest::new(
                spec.name.clone(),
                spec.nodes,
                spec.job_runtime,
                now,
            ))
        };
        inner.jobs_pending.fetch_add(1, Ordering::SeqCst);
        let id = inner.next_id.fetch_add(1, Ordering::SeqCst);

        // Crash recovery: collect this campaign's handled files from *every*
        // shard journal, not just the owning one — robust to a shard-count
        // change between incarnations.
        let mut recovered: BTreeSet<PathBuf> = BTreeSet::new();
        for j in &inner.journals {
            if let Ok(entries) = j.load() {
                recovered.extend(entries.into_iter().filter(|p| p.parent() == Some(&*dir)));
            }
        }
        telemetry::count!("service", "journal_recovered", recovered.len());
        let mut scan = ScanState::new();
        scan.recover(recovered);

        let product_fp = spec.product_fingerprint();
        let gate_cache = Arc::clone(&inner.store);
        let lcfg = ListenerConfig {
            poll_interval: inner.cfg.poll_interval,
            prefix: "l2_".into(),
            suffix: ".hcio".into(),
            injector: inner.cfg.injector.clone(),
            journal_compact_bytes: inner.cfg.journal_compact_bytes,
            cache_gate: Some(CacheGate::new(move |p| match cosmotools::file_digest(p) {
                Ok(d) => gate_cache.contains_verified(CacheKey::compose("centers", d, product_fp)),
                Err(_) => false,
            })),
            ..ListenerConfig::default()
        };
        let shard = (id as usize) % inner.journals.len();
        let state = Arc::new(CampaignState {
            id,
            spec,
            dir,
            shard,
            job,
            lcfg,
            scan: Mutex::new(scan),
            lreport: Mutex::new(ListenerReport::default()),
            executions: Mutex::new(BTreeMap::new()),
            status: Mutex::new(CampaignStatus::Running),
            catalog: Mutex::new(None),
            assembly_misses: AtomicU64::new(0),
            backend: inner.base.scoped(),
            cancel: AtomicBool::new(false),
            emitter: Mutex::new(None),
            stream_cursor: Mutex::new(0),
            pending_chunks: Mutex::new(BTreeMap::new()),
        });
        registry.insert(id, Arc::clone(&state));
        drop(registry);

        let ei = Arc::clone(inner);
        let ec = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name(format!("service-emit-c{id}"))
            .spawn(move || run_emitter(ei, ec))
            .expect("spawn campaign emitter");
        *state.emitter.lock() = Some(handle);

        inner.queue.lock().push(ScanTask {
            campaign: id,
            shard,
            due: Instant::now(),
        });
        telemetry::count!("service", "campaigns_admitted", 1);
        Ok(CampaignId(id))
    }

    /// Current status of a campaign. While the incarnation is dead, a
    /// still-running campaign reads as [`CampaignStatus::Failed`].
    pub fn status(&self, id: CampaignId) -> Result<CampaignStatus, ServiceError> {
        let registry = self.inner.registry.lock();
        let c = registry
            .get(&id.0)
            .ok_or(ServiceError::UnknownCampaign(id))?;
        let st = *c.status.lock();
        Ok(match st {
            CampaignStatus::Running if self.inner.died.load(Ordering::SeqCst) => {
                CampaignStatus::Failed
            }
            s => s,
        })
    }

    /// Block until the campaign leaves [`CampaignStatus::Running`] (or the
    /// incarnation dies) and return its final status.
    pub fn wait(&self, id: CampaignId) -> Result<CampaignStatus, ServiceError> {
        loop {
            let st = self.status(id)?;
            if st != CampaignStatus::Running {
                return Ok(st);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Block until every registered campaign has left
    /// [`CampaignStatus::Running`] (or the incarnation dies).
    pub fn wait_all(&self) {
        let ids: Vec<u64> = self.inner.registry.lock().keys().copied().collect();
        for id in ids {
            let _ = self.wait(CampaignId(id));
        }
    }

    /// Snapshot one campaign's report without detaching it. The registry
    /// lock is released before the snapshot so a slow snapshot (it waits on
    /// the campaign's sweep-side locks) never stalls submissions or the
    /// shard workers.
    pub fn report(&self, id: CampaignId) -> Result<CampaignReport, ServiceError> {
        let c = self
            .inner
            .registry
            .lock()
            .get(&id.0)
            .cloned()
            .ok_or(ServiceError::UnknownCampaign(id))?;
        Ok(c.report(self.inner.died.load(Ordering::SeqCst)))
    }

    /// Did this incarnation die to an injected crash?
    pub fn crashed(&self) -> bool {
        self.inner.died.load(Ordering::SeqCst)
    }

    /// Detach a campaign: remove it from the registry, stop its emitter,
    /// drop its queued scan work, release its admission slot, withdraw its
    /// batch job from the simulator, and compact its entries out of the
    /// owning shard journal — all without touching any other campaign.
    /// Returns the campaign's final report.
    ///
    /// A worker may be mid-sweep on the campaign when it is detached; that
    /// sweep finishes (its journal appends are compacted away here or by the
    /// next size-triggered compaction) and the campaign is never swept
    /// again.
    pub fn detach(&self, id: CampaignId) -> Result<CampaignReport, ServiceError> {
        let c = self
            .inner
            .registry
            .lock()
            .remove(&id.0)
            .ok_or(ServiceError::UnknownCampaign(id))?;
        c.cancel.store(true, Ordering::SeqCst);
        if let Some(h) = c.emitter.lock().take() {
            let _ = h.join();
        }
        self.inner.queue.lock().retain(|t| t.campaign != id.0);
        self.inner.hub.drop_topic(id.0);
        // The Running→Detached transition decides slot ownership exactly
        // once: a finalize racing with this detach releases the slot on
        // whichever side wins the status lock, never both. A campaign that
        // already completed released its slot then; its finished job stays
        // in the simulator so shutdown still drains its record.
        let was_running = {
            let mut st = c.status.lock();
            if *st == CampaignStatus::Running {
                self.inner.jobs_pending.fetch_sub(1, Ordering::SeqCst);
                *st = CampaignStatus::Detached;
                true
            } else {
                false
            }
        };
        if was_running {
            self.inner.sim.lock().cancel(c.job);
        }
        let j = &self.inner.journals[c.shard];
        if let Ok(entries) = j.load() {
            let kept: BTreeSet<PathBuf> = entries
                .into_iter()
                .filter(|p| p.parent() != Some(&*c.dir))
                .collect();
            let _ = j.rewrite(&kept);
        }
        telemetry::count!("service", "campaigns_detached", 1);
        Ok(c.report(self.inner.died.load(Ordering::SeqCst)))
    }

    /// Stop the service: halt the shard workers and emitters, drain the
    /// batch simulator, and return a [`ServiceReport`] covering every still
    /// registered campaign. Campaigns still running at shutdown keep
    /// [`CampaignStatus::Running`] in the report (their state survives in
    /// the journals and cache for the next incarnation).
    pub fn shutdown(mut self) -> ServiceReport {
        self.inner.stop.store(true, Ordering::SeqCst);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let campaigns: Vec<Arc<CampaignState>> =
            self.inner.registry.lock().values().cloned().collect();
        for c in &campaigns {
            c.cancel.store(true, Ordering::SeqCst);
            if let Some(h) = c.emitter.lock().take() {
                let _ = h.join();
            }
        }
        let records = self.inner.sim.lock().run_to_completion();
        self.inner.drained.lock().extend(records);
        let died = self.inner.died.load(Ordering::SeqCst);
        ServiceReport {
            crashed: died,
            campaigns: campaigns.iter().map(|c| (c.id, c.report(died))).collect(),
            scans: self.inner.scans.load(Ordering::Relaxed),
            steals: self.inner.steals.load(Ordering::Relaxed),
            job_records: std::mem::take(&mut *self.inner.drained.lock()),
        }
    }
}

impl Drop for WorkflowService {
    fn drop(&mut self) {
        // A service dropped without `shutdown` must not leave threads
        // spinning on the queue forever.
        self.inner.stop.store(true, Ordering::SeqCst);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        for c in self.inner.registry.lock().values() {
            c.cancel.store(true, Ordering::SeqCst);
            if let Some(h) = c.emitter.lock().take() {
                let _ = h.join();
            }
        }
    }
}

/// One shard worker: pops due scan tasks (its own shard first, then steals),
/// sweeps the campaign's drop directory through the shared gated scan, and
/// either finalizes the campaign or re-queues the task.
fn shard_worker(inner: Arc<Inner>, me: usize) {
    loop {
        if inner.stop.load(Ordering::SeqCst) || inner.died.load(Ordering::SeqCst) {
            return;
        }
        let task = {
            let now = Instant::now();
            let mut q = inner.queue.lock();
            let pos = q
                .iter()
                .position(|t| t.due <= now && t.shard == me)
                .or_else(|| q.iter().position(|t| t.due <= now));
            pos.map(|i| q.swap_remove(i))
        };
        let Some(task) = task else {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        };
        if task.shard != me {
            inner.steals.fetch_add(1, Ordering::Relaxed);
            telemetry::count!("service", "steals", 1);
        }
        let Some(c) = inner.registry.lock().get(&task.campaign).cloned() else {
            continue; // detached while queued
        };
        if *c.status.lock() != CampaignStatus::Running {
            continue;
        }
        let _dim = telemetry::with_dim(c.id);
        inner.scans.fetch_add(1, Ordering::Relaxed);
        telemetry::count!("service", "scans", 1);

        // Scan-level fault poll, mirroring the single-directory listener's
        // thread loop: Transient skips this poll, Crash kills the
        // incarnation.
        let mut crashed = false;
        let mut skip = false;
        match c.lcfg.fault("listener.scan") {
            Some(FaultKind::Crash) => {
                telemetry::instant!("faults", "listener.scan", 1);
                crashed = true;
            }
            Some(FaultKind::Stall(d)) => {
                telemetry::instant!("faults", "listener.scan", 2);
                std::thread::sleep(d);
            }
            Some(FaultKind::Transient) => {
                telemetry::instant!("faults", "listener.scan", 0);
                skip = true;
            }
            None => {}
        }
        if !crashed && !skip {
            crashed = if c.spec.stream {
                !stream_sweep(&inner, &c)
            } else {
                !run_sweep(&inner, &c)
            };
        }
        if crashed {
            inner.died.store(true, Ordering::SeqCst);
            return;
        }
        let done = c.scan.lock().handled_total() >= c.spec.steps;
        if done {
            finalize(&inner, &c);
        } else {
            inner.queue.lock().push(ScanTask {
                campaign: c.id,
                shard: task.shard,
                due: Instant::now() + inner.cfg.poll_interval,
            });
        }
    }
}

/// One gated sweep of a campaign's drop directory, journaling into the
/// campaign's owning shard. Returns `false` when an injected crash killed
/// the sweep.
fn run_sweep(inner: &Inner, c: &CampaignState) -> bool {
    let journal = &inner.journals[c.shard];
    let mut on_file = |p: &Path| analyze_file(inner, c, p);
    // Sweep into a per-sweep delta and absorb it afterwards: holding
    // `lreport` across the sweep (which locks `scan` repeatedly) would pin
    // the lreport→scan order for the whole sweep, deadlocking against any
    // concurrent snapshot that touches the same pair — and would stall
    // `report()` callers for a full sweep besides.
    let mut delta = ListenerReport::default();
    let ok = sweep_dir(
        &c.dir,
        &c.lcfg,
        &c.scan,
        Some(journal),
        &mut on_file,
        &mut delta,
    );
    c.lreport.lock().absorb(delta);
    ok
}

/// The analysis job for one whole-file drop: read it back and hand the
/// bytes to the shared [`analyze_bytes`].
fn analyze_file(inner: &Inner, c: &CampaignState, path: &Path) -> Result<(), SubmitError> {
    let bytes =
        std::fs::read(path).map_err(|e| SubmitError(format!("read {}: {e}", path.display())))?;
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    analyze_bytes(inner, c, &bytes, &stem)
}

/// The analysis job proper, shared by the whole-file and streaming paths:
/// parse, per-block MBP centers through the campaign's scoped backend,
/// memoize under the campaign's namespaced key in the distributed store,
/// count the completed execution. Consults the per-campaign
/// `service.c<id>.analysis` fault site. `exec_name` keys the execution
/// counter (the drop file name in both modes, so exactly-once accounting is
/// mode-independent).
fn analyze_bytes(
    inner: &Inner,
    c: &CampaignState,
    bytes: &[u8],
    exec_name: &str,
) -> Result<(), SubmitError> {
    if inner.died.load(Ordering::SeqCst) {
        return Err(SubmitError("service incarnation is down".into()));
    }
    let site = faults::campaign_site(c.id, "analysis");
    match c.lcfg.fault(&site) {
        Some(FaultKind::Crash) => {
            telemetry::instant!("faults", "service.analysis", 1);
            inner.died.store(true, Ordering::SeqCst);
            return Err(SubmitError(format!("{site}: crashed by fault injection")));
        }
        Some(FaultKind::Stall(d)) => std::thread::sleep(d),
        Some(FaultKind::Transient) => {
            telemetry::instant!("faults", "service.analysis", 0);
            return Err(SubmitError(format!("{site}: transient analysis failure")));
        }
        None => {}
    }
    let digest = cache::digest_bytes(bytes);
    let container = cosmotools::read_container(bytes)
        .map_err(|e| SubmitError(format!("parse {exec_name}: {e:?}")))?;
    let payload = encode_centers(&container_centers(&container, &c.backend));
    inner
        .store
        .insert(c.spec.product_key(digest), &payload)
        .map_err(|e| SubmitError(format!("cache insert: {e}")))?;
    *c.executions
        .lock()
        .entry(exec_name.to_string())
        .or_insert(0) += 1;
    telemetry::count!("service", "analyses", 1);
    Ok(())
}

/// Campaign completion: assemble the catalog from the cache (deterministic
/// recompute on any degraded entry), mark it completed, and release *its*
/// admission slot — only its own. Draining the whole simulator here would
/// retire every other still-running campaign's job with it, and
/// `max_pending_jobs` would stop bounding anything after the first
/// completion. The job's record is drained at shutdown instead.
fn finalize(inner: &Inner, c: &CampaignState) {
    let (catalog, misses) = assemble(inner, c);
    c.assembly_misses.store(misses, Ordering::Relaxed);
    *c.catalog.lock() = Some(catalog);
    // Slot release and the Running→Completed transition happen under the
    // status lock: a waiter that observes `Completed` (same lock) can rely
    // on the freed slot, and a concurrent detach cannot double-release.
    {
        let mut st = c.status.lock();
        if *st == CampaignStatus::Running {
            inner.jobs_pending.fetch_sub(1, Ordering::SeqCst);
            *st = CampaignStatus::Completed;
        }
    }
    inner.hub.drop_topic(c.id);
    telemetry::count!("service", "campaigns_completed", 1);
}

/// Assemble the campaign catalog: per step, look up the analysis product by
/// the drop's content digest, recomputing deterministically on a miss. The
/// drop bytes are regenerated from the spec — not read back — so assembly
/// is exact even if the drop directory was already cleaned up.
fn assemble(inner: &Inner, c: &CampaignState) -> (Vec<u8>, u64) {
    let mut catalog = Vec::new();
    let mut misses = 0u64;
    for step in 0..c.spec.steps {
        let container = step_container(c.spec.seed, step);
        let bytes = write_container(&container);
        let key = c.spec.product_key(cache::digest_bytes(&bytes));
        let payload = match inner.store.lookup(key) {
            Some(p) => p,
            None => {
                misses += 1;
                let p = encode_centers(&container_centers(&container, &c.backend));
                let _ = inner.store.insert(key, &p);
                p
            }
        };
        catalog.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        catalog.extend_from_slice(&payload);
    }
    (catalog, misses)
}

/// The campaign emitter: stages each deterministic Level-2 drop through
/// `name.tmp` + atomic rename, polling the per-campaign
/// `service.c<id>.emit` fault site in the window between staging and
/// publish (a crash there strands a `.tmp` the listeners must never
/// submit). Already-published steps are skipped — that is how a restarted
/// incarnation resumes.
fn run_emitter(inner: Arc<Inner>, c: Arc<CampaignState>) {
    let _dim = telemetry::with_dim(c.id);
    if c.spec.stream {
        stream_emitter(&inner, &c);
        return;
    }
    let site = faults::campaign_site(c.id, "emit");
    for step in 0..c.spec.steps {
        let path = c.dir.join(step_file_name(step));
        loop {
            if inner.stop.load(Ordering::SeqCst)
                || inner.died.load(Ordering::SeqCst)
                || c.cancel.load(Ordering::SeqCst)
            {
                return;
            }
            if path.exists() {
                break;
            }
            let bytes = write_container(&step_container(c.spec.seed, step));
            let tmp = c.dir.join(format!("{}.tmp", step_file_name(step)));
            if std::fs::write(&tmp, &bytes).is_err() {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            match c.lcfg.fault(&site) {
                Some(FaultKind::Crash) => {
                    telemetry::instant!("faults", "service.emit", 1);
                    inner.died.store(true, Ordering::SeqCst);
                    return;
                }
                Some(FaultKind::Stall(d)) => std::thread::sleep(d),
                Some(FaultKind::Transient) => {
                    telemetry::instant!("faults", "service.emit", 0);
                    let _ = std::fs::remove_file(&tmp);
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                None => {}
            }
            if std::fs::rename(&tmp, &path).is_err() {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            break;
        }
        std::thread::sleep(inner.cfg.poll_interval);
    }
}

/// The streaming emitter: per step, split the deterministic Level-2
/// container into its chunk set, publish every chunk into the distributed
/// store, and announce it on the campaign's hub topic. The per-campaign
/// `service.c<id>.emit` fault site is polled once per chunk — a Transient
/// retries the chunk, a Crash kills the incarnation mid-step (some chunks
/// durable, the set incomplete), which is exactly the torn state the
/// analysis side must tolerate. A restarted incarnation re-runs all steps:
/// inserts dedup by content and re-announcements of handled steps are
/// filtered by the scan state, so resumption is idempotent.
fn stream_emitter(inner: &Inner, c: &CampaignState) {
    let site = faults::campaign_site(c.id, "emit");
    for step in 0..c.spec.steps {
        let container = step_container(c.spec.seed, step);
        let chunks = chunk_container(&container);
        let total = if container.blocks.is_empty() {
            0
        } else {
            chunks.len() as u32
        };
        for (index, chunk) in chunks.iter().enumerate() {
            loop {
                if inner.stop.load(Ordering::SeqCst)
                    || inner.died.load(Ordering::SeqCst)
                    || c.cancel.load(Ordering::SeqCst)
                {
                    return;
                }
                match c.lcfg.fault(&site) {
                    Some(FaultKind::Crash) => {
                        telemetry::instant!("faults", "service.emit", 1);
                        inner.died.store(true, Ordering::SeqCst);
                        return;
                    }
                    Some(FaultKind::Stall(d)) => std::thread::sleep(d),
                    Some(FaultKind::Transient) => {
                        telemetry::instant!("faults", "service.emit", 0);
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    None => {}
                }
                let key = c.spec.chunk_key(step as u64, index as u32, chunk);
                if inner.store.insert(key, chunk).is_err() {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                inner.hub.publish(
                    c.id,
                    ChunkRef {
                        step: step as u64,
                        index: index as u32,
                        total,
                        key,
                        len: chunk.len() as u64,
                    },
                );
                telemetry::count!("service", "chunks_published", 1);
                break;
            }
        }
        std::thread::sleep(inner.cfg.poll_interval);
    }
}

/// One streaming-ingest pass for a campaign: drain the hub topic, fold the
/// announcements into the pending-chunk map, and for every step whose chunk
/// set is complete fetch the payloads back out of the store (replica
/// routing and remote-fetch costs apply), reassemble the container
/// byte-exactly, and run it through the same gate/submit/journal discipline
/// as the whole-file sweep — keyed by the *virtual* drop path
/// `<drop>/l2_NNNN.hcio`, so journals, recovery, and execution accounting
/// are mode-independent. Returns `false` when an injected crash killed the
/// pass.
fn stream_sweep(inner: &Inner, c: &CampaignState) -> bool {
    {
        let mut cursor = c.stream_cursor.lock();
        let (batch, next) = inner.hub.drain_from(c.id, *cursor);
        *cursor = next;
        if !batch.is_empty() {
            let mut pending = c.pending_chunks.lock();
            for r in batch {
                pending.entry(r.step).or_default().insert(r.index, r);
            }
        }
    }
    // Steps whose chunk set is complete (`total == 0` is the block-less
    // sentinel: one chunk is the whole set).
    let ready: Vec<(u64, Vec<ChunkRef>)> = c
        .pending_chunks
        .lock()
        .iter()
        .filter(|(_, chunks)| {
            chunks
                .values()
                .next()
                .is_some_and(|r| chunks.len() >= r.total.max(1) as usize)
        })
        .map(|(step, chunks)| (*step, chunks.values().copied().collect()))
        .collect();
    let journal = &inner.journals[c.shard];
    let mut delta = ListenerReport::default();
    let mut ok = true;
    for (step, refs) in ready {
        let virt = c.dir.join(step_file_name(step as usize));
        if c.scan.lock().is_handled(&virt) {
            // Handled by a previous incarnation (journal-recovered) or a
            // duplicate announcement; drop the buffered chunks.
            c.pending_chunks.lock().remove(&step);
            continue;
        }
        let mut encoded: Vec<Vec<u8>> = Vec::with_capacity(refs.len());
        let mut missing = false;
        for r in &refs {
            match inner.store.lookup(r.key) {
                Some(b) => encoded.push(b),
                None => {
                    missing = true;
                    break;
                }
            }
        }
        let container = if missing {
            None
        } else {
            assemble_chunks(&encoded).ok()
        };
        let Some(container) = container else {
            // A chunk is unreachable right now (replicas down, or a torn
            // set from a crashed emitter). Leave the step pending: heal or
            // the restarted emitter's re-publish makes a later pass whole.
            telemetry::count!("service", "stream_stalls", 1);
            continue;
        };
        let bytes = write_container(&container);
        let digest = cache::digest_bytes(&bytes);
        // Same cache gate as the whole-file path: a verified product for
        // these exact bytes means the step is already analyzed — record it
        // handled (journal included) without running a job.
        if inner.store.contains_verified(c.spec.product_key(digest)) {
            telemetry::count!("listener", "cache_skipped", 1);
            if !journal_append(&virt, &c.lcfg, &mut delta, journal) {
                ok = false; // crashed mid-append
                break;
            }
            delta.cache_skipped.push(virt.clone());
            c.scan.lock().mark_handled(&virt);
            c.pending_chunks.lock().remove(&step);
            continue;
        }
        let exec_name = step_file_name(step as usize);
        let mut on_file = |_: &Path| analyze_bytes(inner, c, &bytes, &exec_name);
        if !submit_one(&virt, &c.lcfg, &mut on_file, &mut delta, Some(journal)) {
            ok = false; // crashed mid-submit
            break;
        }
        if delta.submitted.last().map(PathBuf::as_path) == Some(virt.as_path()) {
            c.scan.lock().mark_handled(&virt);
            c.pending_chunks.lock().remove(&step);
        }
    }
    c.lreport.lock().absorb(delta);
    ok
}

/// Drop file name for one step.
fn step_file_name(step: usize) -> String {
    format!("l2_{step:04}.hcio")
}

/// The deterministic Level-2 container for one campaign step: a few
/// particle blocks (one synthetic "halo" per block) with tags unique within
/// the campaign.
fn step_container(seed: u64, step: usize) -> Container {
    let mut rng = StdRng::seed_from_u64(seed ^ (step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let nblocks = 2 + step % 2;
    let mut blocks = Vec::with_capacity(nblocks);
    let mut tag = (step as u64) * 10_000;
    for b in 0..nblocks {
        let n = 5 + (step * 5 + b * 3) % 7;
        let center = [
            rng.gen_range(4.0..60.0f32),
            rng.gen_range(4.0..60.0f32),
            rng.gen_range(4.0..60.0f32),
        ];
        let mut block = Vec::with_capacity(n);
        for _ in 0..n {
            let pos = [
                center[0] + rng.gen_range(-0.5..0.5f32),
                center[1] + rng.gen_range(-0.5..0.5f32),
                center[2] + rng.gen_range(-0.5..0.5f32),
            ];
            block.push(Particle::at_rest(pos, 1.0, tag));
            tag += 1;
        }
        blocks.push(block);
    }
    Container {
        meta: SnapshotMeta {
            step: step as u64,
            redshift: 0.5,
            box_size: 64.0,
        },
        blocks,
    }
}

/// Per-block MBP centers of a container, sorted by halo id. `dpp`'s argmin
/// breaks ties by lowest index under a total order, so the result is
/// byte-identical on every backend — a campaign analyzing through its
/// scoped threaded handle produces exactly the solo serial catalog.
fn container_centers(c: &Container, backend: &dyn Backend) -> Vec<CenterRecord> {
    let mut centers: Vec<CenterRecord> = c
        .blocks
        .iter()
        .filter(|b| !b.is_empty())
        .map(|b| {
            let r = mbp_brute(backend, b, SOFTENING);
            CenterRecord {
                halo_id: b.iter().map(|p| p.tag).min().unwrap_or(0),
                center: b[r.index].pos_f64(),
                count: b.len() as u64,
                potential: r.potential,
            }
        })
        .collect();
    centers.sort_by_key(|r| r.halo_id);
    centers
}

/// The catalog a fault-free *solo* run of this spec produces: per step, the
/// serial analysis of the deterministic drop, length-framed exactly like
/// the service's assembly. Byte equality against this is the service's
/// isolation oracle.
pub fn reference_catalog(spec: &CampaignSpec) -> Vec<u8> {
    let mut catalog = Vec::new();
    for step in 0..spec.steps {
        let payload = encode_centers(&container_centers(
            &step_container(spec.seed, step),
            &dpp::Serial,
        ));
        catalog.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        catalog.extend_from_slice(&payload);
    }
    catalog
}

/// The store node holding the *primary* copy of `spec`'s step-`step`
/// analysis product under a `nodes`-node store. Placement is a pure
/// function of the key, so tests and explorers can pick a node whose
/// death provably forces a remote (fail-over) fetch rather than wiping a
/// node at random and hoping something lived there.
pub fn product_primary_node(spec: &CampaignSpec, step: usize, nodes: usize) -> usize {
    let bytes = write_container(&step_container(spec.seed, step));
    let key = spec.product_key(cache::digest_bytes(&bytes));
    cache::ShardRouter::new(nodes, 1).primary(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("hacc_service_test")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_cfg(root: PathBuf) -> ServiceConfig {
        ServiceConfig {
            poll_interval: Duration::from_millis(2),
            ..ServiceConfig::new(root)
        }
    }

    #[test]
    fn drops_are_deterministic_and_step_distinct() {
        let a = write_container(&step_container(7, 1));
        let b = write_container(&step_container(7, 1));
        assert_eq!(a, b);
        let c = write_container(&step_container(7, 0));
        assert_ne!(a, c);
        let d = write_container(&step_container(8, 1));
        assert_ne!(a, d);
    }

    #[test]
    fn threaded_analysis_matches_the_serial_reference() {
        let spec = CampaignSpec::new("det", 0xBEEF, 3);
        let threaded = Threaded::new(4);
        let mut catalog = Vec::new();
        for step in 0..spec.steps {
            let payload = encode_centers(&container_centers(
                &step_container(spec.seed, step),
                &threaded,
            ));
            catalog.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            catalog.extend_from_slice(&payload);
        }
        assert_eq!(catalog, reference_catalog(&spec));
    }

    #[test]
    fn one_campaign_completes_with_the_solo_catalog() {
        let svc = WorkflowService::start(quick_cfg(scratch("single"))).unwrap();
        let spec = CampaignSpec::new("alpha", 11, 3);
        let id = svc.submit_campaign(spec.clone()).unwrap();
        assert_eq!(svc.wait(id).unwrap(), CampaignStatus::Completed);
        let rep = svc.report(id).unwrap();
        assert_eq!(rep.catalog.as_deref(), Some(&reference_catalog(&spec)[..]));
        assert_eq!(rep.assembly_misses, 0, "products must come from the cache");
        assert!(
            (0..spec.steps).all(|s| rep.executions.get(&step_file_name(s)) == Some(&1)),
            "each drop analyzed exactly once: {:?}",
            rep.executions
        );
        let report = svc.shutdown();
        assert!(!report.crashed);
        assert_eq!(report.job_records.len(), 1);
    }

    #[test]
    fn concurrent_campaigns_are_isolated_and_match_solo_runs() {
        let svc = WorkflowService::start(quick_cfg(scratch("multi"))).unwrap();
        let specs: Vec<CampaignSpec> = (0..4)
            .map(|k| CampaignSpec::new(format!("camp{k}"), 100 + k as u64, 2 + k % 2))
            .collect();
        let ids: Vec<CampaignId> = specs
            .iter()
            .map(|s| svc.submit_campaign(s.clone()).unwrap())
            .collect();
        svc.wait_all();
        let report = svc.shutdown();
        assert!(!report.crashed);
        for (spec, id) in specs.iter().zip(&ids) {
            let rep = &report.campaigns[&id.0];
            assert_eq!(rep.status, CampaignStatus::Completed, "{}", spec.name);
            assert_eq!(
                rep.catalog.as_deref(),
                Some(&reference_catalog(spec)[..]),
                "campaign {} drifted from its solo catalog",
                spec.name
            );
            assert!(
                (0..spec.steps).all(|s| rep.executions.get(&step_file_name(s)) == Some(&1)),
                "campaign {} executions: {:?}",
                spec.name,
                rep.executions
            );
        }
        // Distinct seeds produce distinct catalogs — equality above is not
        // vacuous.
        let c0 = report.campaigns[&ids[0].0].catalog.clone().unwrap();
        let c1 = report.campaigns[&ids[1].0].catalog.clone().unwrap();
        assert_ne!(c0, c1);
    }

    #[test]
    fn scoped_pool_counters_attribute_per_campaign() {
        let svc = WorkflowService::start(quick_cfg(scratch("scoped"))).unwrap();
        let a = svc
            .submit_campaign(CampaignSpec::new("heavy", 1, 4))
            .unwrap();
        let b = svc
            .submit_campaign(CampaignSpec::new("light", 2, 2))
            .unwrap();
        svc.wait_all();
        let report = svc.shutdown();
        let ra = &report.campaigns[&a.0];
        let rb = &report.campaigns[&b.0];
        assert!(ra.pool.dispatches > 0, "campaign a dispatched through pool");
        assert!(rb.pool.dispatches > 0, "campaign b dispatched through pool");
        // 4 steps of analysis dispatch at least as much as 2 steps.
        assert!(
            ra.pool.dispatches >= rb.pool.dispatches,
            "a={} b={}",
            ra.pool.dispatches,
            rb.pool.dispatches
        );
    }

    #[test]
    fn saturated_admission_is_backpressure_not_a_drop() {
        let mut cfg = quick_cfg(scratch("saturated"));
        cfg.max_pending_jobs = 2;
        let svc = WorkflowService::start(cfg).unwrap();
        let a = svc.submit_campaign(CampaignSpec::new("s0", 1, 2)).unwrap();
        let _b = svc.submit_campaign(CampaignSpec::new("s1", 2, 2)).unwrap();
        let err = svc
            .submit_campaign(CampaignSpec::new("s2", 3, 2))
            .unwrap_err();
        assert_eq!(
            err,
            ServiceError::Saturated {
                pending: 2,
                limit: 2
            }
        );
        // Completion drains the batch queue; the same spec then admits.
        assert_eq!(svc.wait(a).unwrap(), CampaignStatus::Completed);
        svc.submit_campaign(CampaignSpec::new("s2", 3, 2))
            .expect("admission slot freed by completion");
        svc.wait_all();
        let report = svc.shutdown();
        assert!(!report.crashed);
    }

    /// Review regression: `report()` (a documented while-running API) and
    /// `detach()` must never deadlock against a shard worker mid-sweep.
    /// The old code held the `scan` guard while taking `lreport` inside a
    /// struct-literal snapshot — the inverse of the sweep's order — so
    /// hammering snapshots while campaigns run would wedge the service.
    #[test]
    fn snapshots_while_sweeping_never_deadlock() {
        let svc = WorkflowService::start(quick_cfg(scratch("snap-hammer"))).unwrap();
        let spec = CampaignSpec::new("busy", 77, 25);
        let id = svc.submit_campaign(spec.clone()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let rep = svc.report(id).expect("campaign is registered");
            let _ = svc.status(id).unwrap();
            if rep.status == CampaignStatus::Completed {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "campaign never completed — snapshot/sweep deadlock?"
            );
        }
        let rep = svc.detach(id).unwrap();
        assert_eq!(rep.status, CampaignStatus::Completed);
        assert_eq!(rep.catalog.as_deref(), Some(&reference_catalog(&spec)[..]));
        svc.shutdown();
    }

    /// Review regression: detaching a campaign must free its admission
    /// slot (and withdraw its batch job), or a saturated service could
    /// never shed load by detaching.
    #[test]
    fn detach_releases_the_admission_slot_and_cancels_the_job() {
        let mut cfg = quick_cfg(scratch("detach-slot"));
        cfg.max_pending_jobs = 1;
        let svc = WorkflowService::start(cfg).unwrap();
        let hog = svc
            .submit_campaign(CampaignSpec::new("hog", 1, 200))
            .unwrap();
        match svc.submit_campaign(CampaignSpec::new("next", 2, 2)) {
            Err(ServiceError::Saturated {
                pending: 1,
                limit: 1,
            }) => {}
            other => panic!("expected Saturated{{1,1}}, got {other:?}"),
        }
        svc.detach(hog).unwrap();
        let next = svc
            .submit_campaign(CampaignSpec::new("next", 2, 2))
            .expect("detach must free the admission slot");
        assert_eq!(svc.wait(next).unwrap(), CampaignStatus::Completed);
        let report = svc.shutdown();
        assert!(!report.crashed);
        // The hog's cancelled job never produces a record; `next`'s does.
        assert_eq!(report.job_records.len(), 1);
        assert_eq!(report.job_records[0].name, "next");
    }

    /// Review regression: one campaign completing must release only its
    /// own slot. The old finalize drained the whole simulator, so after
    /// the first completion `max_pending_jobs` stopped bounding anything.
    #[test]
    fn backpressure_still_binds_after_a_completion() {
        let mut cfg = quick_cfg(scratch("post-completion-bound"));
        cfg.max_pending_jobs = 2;
        let svc = WorkflowService::start(cfg).unwrap();
        let long = svc
            .submit_campaign(CampaignSpec::new("long", 1, 200))
            .unwrap();
        let short = svc
            .submit_campaign(CampaignSpec::new("short", 2, 2))
            .unwrap();
        assert_eq!(svc.wait(short).unwrap(), CampaignStatus::Completed);
        // One slot freed by the completion; `long` still holds the other.
        let filler = svc
            .submit_campaign(CampaignSpec::new("filler", 3, 2))
            .expect("the completed campaign's slot is free");
        match svc.submit_campaign(CampaignSpec::new("overflow", 4, 2)) {
            Err(ServiceError::Saturated {
                pending: 2,
                limit: 2,
            }) => {}
            other => panic!("backpressure must persist after a completion, got {other:?}"),
        }
        let _ = svc.wait(filler);
        svc.detach(long).unwrap();
        let report = svc.shutdown();
        assert!(!report.crashed);
    }

    #[test]
    fn active_campaign_bound_rejects_with_saturated() {
        let mut cfg = quick_cfg(scratch("active-bound"));
        cfg.max_active = 1;
        let svc = WorkflowService::start(cfg).unwrap();
        // Long campaign so it is still running at the second submission.
        let _a = svc.submit_campaign(CampaignSpec::new("a", 1, 50)).unwrap();
        match svc.submit_campaign(CampaignSpec::new("b", 2, 2)) {
            Err(ServiceError::Saturated { limit: 1, .. }) => {}
            other => panic!("expected Saturated, got {other:?}"),
        }
        drop(svc);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let svc = WorkflowService::start(quick_cfg(scratch("dup"))).unwrap();
        svc.submit_campaign(CampaignSpec::new("same", 1, 2))
            .unwrap();
        assert_eq!(
            svc.submit_campaign(CampaignSpec::new("same", 9, 3)),
            Err(ServiceError::DuplicateName("same".into()))
        );
        svc.wait_all();
        svc.shutdown();
    }

    #[test]
    fn detach_leaves_the_neighbor_untouched() {
        let svc = WorkflowService::start(quick_cfg(scratch("detach"))).unwrap();
        let keep_spec = CampaignSpec::new("keep", 5, 3);
        let keep = svc.submit_campaign(keep_spec.clone()).unwrap();
        let gone = svc
            .submit_campaign(CampaignSpec::new("gone", 6, 60))
            .unwrap();
        let rep = svc.detach(gone).unwrap();
        assert_eq!(rep.status, CampaignStatus::Detached);
        assert_eq!(
            svc.status(gone),
            Err(ServiceError::UnknownCampaign(gone)),
            "detached campaigns leave the registry"
        );
        assert_eq!(svc.wait(keep).unwrap(), CampaignStatus::Completed);
        let report = svc.shutdown();
        assert_eq!(
            report.campaigns[&keep.0].catalog.as_deref(),
            Some(&reference_catalog(&keep_spec)[..])
        );
        assert!(!report.campaigns.contains_key(&gone.0));
    }

    #[test]
    fn campaign_fault_sites_only_touch_their_own_campaign() {
        let mut cfg = quick_cfg(scratch("faulty-neighbor"));
        // Campaign 1's analysis fails transiently on its first two attempts;
        // campaign 2 must not notice.
        cfg.injector = Some(
            faults::FaultPlan::new(3)
                .with_site(
                    faults::SiteSpec::transient(faults::campaign_site(1, "analysis"), 1.0)
                        .with_max_faults(2),
                )
                .build(),
        );
        let svc = WorkflowService::start(cfg).unwrap();
        let s1 = CampaignSpec::new("flaky", 21, 2);
        let s2 = CampaignSpec::new("steady", 22, 2);
        let a = svc.submit_campaign(s1.clone()).unwrap();
        let b = svc.submit_campaign(s2.clone()).unwrap();
        svc.wait_all();
        let report = svc.shutdown();
        assert!(!report.crashed);
        let ra = &report.campaigns[&a.0];
        let rb = &report.campaigns[&b.0];
        assert!(ra.listener.submit_retries > 0, "faults were retried");
        assert_eq!(rb.listener.submit_retries, 0, "neighbor saw no retries");
        assert_eq!(ra.catalog.as_deref(), Some(&reference_catalog(&s1)[..]));
        assert_eq!(rb.catalog.as_deref(), Some(&reference_catalog(&s2)[..]));
    }

    #[test]
    fn emit_crash_kills_the_incarnation_and_a_restart_recovers() {
        let root = scratch("crash-restart");
        let specs = [
            CampaignSpec::new("r0", 31, 2),
            CampaignSpec::new("r1", 32, 2),
        ];
        // Injector persists across incarnations so the crash fires exactly
        // once (first hit of campaign 1's emit site).
        let injector = faults::FaultPlan::new(7)
            .with_site(faults::SiteSpec::crash_at(
                faults::campaign_site(1, "emit"),
                0,
            ))
            .build();
        let mut executions: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut catalogs: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        let mut incarnations = 0;
        while incarnations < 5 && catalogs.len() < specs.len() {
            incarnations += 1;
            let mut cfg = quick_cfg(root.clone());
            // Note: scratch() wiped the root before the first incarnation
            // only; later incarnations reuse the journals and cache.
            cfg.root = root.clone();
            cfg.injector = Some(Arc::clone(&injector));
            let svc = WorkflowService::start(cfg).unwrap();
            let ids: Vec<_> = specs
                .iter()
                .filter_map(|s| svc.submit_campaign(s.clone()).ok())
                .collect();
            // Wait until everything settled or the incarnation died.
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                let settled = ids
                    .iter()
                    .all(|id| svc.status(*id).map(|s| s != CampaignStatus::Running) == Ok(true));
                if settled || svc.crashed() || Instant::now() > deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let report = svc.shutdown();
            for rep in report.campaigns.values() {
                for (file, n) in &rep.executions {
                    *executions
                        .entry((rep.name.clone(), file.clone()))
                        .or_insert(0) += n;
                }
                if rep.status == CampaignStatus::Completed {
                    catalogs.insert(rep.name.clone(), rep.catalog.clone().unwrap());
                }
            }
        }
        assert!(
            incarnations >= 2,
            "the crash must have killed incarnation 1"
        );
        for spec in &specs {
            assert_eq!(
                catalogs.get(&spec.name).map(|c| &c[..]),
                Some(&reference_catalog(spec)[..]),
                "campaign {} recovered catalog drifted",
                spec.name
            );
            for s in 0..spec.steps {
                assert_eq!(
                    executions.get(&(spec.name.clone(), step_file_name(s))),
                    Some(&1),
                    "campaign {} step {s} not exactly-once: {executions:?}",
                    spec.name
                );
            }
        }
        let fired = injector.site_stats();
        assert!(
            fired.get("service.c1.emit").is_some_and(|&(_, f)| f > 0),
            "armed crash never fired: {fired:?}"
        );
    }

    #[test]
    fn streaming_campaign_matches_the_solo_catalog() {
        let svc = WorkflowService::start(quick_cfg(scratch("stream"))).unwrap();
        let spec = CampaignSpec::streamed("streamy", 91, 4);
        let id = svc.submit_campaign(spec.clone()).unwrap();
        assert_eq!(svc.wait(id).unwrap(), CampaignStatus::Completed);
        let rep = svc.report(id).unwrap();
        assert_eq!(
            rep.catalog.as_deref(),
            Some(&reference_catalog(&spec)[..]),
            "streamed catalog must be byte-identical to the whole-file oracle"
        );
        assert_eq!(rep.assembly_misses, 0, "products must come from the store");
        assert!(
            (0..spec.steps).all(|s| rep.executions.get(&step_file_name(s)) == Some(&1)),
            "each streamed step analyzed exactly once: {:?}",
            rep.executions
        );
        let report = svc.shutdown();
        assert!(!report.crashed);
    }

    #[test]
    fn streamed_and_wholefile_campaigns_share_artifacts() {
        // Whole-file run first; then a *streamed* run of the same
        // (name, seed, steps) over the same root. The chunk protocol is
        // byte-lossless and the stream flag is outside the namespace, so
        // every streamed step must hit the cache gate: zero analyses, all
        // steps cache-skipped, identical catalog.
        let root = scratch("stream-shared");
        let spec = CampaignSpec::new("xmodal", 55, 3);
        let svc = WorkflowService::start(quick_cfg(root.clone())).unwrap();
        let id = svc.submit_campaign(spec.clone()).unwrap();
        assert_eq!(svc.wait(id).unwrap(), CampaignStatus::Completed);
        let first = svc.report(id).unwrap();
        svc.shutdown();

        // Wipe the shard journals (but not the store): the streamed re-run
        // must be satisfied by the cache *gate*, not by journal recovery.
        for k in 0..2 {
            let _ = std::fs::remove_file(root.join(format!("shard{k}.journal")));
        }
        let svc = WorkflowService::start(quick_cfg(root)).unwrap();
        let streamed = CampaignSpec {
            stream: true,
            ..spec.clone()
        };
        let id = svc.submit_campaign(streamed).unwrap();
        assert_eq!(svc.wait(id).unwrap(), CampaignStatus::Completed);
        let second = svc.report(id).unwrap();
        svc.shutdown();

        assert_eq!(first.catalog, second.catalog, "cross-mode catalogs differ");
        assert!(
            second.executions.is_empty(),
            "warm streamed re-run must recompute nothing: {:?}",
            second.executions
        );
        assert_eq!(
            second.listener.cache_skipped.len(),
            spec.steps,
            "every streamed step must be satisfied by the surviving artifacts"
        );
    }

    #[test]
    fn streaming_survives_the_death_of_one_replica_holding_node() {
        // 3-node store, 2 replicas. Run a streamed campaign to completion,
        // kill+wipe one store node, and re-run the same spec streamed in a
        // fresh service over the same root: every artifact must still be
        // reachable through the surviving replicas — zero recomputes and a
        // byte-identical catalog.
        let root = scratch("stream-kill");
        let spec = CampaignSpec::streamed("killable", 77, 3);
        let mut cfg = quick_cfg(root.clone());
        cfg.store_nodes = 3;
        cfg.store_replicas = 2;
        let svc = WorkflowService::start(cfg).unwrap();
        let id = svc.submit_campaign(spec.clone()).unwrap();
        assert_eq!(svc.wait(id).unwrap(), CampaignStatus::Completed);
        let cold = svc.report(id).unwrap();
        svc.shutdown();

        // Simulate losing node 1's disk entirely between incarnations.
        let node_dir = root.join("cache").join("node1");
        assert!(node_dir.is_dir(), "store must shard per node");
        std::fs::remove_dir_all(&node_dir).unwrap();

        let mut cfg = quick_cfg(root);
        cfg.store_nodes = 3;
        cfg.store_replicas = 2;
        let svc = WorkflowService::start(cfg).unwrap();
        let id = svc.submit_campaign(spec.clone()).unwrap();
        assert_eq!(svc.wait(id).unwrap(), CampaignStatus::Completed);
        let warm = svc.report(id).unwrap();
        svc.shutdown();

        assert_eq!(
            cold.catalog, warm.catalog,
            "catalog drifted after node loss"
        );
        assert_eq!(warm.catalog.as_deref(), Some(&reference_catalog(&spec)[..]));
        assert!(
            warm.executions.is_empty(),
            "replicas must cover the lost node — zero recomputes, got {:?}",
            warm.executions
        );
    }

    #[test]
    fn work_stealing_crosses_shard_boundaries() {
        let mut cfg = quick_cfg(scratch("steal"));
        cfg.shards = 2;
        let svc = WorkflowService::start(cfg).unwrap();
        // All campaigns land on shard 1 (ids 1,3,5 → 1%2, 3%2, 5%2) by
        // submitting odd ids only... ids are sequential, so instead submit
        // enough campaigns that both shards get work and steals can happen.
        for k in 0..6 {
            svc.submit_campaign(CampaignSpec::new(format!("w{k}"), 40 + k, 3))
                .unwrap();
        }
        svc.wait_all();
        let report = svc.shutdown();
        assert!(!report.crashed);
        assert!(report.scans > 0);
        for rep in report.campaigns.values() {
            assert_eq!(rep.status, CampaignStatus::Completed, "{}", rep.name);
        }
    }
}
