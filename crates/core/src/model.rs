//! Titan-frame projection model.
//!
//! Converts workload descriptors (particle counts, halo populations, data
//! volumes) into projected wall seconds and core-hours on the paper's
//! platforms, using the `simhpc` machine models plus two calibrated compute
//! constants:
//!
//! * `CENTER_COEFF` — seconds per particle² for the O(n²) MBP kernel on a
//!   Titan GPU node (anchored to the 25 M-particle halo: 10.6 h on
//!   Moonlight ≈ 5.8 h Titan-equivalent, paper §4.1);
//! * `FIND_SECONDS_PER_PARTICLE` — FOF identification seconds per local
//!   particle (anchored to the 1024³ run: ~361 s of in-situ analysis at
//!   33.5 M particles/node, of which the small-halo centers are ~20 s).
//!
//! Everything else (I/O, redistribution, charging, queueing) comes from the
//! `simhpc` facility models.

use crate::autosplit::plan_coschedule;
use crate::cost::{JobCost, PhaseSeconds, WorkflowCost};
use halo::massfn::{qcontinuum, MassFunction};
use halo::mbp::COEFF_TITAN_GPU;
use rand::SeedableRng;
use simhpc::{machine, MachineSpec};

/// FOF identification cost per local particle on Titan (seconds).
pub const FIND_SECONDS_PER_PARTICLE: f64 = 1.02e-5;

/// The projection model.
#[derive(Debug, Clone)]
pub struct TitanFrame {
    /// Main HPC system (Titan).
    pub titan: MachineSpec,
    /// The off-load analysis cluster (Moonlight).
    pub moonlight: MachineSpec,
    /// MBP center coefficient (s/particle²) on the Titan GPU path.
    pub center_coeff: f64,
    /// FOF cost (s/particle) on Titan.
    pub find_coeff: f64,
}

impl Default for TitanFrame {
    fn default() -> Self {
        TitanFrame {
            titan: machine::titan(),
            moonlight: machine::moonlight(),
            center_coeff: COEFF_TITAN_GPU,
            find_coeff: FIND_SECONDS_PER_PARTICLE,
        }
    }
}

/// A run to be projected (the paper's 1024³-on-32-nodes test by default).
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Total simulated particles.
    pub n_particles: u64,
    /// Nodes holding the simulation (and the in-situ analysis).
    pub sim_nodes: usize,
    /// Nodes of the post-processing job in the combined workflow.
    pub post_nodes: usize,
    /// Halo population (particle counts per halo).
    pub halo_sizes: Vec<u64>,
    /// The in-situ / off-line split threshold (particles).
    pub threshold: u64,
    /// Simulation wall seconds (common to all strategies; Table 4 anchor).
    pub sim_seconds: f64,
}

impl RunSpec {
    /// The paper's downscaled 1024³ test: population sampled from the
    /// Q Continuum mass function at 1/512 the volume, truncated at the run's
    /// actual largest halo (2,548,321 particles — a (162.5 Mpc)³ box cannot
    /// form the rarest extreme objects of the full 1300 Mpc volume; §4.2).
    pub fn small_run(seed: u64) -> RunSpec {
        let mf = MassFunction::q_continuum();
        let n_halos = (qcontinuum::TOTAL_HALOS / 512) as usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        const LARGEST_SMALL_RUN: u64 = 2_548_321;
        let halo_sizes = mf
            .sample_many(&mut rng, n_halos)
            .into_iter()
            .map(|m| m.min(LARGEST_SMALL_RUN))
            .collect();
        RunSpec {
            n_particles: 1u64 << 30, // 1024³
            sim_nodes: 32,
            post_nodes: 4,
            halo_sizes,
            threshold: qcontinuum::SPLIT_THRESHOLD,
            sim_seconds: 774.0,
        }
    }
}

/// Workload descriptor for the streaming in-situ visualization products:
/// one `ng × ng` density-projection frame per simulation step, shipped off
/// the simulation resource over the interconnect. The workload is
/// bandwidth-bound — the projection rides on a deposit mesh the simulation
/// maintains anyway, so its cost is the frame stream, priced per frame as a
/// point-to-point fetch on [`simhpc::InterconnectSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderProfile {
    /// Image mesh: frames are `ng × ng` 8-bit pixels.
    pub ng: usize,
    /// Frames emitted over the campaign (one per simulation step).
    pub frames: u64,
}

impl RenderProfile {
    /// The runner's cadence: every step of an `nsteps` campaign renders one
    /// frame at the given image mesh.
    pub fn every_step(ng: usize, nsteps: u64) -> RenderProfile {
        RenderProfile { ng, frames: nsteps }
    }

    /// Encoded size of one frame: the HCIM container header plus the PGM
    /// payload (text header + `ng²` 8-bit pixels).
    pub fn bytes_per_frame(&self) -> u64 {
        let pgm_header = format!("P5\n{0} {0}\n255\n", self.ng).len() as u64;
        cosmotools::IMAGE_HEADER_BYTES + pgm_header + (self.ng * self.ng) as u64
    }

    /// Total bytes streamed over the campaign.
    pub fn total_bytes(&self) -> u64 {
        self.frames * self.bytes_per_frame()
    }

    /// Wall seconds to stream the frame sequence across `net`: each frame
    /// travels as one point-to-point fetch (latency + bytes / per-node
    /// bandwidth), exactly how the sharded store charges replica pulls.
    pub fn stream_seconds(&self, net: &simhpc::InterconnectSpec) -> f64 {
        self.frames as f64 * net.fetch_time(self.bytes_per_frame() as f64)
    }
}

impl TitanFrame {
    /// FOF identification seconds for `n` particles over `nodes` (balanced —
    /// the paper's Table 2 shows ≤25% find imbalance, negligible next to the
    /// center imbalance).
    pub fn find_seconds(&self, n_particles: u64, nodes: usize) -> f64 {
        self.find_coeff * n_particles as f64 / nodes as f64
    }

    /// Center-finding seconds for one halo of `n` particles on a Titan GPU
    /// node.
    pub fn center_seconds(&self, n: u64) -> f64 {
        self.center_coeff * (n as f64) * (n as f64)
    }

    /// Distribute halos over `nodes` deterministically (hashed) and return
    /// per-node total center seconds, restricted to halos passing `keep`.
    pub fn per_node_center_seconds<F: Fn(u64) -> bool>(
        &self,
        halo_sizes: &[u64],
        nodes: usize,
        keep: F,
    ) -> Vec<f64> {
        let mut per_node = vec![0.0f64; nodes];
        for (i, &n) in halo_sizes.iter().enumerate() {
            if !keep(n) {
                continue;
            }
            // Spatial placement is effectively random: hash the halo index.
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(27)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            per_node[(h % nodes as u64) as usize] += self.center_seconds(n);
        }
        per_node
    }

    /// Level 2 particle count (members of halos above the threshold).
    pub fn level2_particles(&self, spec: &RunSpec) -> u64 {
        spec.halo_sizes
            .iter()
            .filter(|&&n| n > spec.threshold)
            .sum()
    }

    /// Project the three Table 3/4 workflows. Returns
    /// `[in-situ, off-line, combined-simple]`.
    pub fn workflow_costs(&self, spec: &RunSpec) -> [WorkflowCost; 3] {
        let t = &self.titan;
        let l1_bytes = cosmotools::level1_bytes(spec.n_particles) as f64;
        let l2_bytes = cosmotools::level2_bytes(self.level2_particles(spec)) as f64;
        let l3_bytes = cosmotools::level3_center_bytes(spec.halo_sizes.len() as u64) as f64;
        let find = self.find_seconds(spec.n_particles, spec.sim_nodes);
        let center_all_max = self
            .per_node_center_seconds(&spec.halo_sizes, spec.sim_nodes, |_| true)
            .into_iter()
            .fold(0.0, f64::max);
        let center_small_max = self
            .per_node_center_seconds(&spec.halo_sizes, spec.sim_nodes, |n| n <= spec.threshold)
            .into_iter()
            .fold(0.0, f64::max);

        // --- In-situ only ---
        let in_situ = WorkflowCost {
            strategy: "in-situ".into(),
            simulation: JobCost::new(
                "simulation",
                t,
                spec.sim_nodes,
                PhaseSeconds {
                    queuing: 0.0,
                    sim: spec.sim_seconds,
                    read: 0.0,
                    redistribute: 0.0,
                    analysis: find + center_all_max,
                    write: t.fs.io_time(l3_bytes, spec.sim_nodes),
                    fallback: 0.0,
                },
            ),
            post: vec![],
            saved_node_seconds: 0.0,
        };

        // --- Off-line only ---
        let queue_full = simhpc::QueuePolicy::titan().synthetic_wait(spec.sim_nodes, t.total_nodes);
        let off_line = WorkflowCost {
            strategy: "off-line".into(),
            simulation: JobCost::new(
                "simulation",
                t,
                spec.sim_nodes,
                PhaseSeconds {
                    queuing: 0.0,
                    sim: spec.sim_seconds,
                    read: 0.0,
                    redistribute: 0.0,
                    analysis: 0.0,
                    write: t.fs.io_time(l1_bytes, spec.sim_nodes),
                    fallback: 0.0,
                },
            ),
            post: vec![JobCost::new(
                "post-processing",
                t,
                spec.sim_nodes,
                PhaseSeconds {
                    queuing: queue_full,
                    sim: 0.0,
                    read: t.fs.io_time(l1_bytes, spec.sim_nodes),
                    redistribute: t.net.redistribute_time(l1_bytes, spec.sim_nodes),
                    analysis: find + center_all_max,
                    write: t.fs.io_time(l3_bytes, spec.sim_nodes),
                    fallback: 0.0,
                },
            )],
            saved_node_seconds: 0.0,
        };

        // --- Combined in-situ / off-line (simple variation) ---
        let offloaded: Vec<u64> = spec
            .halo_sizes
            .iter()
            .copied()
            .filter(|&n| n > spec.threshold)
            .collect();
        // Off-loaded halos are packed onto the post job's nodes (LPT).
        let post_center_max = plan_coschedule(&offloaded)
            .map(|plan| {
                // Repack onto exactly post_nodes ranks.
                let mut rank_secs = vec![0.0f64; spec.post_nodes];
                let mut order: Vec<f64> =
                    offloaded.iter().map(|&n| self.center_seconds(n)).collect();
                order.sort_by(|a, b| b.partial_cmp(a).unwrap());
                for s in order {
                    let r = rank_secs
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .map(|(r, _)| r)
                        .unwrap();
                    rank_secs[r] += s;
                }
                let _ = plan;
                rank_secs.into_iter().fold(0.0, f64::max)
            })
            .unwrap_or(0.0);
        let queue_partial =
            simhpc::QueuePolicy::titan().synthetic_wait(spec.post_nodes, t.total_nodes);
        let combined = WorkflowCost {
            strategy: "combined in-situ/off-line (simple)".into(),
            simulation: JobCost::new(
                "simulation",
                t,
                spec.sim_nodes,
                PhaseSeconds {
                    queuing: 0.0,
                    sim: spec.sim_seconds,
                    read: 0.0,
                    redistribute: 0.0,
                    analysis: find + center_small_max,
                    write: t.fs.io_time(l2_bytes + l3_bytes, spec.sim_nodes),
                    fallback: 0.0,
                },
            ),
            post: vec![JobCost::new(
                "post-processing",
                t,
                spec.post_nodes,
                PhaseSeconds {
                    queuing: queue_partial,
                    sim: 0.0,
                    read: t.fs.io_time(l2_bytes, spec.post_nodes),
                    redistribute: t.net.redistribute_time(l2_bytes, spec.post_nodes),
                    analysis: post_center_max,
                    write: t.fs.io_time(l3_bytes, spec.post_nodes),
                    fallback: 0.0,
                },
            )],
            saved_node_seconds: 0.0,
        };

        [in_situ, off_line, combined]
    }

    /// All five Table 3 rows: the three concrete strategies plus the
    /// co-scheduled and in-transit variations of the combined workflow.
    ///
    /// * **co-scheduled** — identical phase costs to the simple variation
    ///   (Table 3: "(same)" core-hours); the difference is queueing: each
    ///   snapshot's analysis job is submitted as its Level 2 file appears and
    ///   runs simultaneously with the simulation, so the post job's queue
    ///   wait shrinks to an analysis-cluster-style prompt start.
    /// * **in-transit** — the hypothetical shared-memory variation: no
    ///   Level 2 file I/O at all, only the Level 2 redistribution onto the
    ///   analysis resource.
    pub fn workflow_costs_all(&self, spec: &RunSpec) -> Vec<WorkflowCost> {
        let [in_situ, off_line, combined] = self.workflow_costs(spec);
        let t = &self.titan;

        let mut co_scheduled = combined.clone();
        co_scheduled.strategy = "combined in-situ/off-line (co-scheduled)".into();
        for post in &mut co_scheduled.post {
            // Submitted automatically as data appears; prompt start on a
            // cluster with capacity (Rhea-style policy).
            post.phases.queuing = simhpc::QueuePolicy::analysis_cluster()
                .synthetic_wait(spec.post_nodes, t.total_nodes);
        }

        let mut in_transit = combined.clone();
        in_transit.strategy = "combined in-situ/in-transit".into();
        // No Level 2 *file* I/O on either side; data crosses through the
        // burst-buffer tier (NVRAM-class) and still needs redistribution on
        // the analysis resource.
        let bb_machine = simhpc::machine::titan_with_burst_buffer();
        let bb = bb_machine.burst_buffer.as_ref().expect("preset has one");
        let l2_bytes = cosmotools::level2_bytes(self.level2_particles(spec)) as f64;
        let l3_bytes = cosmotools::level3_center_bytes(spec.halo_sizes.len() as u64) as f64;
        in_transit.simulation.phases.write = t.fs.io_time(l3_bytes, spec.sim_nodes)
            + bb.stage_time(l2_bytes, spec.sim_nodes).expect("fits NVRAM");
        for post in &mut in_transit.post {
            post.phases.queuing = 0.0;
            post.phases.read = bb
                .stage_time(l2_bytes, spec.post_nodes)
                .expect("fits NVRAM");
        }

        vec![in_situ, off_line, combined, co_scheduled, in_transit]
    }

    /// The combined workflow with its post-processing job on a different
    /// machine (paper §4.2: Rhea has queue capacity but no GPUs, so "the
    /// lack of GPUs slowed down the center finding considerably"; Moonlight
    /// has GPUs at 0.55× Titan speed).
    ///
    /// Kernel time scales by the ratio of the machines' analysis speeds
    /// (GPU path where available); I/O and queueing use the target machine's
    /// own models.
    pub fn combined_on_machine(&self, spec: &RunSpec, machine: &MachineSpec) -> WorkflowCost {
        let [_, _, mut combined] = self.workflow_costs(spec);
        combined.strategy = format!("combined in-situ/off-line (post on {})", machine.name);
        let speed_ratio = self.titan.analysis_speed() / machine.analysis_speed();
        let l2_bytes = cosmotools::level2_bytes(self.level2_particles(spec)) as f64;
        let l3_bytes = cosmotools::level3_center_bytes(spec.halo_sizes.len() as u64) as f64;
        for post in &mut combined.post {
            post.machine = machine.name.clone();
            post.charge_factor = machine.charge_factor;
            post.phases.analysis *= speed_ratio;
            post.phases.read = machine.fs.io_time(l2_bytes, spec.post_nodes);
            post.phases.redistribute = machine.net.redistribute_time(l2_bytes, spec.post_nodes);
            post.phases.write = machine.fs.io_time(l3_bytes, spec.post_nodes);
            post.phases.queuing = simhpc::QueuePolicy::analysis_cluster()
                .synthetic_wait(spec.post_nodes, machine.total_nodes);
        }
        combined
    }

    /// Mean time-to-result for a multi-snapshot campaign: the average time
    /// (from simulation start) at which each snapshot's analysis completes.
    /// Co-scheduling lets early snapshots finish while the simulation still
    /// runs — "the scientist may have to wait a shorter time for his/her
    /// results" (§4.2) — while the total core-hours stay the same.
    pub fn campaign_mean_result_time(
        &self,
        spec: &RunSpec,
        n_snapshots: usize,
        co_scheduled: bool,
    ) -> f64 {
        let [_, _, combined] = self.workflow_costs(spec);
        let post = &combined.post[0];
        let snap_interval = spec.sim_seconds;
        let sim_total = snap_interval * n_snapshots as f64
            + combined.simulation.phases.analysis * n_snapshots as f64;
        let mut m = self.titan.clone();
        m.total_nodes = m.total_nodes.min(2048);
        let mut policy = simhpc::QueuePolicy::titan();
        policy.base_wait = 0.0;
        policy.max_running_small_jobs = None;
        let mut sim = simhpc::BatchSimulator::new(m, policy);
        sim.submit(simhpc::JobRequest::new(
            "simulation",
            spec.sim_nodes,
            sim_total,
            0.0,
        ));
        let per_snap = sim_total / n_snapshots as f64;
        for i in 0..n_snapshots {
            let ready = if co_scheduled {
                per_snap * (i as f64 + 1.0)
            } else {
                sim_total // everything queued after the run completes
            };
            sim.submit(simhpc::JobRequest::new(
                format!("analysis{i}"),
                spec.post_nodes,
                post.phases.total(),
                ready,
            ));
        }
        let recs = sim.run_to_completion();
        let analysis: Vec<f64> = recs
            .iter()
            .filter(|r| r.name.starts_with("analysis"))
            .map(|r| r.end_time)
            .collect();
        analysis.iter().sum::<f64>() / analysis.len().max(1) as f64
    }
}

/// §4.1 Q Continuum projection summary.
#[derive(Debug, Clone, PartialEq)]
pub struct QContinuumSummary {
    /// Find time on 16,384 Titan nodes (hours) — the paper's ~1 h.
    pub find_hours: f64,
    /// In-situ center time for the 99.9% small halos (seconds/node max).
    pub small_center_seconds: f64,
    /// Projected center time of the largest halo (Titan GPU hours) — the
    /// "slowest block" that would gate a full in-situ analysis (~5.9 h).
    pub largest_halo_hours: f64,
    /// Core-hours of the hypothetical full in-situ analysis.
    pub full_in_situ_core_hours: f64,
    /// Core-hours of the combined approach actually taken (~0.52 M).
    pub combined_core_hours: f64,
    /// Cost ratio full-in-situ / combined (~6.5×).
    pub cost_factor: f64,
    /// Off-loaded center work in Moonlight node-hours (paper: 1770,
    /// including per-job overheads we do not model; see EXPERIMENTS.md).
    pub moonlight_node_hours: f64,
}

/// Expected Σ center-seconds over halos in `(lo, hi]` for a population of
/// `n_total` halos under `mf`, via the tabulated distribution.
pub fn expected_center_seconds(
    frame: &TitanFrame,
    mf: &MassFunction,
    n_total: u64,
    lo: f64,
    hi: f64,
) -> f64 {
    // Integrate c·m² over the tabulated mass distribution by sampling the
    // analytic tail differences on a log grid.
    let steps = 2048;
    let lmin = mf.m_min.max(lo.max(1.0)).ln();
    let lmax = hi.ln();
    if lmax <= lmin {
        return 0.0;
    }
    let mut acc = 0.0;
    let mut prev_frac = mf.fraction_above(lmin.exp());
    for i in 1..=steps {
        let m1 = (lmin + (lmax - lmin) * i as f64 / steps as f64).exp();
        let frac1 = mf.fraction_above(m1);
        let dp = (prev_frac - frac1).max(0.0); // probability mass in the bin
        let m_mid = (lmin + (lmax - lmin) * (i as f64 - 0.5) / steps as f64).exp();
        acc += dp * frame.center_seconds(m_mid.round() as u64);
        prev_frac = frac1;
    }
    acc * n_total as f64
}

/// Project the Q Continuum §4.1 numbers from the calibrated mass function.
pub fn qcontinuum_projection(frame: &TitanFrame) -> QContinuumSummary {
    let mf = MassFunction::q_continuum();
    let nodes = qcontinuum::TITAN_NODES as usize;
    let n_total = qcontinuum::TOTAL_HALOS;
    let threshold = qcontinuum::SPLIT_THRESHOLD as f64;
    let largest = qcontinuum::LARGEST_HALO;

    // Find: the paper reports ~1 h on 16,384 nodes for the final step.
    let find_hours = 1.0;
    // Small halos (≤300k): expected total across the machine, per node.
    let small_total = expected_center_seconds(frame, &mf, n_total, mf.m_min, threshold);
    let small_center_seconds = small_total / nodes as f64;
    // The largest halo gates a full in-situ analysis.
    let largest_halo_hours = frame.center_seconds(largest) / 3600.0;
    let charge = frame.titan.charge_factor;
    let full_in_situ_core_hours = (largest_halo_hours + find_hours) * nodes as f64 * charge;

    // Combined: find + small centers on Titan, large halos on Moonlight.
    let titan_part = (find_hours + small_center_seconds / 3600.0) * nodes as f64 * charge;
    let tail_total = expected_center_seconds(frame, &mf, n_total, threshold, largest as f64 * 4.0);
    let moonlight_node_hours = tail_total / frame.moonlight.node_speed / 3600.0;
    // The paper charges the Moonlight work at ~30 core-hours/node-hour
    // Titan-equivalent (985 node-h → "~30,000 core hours").
    let offload_core_hours = (tail_total / 3600.0) * charge;
    let combined_core_hours = titan_part + offload_core_hours;

    QContinuumSummary {
        find_hours,
        small_center_seconds,
        largest_halo_hours,
        full_in_situ_core_hours,
        combined_core_hours,
        cost_factor: full_in_situ_core_hours / combined_core_hours,
        moonlight_node_hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_population_matches_paper_scale() {
        let spec = RunSpec::small_run(7);
        // 167,686,789 / 512 halos.
        assert_eq!(spec.halo_sizes.len(), 327_513);
        let largest = *spec.halo_sizes.iter().max().unwrap();
        // Paper: largest halo in the downscaled run = 2,548,321 particles.
        assert!(
            (800_000..8_000_000).contains(&largest),
            "largest sampled halo {largest}"
        );
        // Level 2 fraction: Table 1 suggests ~1/8 of particles for 1024³.
        let frame = TitanFrame::default();
        let l2 = frame.level2_particles(&spec);
        let frac = l2 as f64 / spec.n_particles as f64;
        assert!((0.01..0.35).contains(&frac), "Level 2 fraction {frac}");
    }

    #[test]
    fn find_is_balanced_center_is_not() {
        let frame = TitanFrame::default();
        let spec = RunSpec::small_run(7);
        let per_node = frame.per_node_center_seconds(&spec.halo_sizes, spec.sim_nodes, |_| true);
        let max = per_node.iter().cloned().fold(0.0, f64::max);
        let min = per_node.iter().cloned().fold(f64::INFINITY, f64::min);
        // Paper: factor ~15 imbalance between fastest and slowest node.
        assert!(max / min.max(1e-9) > 4.0, "center imbalance {max}/{min}");
    }

    #[test]
    fn in_situ_analysis_near_722s_anchor() {
        let frame = TitanFrame::default();
        let spec = RunSpec::small_run(7);
        let [in_situ, _, combined] = frame.workflow_costs(&spec);
        let a = in_situ.simulation.phases.analysis;
        assert!(
            (400.0..1100.0).contains(&a),
            "in-situ analysis {a} s (paper: 722 s)"
        );
        let c = combined.simulation.phases.analysis;
        assert!(
            (250.0..550.0).contains(&c),
            "combined in-situ analysis {c} s (paper: 361 s)"
        );
        assert!(c < a, "the split must cut the in-situ time");
    }

    #[test]
    fn table3_cost_ordering_holds() {
        let frame = TitanFrame::default();
        let spec = RunSpec::small_run(7);
        let [in_situ, off_line, combined] = frame.workflow_costs(&spec);
        let ci = in_situ.analysis_core_hours();
        let co = off_line.analysis_core_hours();
        let cc = combined.analysis_core_hours();
        // Paper Table 3: 193 / 356 / 135.
        assert!(
            cc < ci && ci < co,
            "combined {cc} < in-situ {ci} < off-line {co}"
        );
        assert!(co / ci > 1.4, "off-line should cost ≳1.5× in-situ");
        assert!(cc / ci < 0.85, "combined should save ≳15% vs in-situ");
    }

    #[test]
    fn offline_io_matches_table4_order() {
        let frame = TitanFrame::default();
        let spec = RunSpec::small_run(7);
        let [_, off_line, _] = frame.workflow_costs(&spec);
        let p = &off_line.post[0].phases;
        // Table 4: read 5 s, redistribute 435 s for Level 1 on 32 nodes.
        assert!((2.0..20.0).contains(&p.read), "read {}", p.read);
        assert!(
            (300.0..550.0).contains(&p.redistribute),
            "redistribute {}",
            p.redistribute
        );
    }

    #[test]
    fn combined_post_uses_few_nodes_and_level2() {
        let frame = TitanFrame::default();
        let spec = RunSpec::small_run(7);
        let [_, off_line, combined] = frame.workflow_costs(&spec);
        assert_eq!(combined.post[0].nodes, 4);
        // Level 2 I/O is far cheaper than Level 1.
        assert!(combined.post[0].phases.read < off_line.post[0].phases.read + 10.0);
        // Redistribution moves 5-8x less data, but on 8x fewer nodes; under
        // the per-node-bandwidth model the wall time is comparable (the
        // paper measured 75 s vs 435 s here — see EXPERIMENTS.md for the
        // discrepancy discussion). It must at least not be worse.
        assert!(combined.post[0].phases.redistribute <= off_line.post[0].phases.redistribute * 1.1);
        // Queue request is partial vs full.
        assert!(combined.post[0].phases.queuing < off_line.post[0].phases.queuing);
    }

    #[test]
    fn all_five_table3_rows_have_the_right_relationships() {
        let frame = TitanFrame::default();
        let spec = RunSpec::small_run(7);
        let all = frame.workflow_costs_all(&spec);
        assert_eq!(all.len(), 5);
        let simple = &all[2];
        let cosched = &all[3];
        let intransit = &all[4];
        // Co-scheduled: same core-hours as simple (Table 3 "(same)"), less
        // queue waiting.
        assert!((cosched.analysis_core_hours() - simple.analysis_core_hours()).abs() < 1e-6);
        assert!(cosched.post[0].phases.queuing < simple.post[0].phases.queuing);
        // In-transit: the Level 2 hand-off goes through NVRAM instead of the
        // file system — far cheaper than the disk read, and no queue wait.
        assert!(intransit.post[0].phases.read < simple.post[0].phases.read / 2.0);
        assert_eq!(intransit.post[0].phases.queuing, 0.0);
        assert!(intransit.simulation.phases.write < simple.simulation.phases.write);
        assert!(intransit.analysis_core_hours() <= simple.analysis_core_hours());
    }

    #[test]
    fn rhea_without_gpus_is_much_slower_moonlight_is_close() {
        let frame = TitanFrame::default();
        let spec = RunSpec::small_run(7);
        let on_titan = frame.combined_on_machine(&spec, &frame.titan);
        let on_rhea = frame.combined_on_machine(&spec, &machine::rhea());
        let on_moonlight = frame.combined_on_machine(&spec, &machine::moonlight());
        // Rhea's CPU-only center finding is ~dozens of times slower (the
        // paper declined to report timings from it for this reason).
        assert!(
            on_rhea.post[0].phases.analysis > 20.0 * on_titan.post[0].phases.analysis,
            "rhea {} vs titan {}",
            on_rhea.post[0].phases.analysis,
            on_titan.post[0].phases.analysis
        );
        // Moonlight runs the same kernel at 0.55× Titan speed.
        let ratio = on_moonlight.post[0].phases.analysis / on_titan.post[0].phases.analysis;
        assert!((ratio - 1.0 / 0.55).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn coscheduling_shortens_time_to_science() {
        let frame = TitanFrame::default();
        let spec = RunSpec::small_run(7);
        let after = frame.campaign_mean_result_time(&spec, 10, false);
        let overlapped = frame.campaign_mean_result_time(&spec, 10, true);
        assert!(
            overlapped < 0.8 * after,
            "co-scheduled results must arrive substantially sooner on average: \
             {overlapped} vs {after}"
        );
    }

    #[test]
    fn render_stream_is_bandwidth_priced_on_the_interconnect() {
        let frame = TitanFrame::default();
        let prof = RenderProfile::every_step(512, 500);
        // A 512×512 8-bit frame: PGM header + pixels + HCIM header.
        let per = prof.bytes_per_frame();
        assert_eq!(
            per,
            cosmotools::IMAGE_HEADER_BYTES + "P5\n512 512\n255\n".len() as u64 + 512 * 512
        );
        assert_eq!(prof.total_bytes(), 500 * per);
        // Priced per frame on the machine's interconnect: every frame pays
        // the link latency plus its wire time.
        let secs = prof.stream_seconds(&frame.titan.net);
        assert_eq!(secs, 500.0 * frame.titan.net.fetch_time(per as f64));
        assert!(secs > 0.0);
        // Monotone in both frame count and image mesh.
        assert!(RenderProfile::every_step(512, 1000).stream_seconds(&frame.titan.net) > secs);
        assert!(RenderProfile::every_step(1024, 500).stream_seconds(&frame.titan.net) > secs);
        // Zero frames stream for free.
        assert_eq!(
            RenderProfile::every_step(512, 0).stream_seconds(&frame.titan.net),
            0.0
        );
    }

    #[test]
    fn qcontinuum_headline_factor() {
        let frame = TitanFrame::default();
        let q = qcontinuum_projection(&frame);
        // Slowest block ≈ 5.8 h; paper says 5.9 h.
        assert!((5.0..6.5).contains(&q.largest_halo_hours), "{q:?}");
        // Full in-situ ≈ 3.4 M core-hours.
        assert!(
            (2.5e6..4.5e6).contains(&q.full_in_situ_core_hours),
            "{:.3e}",
            q.full_in_situ_core_hours
        );
        // Combined ≈ 0.52 M core-hours.
        assert!(
            (0.4e6..0.8e6).contains(&q.combined_core_hours),
            "{:.3e}",
            q.combined_core_hours
        );
        // Headline: a factor ≈ 6.5 (we accept 4–9).
        assert!(
            (4.0..9.0).contains(&q.cost_factor),
            "factor {}",
            q.cost_factor
        );
        // Small halos' centers take ~a minute per node (paper: "just over
        // one minute").
        assert!(q.small_center_seconds < 300.0, "{}", q.small_center_seconds);
    }
}
