//! Real end-to-end execution of the three workflows (paper §4.2) on an
//! actual (downscaled) simulation: the same algorithms, the same data
//! movement, real files on disk, a real listener — measured in local wall
//! seconds. The `model` module projects the same structure onto the paper's
//! platforms; this module proves the plumbing works and exhibits the same
//! qualitative trade-offs.

use crate::cost::PhaseSeconds;
use crate::listener::{CacheGate, Listener, ListenerConfig};
use cache::{ArtifactCache, CacheKey, Digest, Fingerprint, FingerprintBuilder};
use comm::{redistribute, CartDecomp, World};
use cosmotools::{
    centers_from_catalog, centers_from_level2, merge_center_sets, write_level2_container,
    CenterRecord, Container, SnapshotMeta,
};
use dpp::Backend;
use faults::{BackoffPolicy, FaultInjector, FaultKind};
use halo::{fof_and_centers_timed, FofConfig, HaloCatalog, RankTiming};
use nbody::{Particle, SimConfig, Simulation};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// The fault site consulted before each in-situ analysis step of the
/// co-scheduled workflow.
pub const RUNNER_FAULT_SITE: &str = "runner.insitu";

/// The fault site consulted before each in-situ visualization frame is
/// rendered and emitted by the co-scheduled workflow.
pub const RENDER_FAULT_SITE: &str = "render.emit";

/// Configuration of a real workflow comparison run.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Simulation setup (box, particle count, steps).
    pub sim: SimConfig,
    /// Virtual node (rank) count for the distributed analysis.
    pub nranks: usize,
    /// Post-processing rank count for the combined workflow.
    pub post_ranks: usize,
    /// FOF linking length in mean interparticle spacings.
    pub linking_length: f64,
    /// Minimum halo size kept.
    pub min_size: usize,
    /// In-situ / off-line split threshold (particles).
    pub threshold: usize,
    /// Potential softening.
    pub softening: f64,
    /// Scratch directory for the Level 1/2 files.
    pub workdir: PathBuf,
    /// Fault injector consulted at [`RUNNER_FAULT_SITE`]; `None` falls back
    /// to the globally installed injector (usually none — no faults).
    pub injector: Option<Arc<FaultInjector>>,
    /// Retry policy for transient in-situ analysis failures.
    pub insitu_retry: BackoffPolicy,
    /// Artifact cache for incremental re-execution: off-line analysis steps
    /// are memoized under `(operation, input digest, config fingerprint)`
    /// keys, so re-running a strategy over unchanged inputs reuses the
    /// existing Level 3 products instead of recomputing them. `None`
    /// disables memoization (every run computes from scratch).
    pub cache: Option<Arc<ArtifactCache>>,
    /// In-situ visualization: when set, the co-scheduled workflow renders a
    /// density projection frame at *every* simulation step (the render
    /// workload is bandwidth-bound, not compute-bound) into
    /// `workdir/coscheduled/render/`. `None` disables rendering entirely —
    /// zero behavior change for halo-only runs.
    pub render: Option<cosmotools::RenderParams>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            sim: SimConfig {
                np: 32,
                ng: 32,
                nsteps: 30,
                ..SimConfig::default()
            },
            nranks: 8,
            post_ranks: 2,
            linking_length: 0.2,
            min_size: 20,
            threshold: 200,
            softening: 1e-3,
            workdir: std::env::temp_dir().join(format!("hacc_runner_{}", std::process::id())),
            injector: None,
            insitu_retry: BackoffPolicy {
                base_seconds: 0.001,
                factor: 2.0,
                max_delay_seconds: 0.05,
                max_attempts: 5,
            },
            cache: None,
            render: None,
        }
    }
}

impl RunnerConfig {
    /// FOF configuration derived from the run.
    pub fn fof(&self) -> FofConfig {
        let l = self.sim.cosmology.box_size;
        let np = self.sim.np as f64;
        let link = self.linking_length * l / np;
        let decomp = CartDecomp::new(self.nranks, l);
        FofConfig {
            link_length: link,
            min_size: self.min_size,
            // As wide as feasible: FOF chains can stretch far beyond a
            // virial radius, and the overload shell must cover the largest
            // halo extent (paper §3.3.1).
            overload_width: (25.0 * link).min(0.45 * decomp.min_block_width()),
        }
    }

    /// Decide a fault at `site`: the explicit injector when configured,
    /// otherwise the global one.
    fn fault(&self, site: &str) -> Option<FaultKind> {
        match &self.injector {
            Some(inj) => inj.check(site),
            None => faults::poll(site),
        }
    }

    /// Fingerprint of every parameter that shapes an analysis result. Two
    /// configs with the same *input bytes* but, say, a different linking
    /// length or threshold produce disjoint cache keys — changed parameters
    /// can never alias a stale artifact.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut fp = FingerprintBuilder::new();
        fp.push_str("runner-analysis-v1")
            .push_u64(self.sim.np as u64)
            .push_u64(self.sim.ng as u64)
            .push_u64(self.sim.nsteps as u64)
            .push_u64(self.sim.seed)
            .push_f64(self.sim.z_init)
            .push_f64(self.sim.z_final)
            .push_f64(self.sim.cosmology.omega_m)
            .push_f64(self.sim.cosmology.h)
            .push_f64(self.sim.cosmology.ns)
            .push_f64(self.sim.cosmology.sigma_cell)
            .push_f64(self.sim.cosmology.box_size)
            .push_u64(self.nranks as u64)
            .push_u64(self.post_ranks as u64)
            .push_f64(self.linking_length)
            .push_u64(self.min_size as u64)
            .push_u64(self.threshold as u64)
            .push_f64(self.softening);
        // Render parameters shape the frame artifacts; fold them in only
        // when rendering is on so halo-only runs keep their historical keys.
        if let Some(rp) = &self.render {
            fp.push_str("render-v1")
                .push_u64(rp.ng as u64)
                .push_u64(rp.axis.code() as u64)
                .push_u64(rp.byte_budget)
                .push_u64(rp.lod_seed);
        }
        fp.finish()
    }

    /// Cache key for the analysis of one input artifact under this config.
    fn cache_key(&self, op: &str, input: Digest) -> CacheKey {
        CacheKey::compose(op, input, self.fingerprint())
    }
}

/// Serialize a memoized analysis result: the wall seconds the original
/// computation took (so a hit can be credited as saved node-seconds in the
/// cost report) followed by the fixed-width center records.
fn encode_memo(seconds: f64, centers: &[CenterRecord]) -> Vec<u8> {
    let mut out = seconds.to_bits().to_le_bytes().to_vec();
    out.extend_from_slice(&cosmotools::encode_centers(centers));
    out
}

/// Inverse of [`encode_memo`]; `None` on a malformed payload (the caller
/// falls back to recomputing — a bad memo must never poison a catalog).
fn decode_memo(bytes: &[u8]) -> Option<(f64, Vec<CenterRecord>)> {
    let secs_bytes: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
    let seconds = f64::from_bits(u64::from_le_bytes(secs_bytes));
    Some((seconds, cosmotools::decode_centers(&bytes[8..])?))
}

/// Look up and decode a memo; a verified hit with an undecodable payload is
/// treated as a miss (the artifact belongs to something else entirely).
fn memo_lookup(cache: &ArtifactCache, key: CacheKey) -> Option<(f64, Vec<CenterRecord>)> {
    cache.lookup(key).and_then(|bytes| decode_memo(&bytes))
}

/// Result of executing one workflow for real.
#[derive(Debug, Clone)]
pub struct WorkflowRun {
    /// Strategy label.
    pub strategy: String,
    /// Measured phase wall seconds (local machine).
    pub phases: PhaseSeconds,
    /// The complete, merged center set (Level 3 output).
    pub centers: Vec<CenterRecord>,
    /// Per-rank find/center timings of the main analysis.
    pub rank_timings: Vec<RankTiming>,
    /// For co-scheduled runs: analysis jobs that started before the
    /// simulation finished.
    pub overlapped_jobs: usize,
    /// Analysis steps where in-situ processing failed and the workflow fell
    /// back to re-shipping the last good Level-2 output (graceful
    /// degradation; zero on a fault-free run).
    pub degraded_steps: usize,
    /// Transient in-situ analysis failures absorbed by retries.
    pub insitu_retries: u64,
    /// Thread-pool dispatches issued while this strategy ran (zero for
    /// pool-less backends such as `dpp::Serial`).
    pub pool_dispatches: u64,
    /// Wall seconds spent inside pool dispatches while this strategy ran —
    /// the measured counterpart of the cost model's analysis phase, fed by
    /// the pool's `dispatches` / `dispatch_nanos` counters.
    pub dispatch_overhead_seconds: f64,
    /// Off-line analysis steps answered from the artifact cache.
    pub cache_hits: u64,
    /// Off-line analysis steps that had to compute (and, with a cache
    /// configured, were memoized for next time).
    pub cache_misses: u64,
    /// Wall seconds of analysis the cache hits replaced — what the original
    /// computation of each reused artifact cost when it first ran. Reported
    /// to the cost model as saved node-seconds.
    pub saved_analysis_seconds: f64,
    /// Wall seconds spent rendering and emitting visualization frames
    /// (zero unless [`RunnerConfig::render`] is set on a co-scheduled run).
    pub render_seconds: f64,
    /// Bytes of encoded image frames emitted (HCIM header + PGM payload).
    pub render_bytes: u64,
    /// Visualization frames emitted (computed + cache-replayed).
    pub frames_rendered: u64,
    /// Frames whose encoded bytes were replayed from the artifact cache
    /// instead of being re-rendered.
    pub render_cache_hits: u64,
}

/// Pool-counter delta for a region of work: dispatches issued and wall
/// seconds spent inside them since `before` was snapshotted.
fn pool_delta(backend: &dyn Backend, before: dpp::PoolStats) -> (u64, f64) {
    let d = backend
        .pool_stats()
        .unwrap_or_default()
        .delta_since(&before);
    (d.dispatches, d.total_dispatch_nanos as f64 * 1e-9)
}

/// The shared testbed: one finished simulation reused by every strategy.
pub struct TestBed {
    /// Configuration.
    pub cfg: RunnerConfig,
    /// Final-step particles (Level 1 in memory).
    pub particles: Vec<Particle>,
    /// Wall seconds the simulation itself took.
    pub sim_seconds: f64,
    /// Snapshot metadata.
    pub meta: SnapshotMeta,
}

impl TestBed {
    /// Run the simulation once.
    pub fn create(cfg: RunnerConfig, backend: &dyn Backend) -> TestBed {
        std::fs::create_dir_all(&cfg.workdir).expect("create workdir");
        let t0 = Instant::now();
        let mut sim = Simulation::new(backend, cfg.sim.clone());
        sim.run(backend);
        let sim_seconds = t0.elapsed().as_secs_f64();
        let meta = SnapshotMeta {
            step: sim.step_index() as u64,
            redshift: sim.redshift(),
            box_size: cfg.sim.cosmology.box_size,
        };
        TestBed {
            particles: sim.particles().to_vec(),
            cfg,
            sim_seconds,
            meta,
        }
    }

    fn decomp(&self) -> CartDecomp {
        CartDecomp::new(self.cfg.nranks, self.cfg.sim.cosmology.box_size)
    }

    /// Rank-local particle sets (the "already distributed in memory" state).
    pub fn distributed(&self) -> Vec<Vec<Particle>> {
        let decomp = self.decomp();
        let mut per_rank: Vec<Vec<Particle>> = vec![Vec::new(); self.cfg.nranks];
        for p in &self.particles {
            per_rank[decomp.owner_of(p.pos_f64())].push(*p);
        }
        per_rank
    }

    /// Distributed FOF + centers up to `threshold`; returns per-rank
    /// catalogs and timings.
    fn analyze(
        &self,
        per_rank: &[Vec<Particle>],
        threshold: usize,
        backend: &dyn Backend,
    ) -> (Vec<HaloCatalog>, Vec<RankTiming>) {
        let decomp = self.decomp();
        let fof = self.cfg.fof();
        let world = World::new(self.cfg.nranks);
        let softening = self.cfg.softening;
        let results = world.run(|c| {
            fof_and_centers_timed(
                c,
                &decomp,
                &per_rank[c.rank()],
                &fof,
                backend,
                softening,
                threshold,
            )
        });
        results.into_iter().unzip()
    }

    /// Strategy 1: everything in situ (no I/O, no redistribution).
    pub fn run_in_situ_only(&self, backend: &dyn Backend) -> WorkflowRun {
        let _span = telemetry::span!("runner", "in_situ_only");
        let pool0 = backend.pool_stats().unwrap_or_default();
        let per_rank = self.distributed();
        let t0 = Instant::now();
        let (catalogs, timings) = self.analyze(&per_rank, usize::MAX, backend);
        let analysis = t0.elapsed().as_secs_f64();
        let centers = collect_centers(&catalogs);
        let (pool_dispatches, dispatch_overhead_seconds) = pool_delta(backend, pool0);
        WorkflowRun {
            strategy: "in-situ".into(),
            phases: PhaseSeconds {
                sim: self.sim_seconds,
                analysis,
                ..Default::default()
            },
            centers,
            rank_timings: timings,
            overlapped_jobs: 0,
            degraded_steps: 0,
            insitu_retries: 0,
            pool_dispatches,
            dispatch_overhead_seconds,
            cache_hits: 0,
            cache_misses: 0,
            saved_analysis_seconds: 0.0,
            render_seconds: 0.0,
            render_bytes: 0,
            frames_rendered: 0,
            render_cache_hits: 0,
        }
    }

    /// Strategy 2: write Level 1 to disk, read it back, redistribute, then
    /// analyze everything off-line.
    ///
    /// With [`RunnerConfig::cache`] set, the whole post-processing stage is
    /// memoized under the Level 1 file's content digest: a re-run over
    /// unchanged inputs skips read, redistribution, and analysis entirely
    /// and reuses the stored Level 3 centers.
    pub fn run_offline_only(&self, backend: &dyn Backend) -> WorkflowRun {
        let _span = telemetry::span!("runner", "offline_only");
        let pool0 = backend.pool_stats().unwrap_or_default();
        let path = self.cfg.workdir.join("level1.hcio");
        // Simulation side: write Level 1 (one block per rank), stamped with
        // its content digest — the cache identity of this input.
        let t_w = Instant::now();
        let container = Container {
            meta: self.meta.clone(),
            blocks: self.distributed(),
        };
        let l1_digest = cosmotools::write_file_digest(&path, &container).expect("write level 1");
        let write = t_w.elapsed().as_secs_f64();

        // Cache consultation: an existing, verified artifact for exactly
        // this input and configuration replaces the whole post job.
        if let Some(c) = &self.cfg.cache {
            let key = self.cfg.cache_key("offline_analysis", l1_digest);
            if let Some((saved, centers)) = memo_lookup(c, key) {
                let (pool_dispatches, dispatch_overhead_seconds) = pool_delta(backend, pool0);
                return WorkflowRun {
                    strategy: "off-line".into(),
                    phases: PhaseSeconds {
                        sim: self.sim_seconds,
                        write,
                        ..Default::default()
                    },
                    centers,
                    rank_timings: Vec::new(),
                    overlapped_jobs: 0,
                    degraded_steps: 0,
                    insitu_retries: 0,
                    pool_dispatches,
                    dispatch_overhead_seconds,
                    cache_hits: 1,
                    cache_misses: 0,
                    saved_analysis_seconds: saved,
                    render_seconds: 0.0,
                    render_bytes: 0,
                    frames_rendered: 0,
                    render_cache_hits: 0,
                };
            }
        }

        // Post-processing job: read, redistribute, analyze.
        let t_r = Instant::now();
        let read_back = cosmotools::read_file(&path)
            .expect("io")
            .expect("valid level 1 container");
        let read = t_r.elapsed().as_secs_f64();

        // The file's blocks land on ranks round-robin (as if freshly read by
        // a different job), then get redistributed to spatial owners.
        let t_d = Instant::now();
        let decomp = self.decomp();
        let nranks = self.cfg.nranks;
        let blocks = read_back.blocks;
        let world = World::new(nranks);
        let per_rank: Vec<Vec<Particle>> = world.run(|c| {
            // Round-robin initial placement.
            let mine: Vec<Particle> = blocks
                .iter()
                .enumerate()
                .filter(|(i, _)| i % nranks == c.rank())
                .flat_map(|(_, b)| b.iter().copied())
                .collect();
            redistribute(c, &decomp, mine)
        });
        let redistribute_s = t_d.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let (catalogs, timings) = self.analyze(&per_rank, usize::MAX, backend);
        let analysis = t0.elapsed().as_secs_f64();
        let centers = collect_centers(&catalogs);
        // Memoize what a future hit will skip: the whole post job.
        let mut cache_misses = 0;
        if let Some(c) = &self.cfg.cache {
            cache_misses = 1;
            let key = self.cfg.cache_key("offline_analysis", l1_digest);
            let memo = encode_memo(read + redistribute_s + analysis, &centers);
            c.insert(key, &memo).expect("cache insert");
        }
        let (pool_dispatches, dispatch_overhead_seconds) = pool_delta(backend, pool0);
        WorkflowRun {
            strategy: "off-line".into(),
            phases: PhaseSeconds {
                sim: self.sim_seconds,
                read,
                redistribute: redistribute_s,
                analysis,
                write,
                ..Default::default()
            },
            centers,
            rank_timings: timings,
            overlapped_jobs: 0,
            degraded_steps: 0,
            insitu_retries: 0,
            pool_dispatches,
            dispatch_overhead_seconds,
            cache_hits: 0,
            cache_misses,
            saved_analysis_seconds: 0.0,
            render_seconds: 0.0,
            render_bytes: 0,
            frames_rendered: 0,
            render_cache_hits: 0,
        }
    }

    /// Strategy 3 (simple variation): in-situ find + small centers, Level 2
    /// to disk, off-line centers for the large halos, merge.
    pub fn run_combined_simple(&self, backend: &dyn Backend) -> WorkflowRun {
        let _span = telemetry::span!("runner", "combined_simple");
        let pool0 = backend.pool_stats().unwrap_or_default();
        let per_rank = self.distributed();
        // In-situ stage.
        let t0 = Instant::now();
        let (catalogs, timings) = self.analyze(&per_rank, self.cfg.threshold, backend);
        let analysis_insitu = t0.elapsed().as_secs_f64();
        let small_centers = collect_centers(&catalogs);
        // Large halos → Level 2 file.
        let t_w = Instant::now();
        let mut large = HaloCatalog::new();
        for cat in catalogs {
            let (_, l) = cat.split_by_size(self.cfg.threshold);
            large.merge(l);
        }
        let l2 = write_level2_container(&large, self.meta.clone());
        let path = self.cfg.workdir.join("level2.hcio");
        let l2_digest = cosmotools::write_file_digest(&path, &l2).expect("write level 2");
        let write = t_w.elapsed().as_secs_f64();

        // Off-line stage: read Level 2, center each block in a small job —
        // or reuse the memoized centers for exactly these Level 2 bytes.
        let mut read = 0.0;
        let mut analysis_post = 0.0;
        let mut cache_hits = 0;
        let mut cache_misses = 0;
        let mut saved_analysis_seconds = 0.0;
        let key = self.cfg.cache_key("l2_centers", l2_digest);
        let cached = self.cfg.cache.as_deref().and_then(|c| memo_lookup(c, key));
        let large_centers = match cached {
            Some((saved, centers)) => {
                cache_hits = 1;
                saved_analysis_seconds = saved;
                centers
            }
            None => {
                let t_r = Instant::now();
                let l2_back = cosmotools::read_file(&path)
                    .expect("io")
                    .expect("valid level 2 container");
                read = t_r.elapsed().as_secs_f64();
                let t1 = Instant::now();
                let centers =
                    centers_over_ranks(&l2_back, self.cfg.post_ranks, self.cfg.softening, backend);
                analysis_post = t1.elapsed().as_secs_f64();
                if let Some(c) = &self.cfg.cache {
                    cache_misses = 1;
                    c.insert(key, &encode_memo(read + analysis_post, &centers))
                        .expect("cache insert");
                }
                centers
            }
        };

        let centers = merge_center_sets(small_centers, large_centers);
        let (pool_dispatches, dispatch_overhead_seconds) = pool_delta(backend, pool0);
        WorkflowRun {
            strategy: "combined (simple)".into(),
            phases: PhaseSeconds {
                sim: self.sim_seconds,
                read,
                analysis: analysis_insitu + analysis_post,
                write,
                ..Default::default()
            },
            centers,
            rank_timings: timings,
            overlapped_jobs: 0,
            degraded_steps: 0,
            insitu_retries: 0,
            pool_dispatches,
            dispatch_overhead_seconds,
            cache_hits,
            cache_misses,
            saved_analysis_seconds,
            render_seconds: 0.0,
            render_bytes: 0,
            frames_rendered: 0,
            render_cache_hits: 0,
        }
    }

    /// Strategy 3 (in-transit variation, §4.2's hypothetical third option):
    /// the Level 2 data never touches the file system — it is handed to the
    /// analysis stage through shared memory, paying only the redistribution.
    pub fn run_combined_intransit(&self, backend: &dyn Backend) -> WorkflowRun {
        let _span = telemetry::span!("runner", "combined_intransit");
        let pool0 = backend.pool_stats().unwrap_or_default();
        let per_rank = self.distributed();
        let t0 = Instant::now();
        let (catalogs, timings) = self.analyze(&per_rank, self.cfg.threshold, backend);
        let analysis_insitu = t0.elapsed().as_secs_f64();
        let small_centers = collect_centers(&catalogs);

        // Level 2 stays in memory ("Level 2 in external memory" in Table 4):
        // no write, no read — only the redistribution of halo blocks onto
        // the analysis ranks, here a hand-off of the container itself.
        let t_d = Instant::now();
        let mut large = HaloCatalog::new();
        for cat in catalogs {
            let (_, l) = cat.split_by_size(self.cfg.threshold);
            large.merge(l);
        }
        let container = write_level2_container(&large, self.meta.clone());
        let redistribute_s = t_d.elapsed().as_secs_f64();

        // Same serialized bytes as the simple variation's Level 2 file, so
        // the two variations share memoized center sets.
        let mut analysis_post = 0.0;
        let mut cache_hits = 0;
        let mut cache_misses = 0;
        let mut saved_analysis_seconds = 0.0;
        let key = self
            .cfg
            .cache_key("l2_centers", cosmotools::container_digest(&container));
        let cached = self.cfg.cache.as_deref().and_then(|c| memo_lookup(c, key));
        let large_centers = match cached {
            Some((saved, centers)) => {
                cache_hits = 1;
                saved_analysis_seconds = saved;
                centers
            }
            None => {
                let t1 = Instant::now();
                let centers = centers_over_ranks(
                    &container,
                    self.cfg.post_ranks,
                    self.cfg.softening,
                    backend,
                );
                analysis_post = t1.elapsed().as_secs_f64();
                if let Some(c) = &self.cfg.cache {
                    cache_misses = 1;
                    c.insert(key, &encode_memo(analysis_post, &centers))
                        .expect("cache insert");
                }
                centers
            }
        };

        let centers = merge_center_sets(small_centers, large_centers);
        let (pool_dispatches, dispatch_overhead_seconds) = pool_delta(backend, pool0);
        WorkflowRun {
            strategy: "combined (in-transit)".into(),
            phases: PhaseSeconds {
                sim: self.sim_seconds,
                redistribute: redistribute_s,
                analysis: analysis_insitu + analysis_post,
                ..Default::default()
            },
            centers,
            rank_timings: timings,
            overlapped_jobs: 0,
            degraded_steps: 0,
            insitu_retries: 0,
            pool_dispatches,
            dispatch_overhead_seconds,
            cache_hits,
            cache_misses,
            saved_analysis_seconds,
            render_seconds: 0.0,
            render_bytes: 0,
            frames_rendered: 0,
            render_cache_hits: 0,
        }
    }

    /// Strategy 3 (in-transit, **streamed** variation): like
    /// [`TestBed::run_combined_intransit`], but the Level-2 container is
    /// split into per-block chunks that travel through a small replicated
    /// [`cache::DistributedStore`] (3 nodes, 2 replicas, under the workdir)
    /// instead of being handed over whole: the emitter side publishes each
    /// chunk as produced, the analysis side fetches the set back (replica
    /// routing applies — one node is killed between publish and fetch to
    /// prove the chunks stay reachable) and reassembles the container
    /// byte-exactly. Because the chunk protocol is lossless, the reassembled
    /// digest equals the whole-container digest and the memoized center set
    /// is shared with the simple and plain in-transit variations.
    pub fn run_combined_intransit_streamed(&self, backend: &dyn Backend) -> WorkflowRun {
        use cache::{DistributedConfig, DistributedStore};
        use cosmotools::{assemble_chunks, chunk_container};

        let _span = telemetry::span!("runner", "combined_intransit_streamed");
        let pool0 = backend.pool_stats().unwrap_or_default();
        let per_rank = self.distributed();
        let t0 = Instant::now();
        let (catalogs, timings) = self.analyze(&per_rank, self.cfg.threshold, backend);
        let analysis_insitu = t0.elapsed().as_secs_f64();
        let small_centers = collect_centers(&catalogs);

        let t_d = Instant::now();
        let mut large = HaloCatalog::new();
        for cat in catalogs {
            let (_, l) = cat.split_by_size(self.cfg.threshold);
            large.merge(l);
        }
        let container = write_level2_container(&large, self.meta.clone());

        // Emitter side: publish the chunk set into a replicated store.
        let store_dir = self.cfg.workdir.join("stream_store");
        let _ = std::fs::remove_dir_all(&store_dir);
        let store = DistributedStore::open(
            &store_dir,
            DistributedConfig {
                nodes: 3,
                replicas: 2,
                ..DistributedConfig::default()
            },
        )
        .expect("open stream store");
        let fp = self.cfg.fingerprint();
        let chunks = chunk_container(&container);
        let keys: Vec<CacheKey> = chunks
            .iter()
            .map(|chunk| {
                let key = CacheKey::compose("l2chunk", cache::digest_bytes(chunk), fp);
                store.insert(key, chunk).expect("publish chunk");
                key
            })
            .collect();
        // A replica-holding node dies between publish and ingest; every
        // chunk must still be reachable through its surviving replica.
        store.kill_node(0);
        let fetched: Vec<Vec<u8>> = keys
            .iter()
            .map(|&k| store.lookup(k).expect("chunk lost with one dead node"))
            .collect();
        let container = assemble_chunks(&fetched).expect("reassemble streamed Level 2");
        let redistribute_s = t_d.elapsed().as_secs_f64();

        // Identical bytes ⇒ identical digest ⇒ the memoized center set is
        // shared with the simple / in-transit variations.
        let mut analysis_post = 0.0;
        let mut cache_hits = 0;
        let mut cache_misses = 0;
        let mut saved_analysis_seconds = 0.0;
        let key = self
            .cfg
            .cache_key("l2_centers", cosmotools::container_digest(&container));
        let cached = self.cfg.cache.as_deref().and_then(|c| memo_lookup(c, key));
        let large_centers = match cached {
            Some((saved, centers)) => {
                cache_hits = 1;
                saved_analysis_seconds = saved;
                centers
            }
            None => {
                let t1 = Instant::now();
                let centers = centers_over_ranks(
                    &container,
                    self.cfg.post_ranks,
                    self.cfg.softening,
                    backend,
                );
                analysis_post = t1.elapsed().as_secs_f64();
                if let Some(c) = &self.cfg.cache {
                    cache_misses = 1;
                    c.insert(key, &encode_memo(analysis_post, &centers))
                        .expect("cache insert");
                }
                centers
            }
        };

        let centers = merge_center_sets(small_centers, large_centers);
        let (pool_dispatches, dispatch_overhead_seconds) = pool_delta(backend, pool0);
        WorkflowRun {
            strategy: "combined (in-transit, streamed)".into(),
            phases: PhaseSeconds {
                sim: self.sim_seconds,
                redistribute: redistribute_s,
                analysis: analysis_insitu + analysis_post,
                ..Default::default()
            },
            centers,
            rank_timings: timings,
            overlapped_jobs: 0,
            degraded_steps: 0,
            insitu_retries: 0,
            pool_dispatches,
            dispatch_overhead_seconds,
            cache_hits,
            cache_misses,
            saved_analysis_seconds,
            render_seconds: 0.0,
            render_bytes: 0,
            frames_rendered: 0,
            render_cache_hits: 0,
        }
    }

    /// Strategy 3 (co-scheduled variation): the simulation re-runs with an
    /// in-situ hook that emits a Level 2 file every `emit_every` steps; a
    /// listener submits a real analysis job (thread) per file while the
    /// simulation is still stepping.
    pub fn run_combined_coscheduled(
        &self,
        backend: &dyn Backend,
        emit_every: usize,
    ) -> WorkflowRun {
        use parking_lot::Mutex;
        use std::sync::Arc;

        let _span = telemetry::span!("runner", "combined_coscheduled");
        let pool0 = backend.pool_stats().unwrap_or_default();
        let dir = self.cfg.workdir.join("coscheduled");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        // Visualization frames live in a subdirectory with their own suffix,
        // invisible to the `.hcio` listener sweep.
        let render_dir = dir.join("render");
        if self.cfg.render.is_some() {
            std::fs::create_dir_all(&render_dir).expect("mkdir render");
        }
        let mut render_seconds = 0.0f64;
        let mut render_bytes = 0u64;
        let mut frames_rendered = 0u64;
        let mut render_cache_hits = 0u64;

        // The analysis-job launcher the listener drives: each file becomes a
        // center-finding job on `post_ranks` ranks.
        type JobResult = (PathBuf, Vec<CenterRecord>, f64);
        let results: Arc<Mutex<Vec<JobResult>>> = Arc::new(Mutex::new(Vec::new()));
        let handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let r2 = Arc::clone(&results);
        let h2 = Arc::clone(&handles);
        let post_ranks = self.cfg.post_ranks;
        let softening = self.cfg.softening;
        let fingerprint = self.cfg.fingerprint();
        // The listener consults the cache before submitting: a file whose
        // analysis artifact already exists and verifies is recorded as
        // handled without spawning a job (crash-restart and duplicate scans
        // never re-submit completed work). Each job that does run memoizes
        // its result, so the *next* co-scheduled run over identical Level 2
        // bytes skips it.
        let gate = self.cfg.cache.clone().map(|c| {
            CacheGate::new(move |p: &std::path::Path| {
                let Ok(digest) = cosmotools::file_digest(p) else {
                    return false;
                };
                c.contains_verified(CacheKey::compose("l2_centers", digest, fingerprint))
            })
        });
        let job_cache = self.cfg.cache.clone();
        let sim_start = Instant::now();
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                suffix: ".hcio".into(),
                cache_gate: gate,
                ..Default::default()
            },
            move |path| {
                let path = path.to_path_buf();
                let r3 = Arc::clone(&r2);
                let job_cache = job_cache.clone();
                let handle = std::thread::spawn(move || {
                    // Job start time in the shared epoch, before any work.
                    let started_at = sim_start.elapsed().as_secs_f64();
                    let bytes = std::fs::read(&path).expect("io");
                    let input_digest = cache::digest_bytes(&bytes);
                    let container = cosmotools::read_container(&bytes).expect("valid container");
                    let t_job = Instant::now();
                    let centers =
                        centers_over_ranks(&container, post_ranks, softening, &dpp::Serial);
                    let job_seconds = t_job.elapsed().as_secs_f64();
                    if let Some(c) = &job_cache {
                        let key = CacheKey::compose("l2_centers", input_digest, fingerprint);
                        c.insert(key, &encode_memo(job_seconds, &centers))
                            .expect("cache insert");
                    }
                    r3.lock().push((path, centers, started_at));
                });
                h2.lock().push(handle);
            },
        );

        // Re-run the simulation with the in-situ hook.
        let t0 = Instant::now();
        let mut sim = Simulation::new(backend, self.cfg.sim.clone());
        let threshold = self.cfg.threshold;
        let fof_link = self.cfg.fof();
        let decomp = self.decomp();
        let nranks = self.cfg.nranks;
        let mut insitu_analysis = 0.0;
        let mut fallback_seconds = 0.0;
        let mut degraded = 0usize;
        let mut insitu_retries = 0u64;
        let mut last_good: Option<PathBuf> = None;
        let mut small_centers: Vec<CenterRecord> = Vec::new();
        let mut emitted = 0usize;
        let rcfg = &self.cfg;
        sim.run_with_hook(backend, |step, sim| {
            let last = step == sim.total_steps();
            // In-situ visualization: one frame per step, independent of the
            // Level-2 emit cadence. A memoized frame's encoded bytes replay
            // without touching the renderer, so warm re-runs recompute
            // nothing; rendering precedes the halo stage so an analysis
            // fault can never drop a frame.
            if let Some(rp) = rcfg.render {
                let _render_span = telemetry::span!("render", "emit", step);
                let t_r = Instant::now();
                let frame_path = render_dir.join(format!("frame_step{step:04}.hcim"));
                let key = CacheKey::compose(
                    "render_frame",
                    cache::digest_bytes(&(step as u64).to_le_bytes()),
                    fingerprint,
                );
                let cached = rcfg.cache.as_deref().and_then(|c| c.lookup(key));
                if let Some(bytes) = cached {
                    std::fs::write(&frame_path, &bytes).expect("write cached frame");
                    render_cache_hits += 1;
                    frames_rendered += 1;
                    render_bytes += bytes.len() as u64;
                    telemetry::count!("render", "cache_hits", 1);
                } else {
                    let mut attempt: u32 = 0;
                    let render_ok = loop {
                        match rcfg.fault(RENDER_FAULT_SITE) {
                            Some(FaultKind::Crash) => {
                                telemetry::instant!("faults", RENDER_FAULT_SITE, 1);
                                break false;
                            }
                            Some(FaultKind::Stall(d)) => {
                                telemetry::instant!("faults", RENDER_FAULT_SITE, 2);
                                std::thread::sleep(d);
                            }
                            Some(FaultKind::Transient) => {
                                telemetry::instant!("faults", RENDER_FAULT_SITE, 0);
                                attempt += 1;
                                insitu_retries += 1;
                                telemetry::count!("runner", "insitu_retries", 1);
                                if attempt >= rcfg.insitu_retry.max_attempts {
                                    break false;
                                }
                                std::thread::sleep(rcfg.insitu_retry.delay(attempt - 1));
                                continue;
                            }
                            None => {}
                        }
                        break true;
                    };
                    if render_ok {
                        let frame = cosmotools::render_frame(
                            backend,
                            sim.particles(),
                            decomp.box_size(),
                            &rp,
                            step as u64,
                        );
                        let bytes = cosmotools::write_image(&frame);
                        std::fs::write(&frame_path, bytes.as_ref()).expect("write frame");
                        if let Some(c) = &rcfg.cache {
                            c.insert(key, bytes.as_ref()).expect("cache insert");
                        }
                        frames_rendered += 1;
                        render_bytes += bytes.len() as u64;
                    } else {
                        // This attempt loses the step's frame; a re-run
                        // recovers it (every earlier frame replays from the
                        // cache, and the injector's crash budget is spent).
                        degraded += 1;
                        telemetry::count!("runner", "render_failures", 1);
                    }
                }
                render_seconds += t_r.elapsed().as_secs_f64();
            }
            if !(step % emit_every == 0 || last) {
                return;
            }
            let _step_span = telemetry::span!("runner", "in_situ_step", step);
            // Fault-aware in-situ stage: a transient failure retries under
            // the configured policy; a crash (or exhausted retries) degrades
            // gracefully — the last good Level-2 output is re-shipped for
            // off-line analysis instead, and the step is recorded as
            // degraded in the cost model's `fallback` phase.
            let mut attempt: u32 = 0;
            let insitu_ok = loop {
                match rcfg.fault(RUNNER_FAULT_SITE) {
                    Some(FaultKind::Crash) => {
                        telemetry::instant!("faults", RUNNER_FAULT_SITE, 1);
                        break false;
                    }
                    Some(FaultKind::Stall(d)) => {
                        telemetry::instant!("faults", RUNNER_FAULT_SITE, 2);
                        std::thread::sleep(d);
                    }
                    Some(FaultKind::Transient) => {
                        telemetry::instant!("faults", RUNNER_FAULT_SITE, 0);
                        attempt += 1;
                        insitu_retries += 1;
                        telemetry::count!("runner", "insitu_retries", 1);
                        if attempt >= rcfg.insitu_retry.max_attempts {
                            break false;
                        }
                        std::thread::sleep(rcfg.insitu_retry.delay(attempt - 1));
                        continue;
                    }
                    None => {}
                }
                break true;
            };
            if !insitu_ok {
                let tf = Instant::now();
                degraded += 1;
                telemetry::count!("runner", "degraded_steps", 1);
                let path = dir.join(format!("l2_step{step:04}.hcio"));
                match &last_good {
                    Some(prev) => {
                        std::fs::copy(prev, &path).expect("fallback copy");
                    }
                    None => {
                        // Nothing good yet: an empty Level-2 container keeps
                        // the downstream pipeline shape intact.
                        let meta = SnapshotMeta {
                            step: step as u64,
                            redshift: sim.redshift(),
                            box_size: decomp.box_size(),
                        };
                        let container = write_level2_container(&HaloCatalog::new(), meta);
                        cosmotools::write_file(&path, &container).expect("write fallback level 2");
                    }
                }
                emitted += 1;
                fallback_seconds += tf.elapsed().as_secs_f64();
                return;
            }
            let ta = Instant::now();
            // Distribute and analyze in situ.
            let mut per_rank: Vec<Vec<Particle>> = vec![Vec::new(); nranks];
            for p in sim.particles() {
                per_rank[decomp.owner_of(p.pos_f64())].push(*p);
            }
            let world = World::new(nranks);
            let results = world.run(|c| {
                fof_and_centers_timed(
                    c,
                    &decomp,
                    &per_rank[c.rank()],
                    &fof_link,
                    backend,
                    softening,
                    threshold,
                )
            });
            let mut large = HaloCatalog::new();
            for (cat, _) in results {
                if last {
                    small_centers.extend(centers_from_catalog(&cat));
                }
                let (_, l) = cat.split_by_size(threshold);
                large.merge(l);
            }
            insitu_analysis += ta.elapsed().as_secs_f64();
            // Emit the Level 2 file at every analysis step (possibly empty —
            // the listener and downstream jobs handle that), exactly like
            // the per-timestep outputs of the paper's co-scheduled runs.
            {
                let meta = SnapshotMeta {
                    step: step as u64,
                    redshift: sim.redshift(),
                    box_size: decomp.box_size(),
                };
                let container = write_level2_container(&large, meta);
                let path = dir.join(format!("l2_step{step:04}.hcio"));
                cosmotools::write_file(&path, &container).expect("write level 2");
                last_good = Some(path);
                emitted += 1;
            }
        });
        let _ = t0;
        // Simulation end in the same epoch as the job start times.
        let sim_end = sim_start.elapsed().as_secs_f64();

        // Main job done: stop the listener (final sweep) and join jobs.
        let report = listener.stop_report();
        for h in std::mem::take(&mut *handles.lock()) {
            h.join().expect("analysis job panicked");
        }
        let job_results = std::mem::take(&mut *results.lock());
        assert_eq!(
            report.submitted.len() + report.cache_skipped.len(),
            emitted,
            "every emitted file gets a job or a verified cache hit"
        );

        // Credit the cache hits: what each reused artifact cost when it was
        // first computed, read back from the memo payloads.
        let mut saved_analysis_seconds = 0.0;
        let mut skipped_last_centers: Option<Vec<CenterRecord>> = None;
        let last_file = dir.join(format!("l2_step{:04}.hcio", self.cfg.sim.nsteps));
        if let Some(c) = &self.cfg.cache {
            for p in &report.cache_skipped {
                let Ok(digest) = cosmotools::file_digest(p) else {
                    continue;
                };
                let key = CacheKey::compose("l2_centers", digest, fingerprint);
                if let Some((saved, centers)) = memo_lookup(c, key) {
                    saved_analysis_seconds += saved;
                    if *p == last_file {
                        skipped_last_centers = Some(centers);
                    }
                }
            }
        }

        // Reconcile: the final step's large-halo centers + in-situ centers.
        // A gate-skipped final file takes its centers from the cache; if the
        // entry vanished between the gate and here (eviction, poisoning),
        // recompute — degrade to work, never to a wrong catalog.
        let large_centers = match job_results.iter().find(|(p, _, _)| *p == last_file) {
            Some((_, c, _)) => c.clone(),
            None if report.cache_skipped.contains(&last_file) => skipped_last_centers
                .unwrap_or_else(|| {
                    let container = cosmotools::read_file(&last_file)
                        .expect("io")
                        .expect("valid container");
                    centers_over_ranks(
                        &container,
                        self.cfg.post_ranks,
                        self.cfg.softening,
                        &dpp::Serial,
                    )
                }),
            None => Vec::new(),
        };
        let overlapped = job_results
            .iter()
            .filter(|(_, _, started_at)| *started_at < sim_end)
            .count();
        let centers = merge_center_sets(small_centers, large_centers);
        let (pool_dispatches, dispatch_overhead_seconds) = pool_delta(backend, pool0);
        let cache_hits = report.cache_skipped.len() as u64;
        let cache_misses = if self.cfg.cache.is_some() {
            report.submitted.len() as u64
        } else {
            0
        };
        WorkflowRun {
            strategy: "combined (co-scheduled)".into(),
            phases: PhaseSeconds {
                sim: sim_end,
                analysis: insitu_analysis,
                fallback: fallback_seconds,
                ..Default::default()
            },
            centers,
            rank_timings: Vec::new(),
            overlapped_jobs: overlapped,
            degraded_steps: degraded,
            insitu_retries,
            pool_dispatches,
            dispatch_overhead_seconds,
            cache_hits,
            cache_misses,
            saved_analysis_seconds,
            render_seconds,
            render_bytes,
            frames_rendered,
            render_cache_hits,
        }
    }
}

/// One measured Table 2 row: per-rank analysis extremes at a given epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredEpoch {
    /// Step index.
    pub step: usize,
    /// Redshift.
    pub redshift: f64,
    /// Slowest rank's FOF seconds.
    pub find_max: f64,
    /// Fastest rank's FOF seconds.
    pub find_min: f64,
    /// Slowest rank's center seconds.
    pub center_max: f64,
    /// Fastest rank's center seconds.
    pub center_min: f64,
    /// Halos found at this epoch.
    pub n_halos: usize,
    /// Largest halo (particles).
    pub largest: usize,
}

/// The measured analog of the paper's Table 2: run the simulation once and
/// execute the full distributed halo analysis at each step in `at_steps`,
/// recording per-rank find/center extremes. Shows identification staying
/// balanced while center finding grows imbalanced as structure forms.
pub fn measured_table2(
    cfg: &RunnerConfig,
    backend: &dyn Backend,
    at_steps: &[usize],
) -> Vec<MeasuredEpoch> {
    let decomp = CartDecomp::new(cfg.nranks, cfg.sim.cosmology.box_size);
    let fof = cfg.fof();
    let mut rows = Vec::new();
    let mut sim = Simulation::new(backend, cfg.sim.clone());
    let nranks = cfg.nranks;
    let softening = cfg.softening;
    sim.run_with_hook(backend, |step, sim| {
        if !at_steps.contains(&step) {
            return;
        }
        let mut per_rank: Vec<Vec<Particle>> = vec![Vec::new(); nranks];
        for p in sim.particles() {
            per_rank[decomp.owner_of(p.pos_f64())].push(*p);
        }
        let world = World::new(nranks);
        let results = world.run(|c| {
            fof_and_centers_timed(
                c,
                &decomp,
                &per_rank[c.rank()],
                &fof,
                &dpp::Serial, // ranks are the parallelism; per-rank serial
                softening,
                usize::MAX,
            )
        });
        let find_max = results
            .iter()
            .map(|(_, t)| t.find_seconds)
            .fold(0.0f64, f64::max);
        let find_min = results
            .iter()
            .map(|(_, t)| t.find_seconds)
            .fold(f64::INFINITY, f64::min);
        let center_max = results
            .iter()
            .map(|(_, t)| t.center_seconds)
            .fold(0.0f64, f64::max);
        let center_min = results
            .iter()
            .map(|(_, t)| t.center_seconds)
            .fold(f64::INFINITY, f64::min);
        let n_halos: usize = results.iter().map(|(c, _)| c.len()).sum();
        let largest = results
            .iter()
            .flat_map(|(c, _)| c.halos.iter().map(|h| h.count()))
            .max()
            .unwrap_or(0);
        rows.push(MeasuredEpoch {
            step,
            redshift: sim.redshift(),
            find_max,
            find_min,
            center_max,
            center_min,
            n_halos,
            largest,
        });
    });
    rows
}

/// Merge per-rank catalogs into one center list.
fn collect_centers(catalogs: &[HaloCatalog]) -> Vec<CenterRecord> {
    let mut out = Vec::new();
    for cat in catalogs {
        out.extend(centers_from_catalog(cat));
    }
    out.sort_by_key(|r| r.halo_id);
    out
}

/// Center every block of a Level 2 container, blocks spread over
/// `post_ranks` worker threads (the small off-line/co-scheduled job).
pub fn centers_over_ranks(
    container: &Container,
    post_ranks: usize,
    softening: f64,
    backend: &dyn Backend,
) -> Vec<CenterRecord> {
    let _ = post_ranks; // parallelism handled inside mbp_brute via backend
    let mut centers = centers_from_level2(backend, container, softening);
    centers.sort_by_key(|r| r.halo_id);
    centers
}

/// Run every strategy and verify they produce identical Level 3 outputs.
pub fn compare_all(cfg: RunnerConfig, backend: &dyn Backend) -> Vec<WorkflowRun> {
    let bed = TestBed::create(cfg, backend);
    let a = bed.run_in_situ_only(backend);
    let b = bed.run_offline_only(backend);
    let c = bed.run_combined_simple(backend);
    assert_same_centers(&a.centers, &b.centers);
    assert_same_centers(&a.centers, &c.centers);
    vec![a, b, c]
}

/// Every workflow must find the same halos with the same centers.
pub fn assert_same_centers(x: &[CenterRecord], y: &[CenterRecord]) {
    assert_eq!(x.len(), y.len(), "workflows disagree on halo count");
    for (a, b) in x.iter().zip(y) {
        assert_eq!(a.halo_id, b.halo_id, "halo sets differ");
        assert_eq!(a.count, b.count, "halo {} membership differs", a.halo_id);
        for d in 0..3 {
            assert!(
                (a.center[d] - b.center[d]).abs() < 1e-6,
                "halo {} center differs: {:?} vs {:?}",
                a.halo_id,
                a.center,
                b.center
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpp::Threaded;

    fn tiny_cfg(name: &str) -> RunnerConfig {
        RunnerConfig {
            sim: SimConfig {
                np: 16,
                ng: 16,
                nsteps: 30,
                seed: 4242,
                ..SimConfig::default()
            },
            nranks: 4,
            post_ranks: 2,
            linking_length: 0.28,
            threshold: 60,
            min_size: 12,
            workdir: std::env::temp_dir()
                .join(format!("hacc_runner_test_{name}_{}", std::process::id())),
            ..Default::default()
        }
    }

    #[test]
    fn all_strategies_agree_on_level3_output() {
        let backend = Threaded::new(4);
        let runs = compare_all(tiny_cfg("agree"), &backend);
        assert_eq!(runs.len(), 3);
        // Some halos must actually exist for the comparison to mean anything.
        assert!(
            !runs[0].centers.is_empty(),
            "the toy run must form at least one halo"
        );
        // Off-line pays I/O + redistribution the in-situ run does not.
        assert_eq!(runs[0].phases.read, 0.0);
        assert!(runs[1].phases.read > 0.0);
        assert!(runs[1].phases.write > 0.0);
    }

    #[test]
    fn combined_produces_level2_file_only_for_large_halos() {
        let backend = Threaded::new(4);
        let cfg = tiny_cfg("level2");
        let workdir = cfg.workdir.clone();
        let bed = TestBed::create(cfg, &backend);
        let run = bed.run_combined_simple(&backend);
        let l2 = cosmotools::read_file(&workdir.join("level2.hcio"))
            .expect("io")
            .expect("valid");
        for block in &l2.blocks {
            assert!(
                block.len() > bed.cfg.threshold,
                "only large halos belong in Level 2"
            );
        }
        // Merged output covers every centered halo exactly once.
        let ids: Vec<u64> = run.centers.iter().map(|c| c.halo_id).collect();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids, dedup);
    }

    #[test]
    fn coscheduled_jobs_overlap_the_simulation() {
        let backend = Threaded::new(4);
        let cfg = tiny_cfg("cosched");
        let bed = TestBed::create(cfg, &backend);
        let run = bed.run_combined_coscheduled(&backend, 3);
        // Files were emitted during the run and analyzed by listener jobs;
        // at least one job must have started before the simulation ended
        // (the entire point of co-scheduling).
        assert!(
            run.overlapped_jobs >= 1,
            "no analysis job overlapped the simulation"
        );
        assert!(!run.centers.is_empty());
    }

    #[test]
    fn measured_table2_shows_growing_center_imbalance() {
        let backend = Threaded::new(4);
        let cfg = RunnerConfig {
            sim: SimConfig {
                np: 32,
                ng: 32,
                nsteps: 30,
                seed: 20150715,
                ..SimConfig::default()
            },
            nranks: 8,
            threshold: usize::MAX,
            min_size: 20,
            workdir: std::env::temp_dir()
                .join(format!("hacc_runner_test_t2_{}", std::process::id())),
            ..Default::default()
        };
        let rows = measured_table2(&cfg, &backend, &[20, 30]);
        assert_eq!(rows.len(), 2);
        // Redshift decreases across epochs; structure (largest halo) grows.
        assert!(rows[0].redshift > rows[1].redshift);
        assert!(rows[1].largest >= rows[0].largest);
        assert!(rows[1].n_halos > 0);
        // The z = 0 epoch: identification balanced, centers not (Table 2's
        // pattern — a toy box has few halos per rank, so the center spread
        // is extreme).
        let last = &rows[1];
        let find_ratio = last.find_max / last.find_min.max(1e-12);
        let center_ratio = last.center_max / last.center_min.max(1e-12);
        assert!(find_ratio < 3.0, "find imbalance {find_ratio}");
        assert!(
            center_ratio > find_ratio,
            "center ratio {center_ratio} must exceed find ratio {find_ratio}"
        );
    }

    #[test]
    fn intransit_matches_simple_combined_without_files() {
        let backend = Threaded::new(4);
        let cfg = tiny_cfg("intransit");
        let bed = TestBed::create(cfg, &backend);
        let simple = bed.run_combined_simple(&backend);
        let transit = bed.run_combined_intransit(&backend);
        assert_same_centers(&simple.centers, &transit.centers);
        // No file I/O phases at all.
        assert_eq!(transit.phases.read, 0.0);
        assert_eq!(transit.phases.write, 0.0);
    }

    #[test]
    fn streamed_intransit_matches_simple_and_shares_the_memo() {
        let backend = Threaded::new(4);
        let mut cfg = tiny_cfg("intransit_stream");
        let cache_dir = cfg.workdir.join("artifact_cache");
        let _ = std::fs::remove_dir_all(&cache_dir);
        cfg.cache = Some(Arc::new(ArtifactCache::open(&cache_dir, None).unwrap()));
        let bed = TestBed::create(cfg, &backend);
        let simple = bed.run_combined_simple(&backend);
        assert_eq!((simple.cache_hits, simple.cache_misses), (0, 1));
        // The streamed variation reassembles byte-identical Level 2, so it
        // reuses the simple variation's memoized center set — despite the
        // chunks having crossed a replicated store with one node killed.
        let streamed = bed.run_combined_intransit_streamed(&backend);
        assert_same_centers(&simple.centers, &streamed.centers);
        assert_eq!(
            (streamed.cache_hits, streamed.cache_misses),
            (1, 0),
            "streamed in-transit must share the whole-container artifact"
        );
        // No Level-2 file I/O phases.
        assert_eq!(streamed.phases.read, 0.0);
        assert_eq!(streamed.phases.write, 0.0);
    }

    #[test]
    fn coscheduled_final_centers_match_simple_combined() {
        let backend = Threaded::new(4);
        let cfg = tiny_cfg("coschedmatch");
        let bed = TestBed::create(cfg, &backend);
        let simple = bed.run_combined_simple(&backend);
        let cosched = bed.run_combined_coscheduled(&backend, 4);
        assert_same_centers(&simple.centers, &cosched.centers);
    }

    #[test]
    fn pool_dispatch_totals_are_attributed_per_run() {
        let backend = Threaded::new(4);
        let bed = TestBed::create(tiny_cfg("pooldelta"), &backend);
        // The simulation in `create` already issued dispatches; the per-run
        // delta must count only the strategy's own.
        let run = bed.run_in_situ_only(&backend);
        assert!(run.pool_dispatches > 0, "analysis dispatches were counted");
        assert!(run.dispatch_overhead_seconds > 0.0);
        // A pool-less backend reports zero rather than another pool's totals.
        let serial = bed.run_in_situ_only(&dpp::Serial);
        assert_eq!(serial.pool_dispatches, 0);
        assert_eq!(serial.dispatch_overhead_seconds, 0.0);
    }

    #[test]
    fn warm_rerun_reuses_offline_artifacts_across_strategies() {
        let backend = Threaded::new(4);
        let mut cfg = tiny_cfg("cachewarm");
        let cache_dir = cfg.workdir.join("artifact_cache");
        let _ = std::fs::remove_dir_all(&cache_dir);
        cfg.cache = Some(Arc::new(ArtifactCache::open(&cache_dir, None).unwrap()));
        let bed = TestBed::create(cfg, &backend);

        // Off-line: the second run answers the whole post job from cache.
        let cold = bed.run_offline_only(&backend);
        assert_eq!((cold.cache_hits, cold.cache_misses), (0, 1));
        assert!(cold.phases.analysis > 0.0);
        let warm = bed.run_offline_only(&backend);
        assert_eq!((warm.cache_hits, warm.cache_misses), (1, 0));
        assert_eq!(warm.phases.analysis, 0.0, "no recompute on a warm run");
        assert_eq!(warm.phases.read, 0.0);
        assert!(warm.saved_analysis_seconds > 0.0);
        assert_same_centers(&cold.centers, &warm.centers);

        // Combined: the in-transit variation serializes identical Level 2
        // bytes, so it reuses the simple variation's artifact directly.
        let simple = bed.run_combined_simple(&backend);
        assert_eq!((simple.cache_hits, simple.cache_misses), (0, 1));
        let simple_warm = bed.run_combined_simple(&backend);
        assert_eq!((simple_warm.cache_hits, simple_warm.cache_misses), (1, 0));
        let transit = bed.run_combined_intransit(&backend);
        assert_eq!(
            (transit.cache_hits, transit.cache_misses),
            (1, 0),
            "in-transit must reuse the simple variation's Level 2 artifact"
        );
        assert_same_centers(&simple.centers, &transit.centers);

        // The survival is on disk, not in memory: a fresh handle over the
        // same directory still hits.
        let mut cfg2 = tiny_cfg("cachewarm");
        cfg2.cache = Some(Arc::new(ArtifactCache::open(&cache_dir, None).unwrap()));
        let bed2 = TestBed::create(cfg2, &backend);
        let reopened = bed2.run_offline_only(&backend);
        assert_eq!((reopened.cache_hits, reopened.cache_misses), (1, 0));
        assert_same_centers(&cold.centers, &reopened.centers);
    }

    #[test]
    fn coscheduled_warm_rerun_submits_no_jobs() {
        let backend = Threaded::new(4);
        let mut cfg = tiny_cfg("cachecosched");
        let cache_dir = cfg.workdir.join("artifact_cache");
        let _ = std::fs::remove_dir_all(&cache_dir);
        cfg.cache = Some(Arc::new(ArtifactCache::open(&cache_dir, None).unwrap()));
        let bed = TestBed::create(cfg, &backend);
        let cold = bed.run_combined_coscheduled(&backend, 4);
        assert_eq!(cold.cache_hits, 0, "cold run has nothing to reuse");
        assert!(cold.cache_misses > 0);
        // The re-run emits byte-identical Level 2 files (same seed, same
        // analysis), so the listener's cache gate skips every submission.
        let warm = bed.run_combined_coscheduled(&backend, 4);
        assert_eq!(warm.cache_misses, 0, "warm re-run must submit zero jobs");
        assert_eq!(warm.cache_hits, cold.cache_misses);
        assert!(warm.saved_analysis_seconds > 0.0);
        assert_same_centers(&cold.centers, &warm.centers);
    }

    #[test]
    fn transient_insitu_faults_are_absorbed_by_retries() {
        let backend = Threaded::new(4);
        let mut cfg = tiny_cfg("insitu_transient");
        // Every analysis step fails once, then the retry succeeds.
        cfg.injector = Some(
            faults::FaultPlan::new(11)
                .with_site(faults::SiteSpec::transient(RUNNER_FAULT_SITE, 1.0).with_max_faults(2))
                .build(),
        );
        let bed = TestBed::create(cfg, &backend);
        let baseline = bed.run_combined_simple(&backend);
        let run = bed.run_combined_coscheduled(&backend, 4);
        assert_eq!(run.insitu_retries, 2, "each injected fault costs one retry");
        assert_eq!(run.degraded_steps, 0, "retries absorbed every fault");
        assert_same_centers(&baseline.centers, &run.centers);
    }

    /// Read every frame file in a co-scheduled run's render directory as
    /// `(file name, encoded bytes)`, sorted by name.
    fn frame_catalog(workdir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
        let rdir = workdir.join("coscheduled").join("render");
        let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(&rdir)
            .expect("render dir exists")
            .map(|e| {
                let p = e.expect("dir entry").path();
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read(&p).expect("read frame"),
                )
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn coscheduled_render_emits_every_step_and_replays_warm() {
        let backend = Threaded::new(4);
        let mut cfg = tiny_cfg("render_warm");
        let cache_dir = cfg.workdir.join("artifact_cache");
        let _ = std::fs::remove_dir_all(&cache_dir);
        cfg.cache = Some(Arc::new(ArtifactCache::open(&cache_dir, None).unwrap()));
        cfg.render = Some(cosmotools::RenderParams {
            ng: 12,
            ..Default::default()
        });
        let bed = TestBed::create(cfg, &backend);
        let cold = bed.run_combined_coscheduled(&backend, 4);
        assert_eq!(
            cold.frames_rendered, bed.cfg.sim.nsteps as u64,
            "one frame per simulation step"
        );
        assert_eq!(cold.render_cache_hits, 0, "cold run has nothing to replay");
        assert!(cold.render_bytes > 0);
        assert!(cold.render_seconds > 0.0);
        let cold_frames = frame_catalog(&bed.cfg.workdir);
        assert_eq!(cold_frames.len() as u64, cold.frames_rendered);
        // Every emitted frame decodes as a valid HCIM image.
        for (name, bytes) in &cold_frames {
            let frame = cosmotools::read_image(bytes).expect("valid frame");
            assert_eq!(frame.width as usize, 12, "frame {name}");
        }
        // Warm re-run: every frame replays from the artifact cache, and the
        // recovered catalog is byte-identical.
        let warm = bed.run_combined_coscheduled(&backend, 4);
        assert_eq!(warm.frames_rendered, cold.frames_rendered);
        assert_eq!(
            warm.render_cache_hits, warm.frames_rendered,
            "warm re-run must recompute no frames"
        );
        assert_eq!(frame_catalog(&bed.cfg.workdir), cold_frames);
        // The render knob leaves the halo pipeline untouched.
        let baseline = bed.run_combined_simple(&backend);
        assert_same_centers(&baseline.centers, &warm.centers);
    }

    #[test]
    fn render_disabled_runs_exactly_as_before() {
        let backend = Threaded::new(4);
        let cfg = tiny_cfg("render_off");
        let bed = TestBed::create(cfg, &backend);
        let run = bed.run_combined_coscheduled(&backend, 4);
        assert_eq!(run.frames_rendered, 0);
        assert_eq!(run.render_bytes, 0);
        assert_eq!(run.render_seconds, 0.0);
        assert!(!bed.cfg.workdir.join("coscheduled").join("render").exists());
    }

    #[test]
    fn render_fingerprints_are_disjoint_per_parameter_set() {
        let base = tiny_cfg("render_fp");
        let mut with_render = base.clone();
        with_render.render = Some(cosmotools::RenderParams::default());
        let mut other_axis = with_render.clone();
        other_axis.render = Some(cosmotools::RenderParams {
            axis: cosmotools::Axis::X,
            ..cosmotools::RenderParams::default()
        });
        assert_ne!(base.fingerprint(), with_render.fingerprint());
        assert_ne!(with_render.fingerprint(), other_axis.fingerprint());
    }

    #[test]
    fn crashed_render_step_loses_one_frame_and_rerun_recovers_it() {
        let backend = Threaded::new(4);
        let mut cfg = tiny_cfg("render_crash");
        let cache_dir = cfg.workdir.join("artifact_cache");
        let _ = std::fs::remove_dir_all(&cache_dir);
        cfg.cache = Some(Arc::new(ArtifactCache::open(&cache_dir, None).unwrap()));
        cfg.render = Some(cosmotools::RenderParams {
            ng: 12,
            ..Default::default()
        });
        cfg.injector = Some(
            faults::FaultPlan::new(9)
                .with_site(faults::SiteSpec::crash_at(RENDER_FAULT_SITE, 3))
                .build(),
        );
        let bed = TestBed::create(cfg, &backend);
        let crashed = bed.run_combined_coscheduled(&backend, 4);
        let total = bed.cfg.sim.nsteps as u64;
        assert_eq!(crashed.frames_rendered, total - 1, "one frame was lost");
        assert_eq!(crashed.degraded_steps, 1);
        // The crash budget is spent; the re-run replays every survivor from
        // the cache and computes only the one missing frame.
        let recovered = bed.run_combined_coscheduled(&backend, 4);
        assert_eq!(recovered.frames_rendered, total);
        assert_eq!(recovered.render_cache_hits, total - 1);
        assert_eq!(recovered.degraded_steps, 0);
        assert_eq!(frame_catalog(&bed.cfg.workdir).len() as u64, total);
    }

    #[test]
    fn crashed_insitu_step_degrades_to_last_good_output() {
        let backend = Threaded::new(4);
        let mut cfg = tiny_cfg("insitu_crash");
        // The second analysis step's in-situ stage crashes outright.
        cfg.injector = Some(
            faults::FaultPlan::new(5)
                .with_site(faults::SiteSpec::crash_at(RUNNER_FAULT_SITE, 2))
                .build(),
        );
        let bed = TestBed::create(cfg, &backend);
        let run = bed.run_combined_coscheduled(&backend, 4);
        assert_eq!(run.degraded_steps, 1, "one step fell back");
        assert!(
            run.phases.fallback > 0.0,
            "degradation must be charged to the fallback phase"
        );
        // The workflow still completes with a full catalog: the final step
        // is unaffected, so Level 3 output matches the fault-free runs.
        let baseline = bed.run_combined_simple(&backend);
        assert_same_centers(&baseline.centers, &run.centers);
    }
}
