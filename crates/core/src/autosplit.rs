//! Automating the in-situ / off-line split and the co-scheduling plan
//! (paper §4.1, final paragraphs).
//!
//! The paper chose the 300,000-particle threshold manually and sketches the
//! automation implemented here:
//!
//! 1. estimate `t_io`, the I/O time the off-line route would pay;
//! 2. the largest halo analyzable in-situ in comparable time has
//!    `m_max_io = argmax { t_center(m) ≤ t_io }`;
//! 3. if the largest halo found in-situ exceeds `m_max_io`, all larger halos
//!    are saved out for off-line center finding;
//! 4. the co-scheduled job gets `ranks = T / t_max` ranks, where `T` is the
//!    total center time over off-loaded halos and `t_max` the largest
//!    single-halo time, with halos distributed so each rank has roughly the
//!    same workload (LPT greedy by estimated time).

use halo::mbp::center_time_titan_gpu;

/// The decision produced by the autosplit heuristic.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitDecision {
    /// Halo-size threshold: halos above it are off-loaded.
    pub threshold: u64,
    /// Estimated off-line I/O time that justified it (seconds).
    pub t_io: f64,
    /// True when everything can be centered in situ.
    pub all_in_situ: bool,
}

/// Step 1–3: derive the split threshold from the I/O estimate and the halo
/// sizes found in-situ.
pub fn choose_split(t_io: f64, halo_sizes: &[u64]) -> SplitDecision {
    assert!(t_io >= 0.0);
    // Invert t_center(m) = c·m²: m_max_io = sqrt(t_io / c).
    let m_max_io = (t_io / halo::mbp::COEFF_TITAN_GPU).sqrt() as u64;
    let m_max_sim = halo_sizes.iter().copied().max().unwrap_or(0);
    SplitDecision {
        threshold: m_max_io,
        t_io,
        all_in_situ: m_max_sim <= m_max_io,
    }
}

/// A co-scheduling plan for the off-loaded halos.
#[derive(Debug, Clone, PartialEq)]
pub struct CoSchedulePlan {
    /// Rank count = ceil(T / t_max).
    pub ranks: usize,
    /// Estimated total center time over all off-loaded halos (seconds).
    pub total_seconds: f64,
    /// Estimated time of the single largest halo (seconds).
    pub longest_single: f64,
    /// Halo indices assigned to each rank (indices into the input slice).
    pub assignment: Vec<Vec<usize>>,
    /// Estimated per-rank workload (seconds).
    pub rank_seconds: Vec<f64>,
}

impl CoSchedulePlan {
    /// Load-balance quality: max rank time over mean rank time (1 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = self.rank_seconds.iter().cloned().fold(0.0, f64::max);
        let mean = self.rank_seconds.iter().sum::<f64>() / self.rank_seconds.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Step 4: size and pack the co-scheduled analysis job.
///
/// `offloaded` holds the particle counts of the off-loaded halos. Returns
/// `None` when there is nothing to off-load.
pub fn plan_coschedule(offloaded: &[u64]) -> Option<CoSchedulePlan> {
    if offloaded.is_empty() {
        return None;
    }
    let times: Vec<f64> = offloaded
        .iter()
        .map(|&m| center_time_titan_gpu(m))
        .collect();
    let total_seconds: f64 = times.iter().sum();
    let longest_single = times.iter().cloned().fold(0.0, f64::max);
    let ranks = ((total_seconds / longest_single).floor() as usize).max(1);

    // LPT greedy: biggest halo first onto the least-loaded rank.
    let mut order: Vec<usize> = (0..offloaded.len()).collect();
    order.sort_by(|&a, &b| times[b].partial_cmp(&times[a]).unwrap());
    let mut assignment = vec![Vec::new(); ranks];
    let mut rank_seconds = vec![0.0f64; ranks];
    for i in order {
        let r = rank_seconds
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(r, _)| r)
            .unwrap();
        assignment[r].push(i);
        rank_seconds[r] += times[i];
    }
    Some(CoSchedulePlan {
        ranks,
        total_seconds,
        longest_single,
        assignment,
        rank_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_threshold_inverts_cost_model() {
        // With t_io = 600 s (the paper's ~10 min read), the threshold is the
        // halo whose center takes 600 s: sqrt(600/3.36e-11) ≈ 4.2 M.
        let d = choose_split(600.0, &[1_000_000]);
        assert!((4.0e6..4.5e6).contains(&(d.threshold as f64)), "{d:?}");
        assert!(d.all_in_situ, "1M-particle max halo fits in situ");
        let d2 = choose_split(600.0, &[25_000_000]);
        assert!(!d2.all_in_situ, "a 25M halo must be off-loaded");
    }

    #[test]
    fn zero_io_time_offloads_everything_sizable() {
        let d = choose_split(0.0, &[50, 100]);
        assert_eq!(d.threshold, 0);
        assert!(!d.all_in_situ);
    }

    #[test]
    fn plan_rank_count_is_total_over_longest() {
        // One dominant halo and many small ones.
        let mut sizes = vec![1_000_000u64; 30];
        sizes.push(5_000_000);
        let plan = plan_coschedule(&sizes).unwrap();
        let t_small = center_time_titan_gpu(1_000_000);
        let t_big = center_time_titan_gpu(5_000_000);
        let expect = ((30.0 * t_small + t_big) / t_big).floor() as usize;
        assert_eq!(plan.ranks, expect.max(1));
        assert!((plan.longest_single - t_big).abs() < 1e-9);
    }

    #[test]
    fn lpt_balances_ranks() {
        let sizes: Vec<u64> = (1..=40).map(|i| i * 100_000).collect();
        let plan = plan_coschedule(&sizes).unwrap();
        assert!(
            plan.imbalance() < 1.7,
            "LPT should be near-balanced, got {}",
            plan.imbalance()
        );
        // Every halo assigned exactly once.
        let mut all: Vec<usize> = plan.assignment.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn empty_offload_needs_no_plan() {
        assert!(plan_coschedule(&[]).is_none());
    }

    #[test]
    fn single_giant_halo_gets_one_rank() {
        let plan = plan_coschedule(&[25_000_000]).unwrap();
        assert_eq!(plan.ranks, 1);
        assert_eq!(plan.assignment[0], vec![0]);
        assert!((plan.imbalance() - 1.0).abs() < 1e-12);
    }
}
