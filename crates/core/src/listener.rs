//! The co-scheduling "listener" (paper §3.2), derived from the Bellerophon
//! scheme: a background script that polls for new output files from the
//! running simulation and submits an analysis batch job for each one, then
//! resumes checking. A final sweep after the main job completes catches
//! outputs written at the very end of the run.
//!
//! Large simulation outputs take many poll intervals to write (the paper's
//! level-2 files are ~30 GB), so a file's *appearance* is not a safe submit
//! signal — analyzing a half-written container would fail or, worse, silently
//! truncate. Two guards address this:
//!
//! * **quiescence gate** — a new file is submitted only once its size is
//!   unchanged across two consecutive polls ([`ListenerConfig::require_quiescence`]);
//!   the final sweep at [`Listener::stop`] bypasses the gate because the
//!   simulation has exited and its files are complete;
//! * **temporary exclusion** — writers that stage through `foo.tmp` + rename
//!   are supported by skipping names with a configured suffix outright
//!   ([`ListenerConfig::exclude_suffix`]).

use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Listener configuration.
#[derive(Debug, Clone)]
pub struct ListenerConfig {
    /// Poll period — "should be chosen to be much higher than the rate at
    /// which the main code generates new output files".
    pub poll_interval: Duration,
    /// Only react to files whose name starts with this prefix…
    pub prefix: String,
    /// …and ends with this suffix.
    pub suffix: String,
    /// Never react to names ending with this suffix, even when they match
    /// `prefix`/`suffix` — covers writers that stage output through a
    /// temporary name before an atomic rename. `None` disables the filter.
    pub exclude_suffix: Option<String>,
    /// Submit a newly appeared file only after its size is unchanged across
    /// two consecutive polls, so in-progress writes are never picked up. The
    /// final sweep in [`Listener::stop`] bypasses this gate (the simulation
    /// has finished; its files are complete).
    pub require_quiescence: bool,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            poll_interval: Duration::from_millis(20),
            prefix: String::new(),
            suffix: String::new(),
            exclude_suffix: Some(".tmp".to_string()),
            require_quiescence: true,
        }
    }
}

/// A running listener thread.
pub struct Listener {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<Vec<PathBuf>>,
    seen: Arc<Mutex<BTreeSet<PathBuf>>>,
}

fn matching_files(dir: &Path, cfg: &ListenerConfig) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = entries
        .flatten()
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| {
                    n.starts_with(&cfg.prefix)
                        && n.ends_with(&cfg.suffix)
                        && cfg
                            .exclude_suffix
                            .as_deref()
                            .map(|x| !n.ends_with(x))
                            .unwrap_or(true)
                })
                .unwrap_or(false)
        })
        .collect();
    out.sort();
    out
}

impl Listener {
    /// Start watching `dir`; `on_file` runs once per newly appeared matching
    /// file (the "generate batch script and submit" step).
    pub fn spawn<F>(dir: PathBuf, cfg: ListenerConfig, mut on_file: F) -> Listener
    where
        F: FnMut(&Path) + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let seen: Arc<Mutex<BTreeSet<PathBuf>>> = Arc::new(Mutex::new(BTreeSet::new()));
        let stop2 = Arc::clone(&stop);
        let seen2 = Arc::clone(&seen);
        let handle = std::thread::spawn(move || {
            let mut submitted: Vec<PathBuf> = Vec::new();
            // Size at the previous poll for files still being written.
            let mut pending: HashMap<PathBuf, u64> = HashMap::new();
            let mut sweep = |on_file: &mut F, submitted: &mut Vec<PathBuf>, final_sweep: bool| {
                for f in matching_files(&dir, &cfg) {
                    if seen2.lock().contains(&f) {
                        continue;
                    }
                    if cfg.require_quiescence && !final_sweep {
                        let Ok(meta) = std::fs::metadata(&f) else {
                            continue; // raced with a writer's rename/delete
                        };
                        let size = meta.len();
                        if pending.get(&f) != Some(&size) {
                            // First sighting, or still growing: wait for a
                            // poll where the size holds steady.
                            pending.insert(f.clone(), size);
                            continue;
                        }
                    }
                    pending.remove(&f);
                    seen2.lock().insert(f.clone());
                    on_file(&f);
                    submitted.push(f);
                }
            };
            loop {
                if stop2.load(Ordering::Acquire) {
                    // One final sweep "to catch the last output data". The
                    // simulation has exited, so files are complete and the
                    // quiescence gate is bypassed.
                    sweep(&mut on_file, &mut submitted, true);
                    break;
                }
                sweep(&mut on_file, &mut submitted, false);
                // Interruptible sleep: check the stop flag every few ms so
                // stop() never blocks for a whole poll interval.
                let mut remaining = cfg.poll_interval;
                let slice = Duration::from_millis(5);
                while remaining > Duration::ZERO && !stop2.load(Ordering::Acquire) {
                    let nap = remaining.min(slice);
                    std::thread::sleep(nap);
                    remaining = remaining.saturating_sub(nap);
                }
            }
            submitted
        });
        Listener { stop, handle, seen }
    }

    /// Number of files handled so far.
    pub fn handled(&self) -> usize {
        self.seen.lock().len()
    }

    /// Signal the end of the main application and wait for the final sweep;
    /// returns every file submitted, in submission order.
    pub fn stop(self) -> Vec<PathBuf> {
        self.stop.store(true, Ordering::Release);
        self.handle.join().expect("listener thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("listener_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn submits_one_job_per_file() {
        let dir = tmpdir("basic");
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                prefix: "l2_".into(),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        for i in 0..3 {
            std::fs::write(dir.join(format!("l2_step{i}.hcio")), b"data").unwrap();
            std::thread::sleep(Duration::from_millis(50));
        }
        // Non-matching files are ignored.
        std::fs::write(dir.join("checkpoint.bin"), b"x").unwrap();
        std::fs::write(dir.join("l2_partial.tmp"), b"x").unwrap();
        let files = listener.stop();
        assert_eq!(files.len(), 3);
        assert_eq!(count.load(Ordering::SeqCst), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn final_sweep_catches_late_files() {
        let dir = tmpdir("late");
        // Very slow polling: the only chance to see the file is the final sweep.
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_secs(3600),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            |_| {},
        );
        std::thread::sleep(Duration::from_millis(30));
        std::fs::write(dir.join("last_step.hcio"), b"data").unwrap();
        let files = listener.stop();
        assert_eq!(files.len(), 1, "final sweep must catch the last output");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn files_are_submitted_exactly_once() {
        let dir = tmpdir("once");
        std::fs::write(dir.join("a.hcio"), b"1").unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        // Let it poll the same file many times.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(listener.handled(), 1);
        let files = listener.stop();
        assert_eq!(files.len(), 1);
        assert_eq!(count.load(Ordering::SeqCst), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partially_written_file_submits_once_after_quiescence() {
        let dir = tmpdir("quiesce");
        let path = dir.join("big.hcio");
        // Record the file size observed at submission time.
        let sizes: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&sizes);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(60),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            move |p| {
                s2.lock().push(std::fs::metadata(p).unwrap().len());
            },
        );
        // Simulate a slow writer: the file grows in small appends spanning
        // several poll intervals, so no two consecutive polls during the
        // write ever observe an unchanged size.
        use std::io::Write;
        let mut fh = std::fs::File::create(&path).unwrap();
        for _ in 0..40 {
            fh.write_all(&[0u8; 64]).unwrap();
            fh.flush().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(fh);
        let total = 40 * 64;
        assert_eq!(
            listener.handled(),
            0,
            "a still-growing file must not be submitted"
        );
        // Writer done: two quiet polls later the job fires, exactly once.
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(listener.handled(), 1, "quiescent file must be submitted");
        let files = listener.stop();
        assert_eq!(files.len(), 1, "exactly one (late) submission");
        assert_eq!(
            sizes.lock().as_slice(),
            &[total],
            "submission must see the complete file"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn excluded_temporaries_are_never_submitted() {
        let dir = tmpdir("tmpskip");
        std::fs::write(dir.join("a.out"), b"done").unwrap();
        std::fs::write(dir.join("b.tmp"), b"in progress").unwrap();
        let listener = Listener::spawn(
            dir.clone(),
            // Default config: match everything, exclude `.tmp`.
            ListenerConfig::default(),
            |_| {},
        );
        std::thread::sleep(Duration::from_millis(100));
        // Even the final sweep must not pick up the temporary.
        let files = listener.stop();
        assert_eq!(files.len(), 1);
        assert!(files[0].ends_with("a.out"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renamed_temporary_is_submitted_under_its_final_name() {
        let dir = tmpdir("rename");
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(10),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            |_| {},
        );
        std::fs::write(dir.join("out.hcio.tmp"), b"staged").unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(listener.handled(), 0);
        std::fs::rename(dir.join("out.hcio.tmp"), dir.join("out.hcio")).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(listener.handled(), 1);
        let files = listener.stop();
        assert_eq!(files.len(), 1);
        assert!(files[0].ends_with("out.hcio"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_tolerated() {
        let dir = std::env::temp_dir().join("listener_test_never_exists_xyz");
        let listener = Listener::spawn(dir, ListenerConfig::default(), |_| {});
        std::thread::sleep(Duration::from_millis(30));
        assert!(listener.stop().is_empty());
    }
}
