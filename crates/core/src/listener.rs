//! The co-scheduling "listener" (paper §3.2), derived from the Bellerophon
//! scheme: a background script that polls for new output files from the
//! running simulation and submits an analysis batch job for each one, then
//! resumes checking. A final sweep after the main job completes catches
//! outputs written at the very end of the run.
//!
//! Large simulation outputs take many poll intervals to write (the paper's
//! level-2 files are ~30 GB), so a file's *appearance* is not a safe submit
//! signal — analyzing a half-written container would fail or, worse, silently
//! truncate. Two guards address this:
//!
//! * **quiescence gate** — a new file is submitted only once its size is
//!   unchanged across two consecutive polls ([`ListenerConfig::require_quiescence`]);
//!   the final sweep at [`Listener::stop`] applies the same gate (with
//!   faster re-polls, bounded by [`ListenerConfig::stop_grace`]), so a file
//!   still being written at stop time is never submitted truncated;
//! * **temporary exclusion** — writers that stage through `foo.tmp` + rename
//!   are supported by skipping names with a configured suffix outright
//!   ([`ListenerConfig::exclude_suffix`]).
//!
//! On a real facility the listener itself fails: submissions bounce,
//! directory scans hit filesystem hiccups, and the listener process gets
//! killed. Three mechanisms make those survivable:
//!
//! * **retry with backoff** — a transient scan error skips one poll; a
//!   transient submit error is retried under the capped exponential
//!   [`ListenerConfig::retry`] policy, and a file whose submissions all fail
//!   stays unhandled so a later poll tries again;
//! * **crash-recovery journal** — with [`ListenerConfig::journal`] set,
//!   every handled file is appended to a [`crate::journal::Journal`] and
//!   preloaded on spawn, so a restarted listener never double-submits;
//! * **fault sites** — `listener.scan`, `listener.submit`, and
//!   `listener.journal` consult the [`ListenerConfig::injector`] (or the
//!   globally installed one), letting the chaos harness rehearse all of the
//!   above deterministically.

use crate::journal::Journal;
use faults::{BackoffPolicy, FaultInjector, FaultKind};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A failed submission attempt, reported by the `on_file` callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitError(pub String);

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "submit failed: {}", self.0)
    }
}

impl std::error::Error for SubmitError {}

/// Listener configuration.
#[derive(Debug, Clone)]
pub struct ListenerConfig {
    /// Poll period — "should be chosen to be much higher than the rate at
    /// which the main code generates new output files".
    pub poll_interval: Duration,
    /// Only react to files whose name starts with this prefix…
    pub prefix: String,
    /// …and ends with this suffix.
    pub suffix: String,
    /// Never react to names ending with this suffix, even when they match
    /// `prefix`/`suffix` — covers writers that stage output through a
    /// temporary name before an atomic rename. `None` disables the filter.
    pub exclude_suffix: Option<String>,
    /// Submit a newly appeared file only after its size is unchanged across
    /// two consecutive polls, so in-progress writes are never picked up.
    /// [`Listener::stop`]'s final sweep honors the same gate.
    pub require_quiescence: bool,
    /// Backoff policy for transient submit/journal failures.
    pub retry: BackoffPolicy,
    /// Persisted handled-file set: preloaded on spawn, appended after every
    /// successful submission, so a restarted listener never double-submits.
    pub journal: Option<PathBuf>,
    /// Fault injector consulted at the `listener.*` sites; `None` falls back
    /// to the globally installed injector (usually none — no faults).
    pub injector: Option<Arc<FaultInjector>>,
    /// How long [`Listener::stop`]'s final sweep keeps waiting for files
    /// that are still growing before giving up on them.
    pub stop_grace: Duration,
    /// Artifact-cache gate: consulted with each quiescent file *before*
    /// submission. When it returns `true` — a verified analysis product for
    /// this exact file already exists — the file is recorded as handled
    /// (journal included) without submitting a job, so a crash-restart or a
    /// duplicate scan never re-runs work whose output artifact survives.
    pub cache_gate: Option<CacheGate>,
    /// Size-triggered journal compaction: once the journal file exceeds this
    /// many bytes, it is rewritten (tmp + atomic rename) keeping only
    /// entries whose output file still exists on disk. `None` disables
    /// compaction — acceptable for one-shot runs, but a resident service
    /// must set it or the journal grows without bound. Assumes outputs are
    /// write-once: a handled file that is deleted and later *recreated
    /// under the same name* would be resubmitted after compaction.
    pub journal_compact_bytes: Option<u64>,
}

/// A cache-consultation callback (`true` = artifact exists and verifies, so
/// skip the submission), wrapped so [`ListenerConfig`] stays `Debug`.
#[derive(Clone)]
pub struct CacheGate(pub Arc<dyn Fn(&Path) -> bool + Send + Sync>);

impl CacheGate {
    /// Wrap a closure.
    pub fn new<F: Fn(&Path) -> bool + Send + Sync + 'static>(f: F) -> CacheGate {
        CacheGate(Arc::new(f))
    }
}

impl std::fmt::Debug for CacheGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CacheGate(..)")
    }
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            poll_interval: Duration::from_millis(20),
            prefix: String::new(),
            suffix: String::new(),
            exclude_suffix: Some(".tmp".to_string()),
            require_quiescence: true,
            retry: BackoffPolicy {
                base_seconds: 0.005,
                factor: 2.0,
                max_delay_seconds: 0.1,
                max_attempts: 5,
            },
            journal: None,
            injector: None,
            stop_grace: Duration::from_secs(2),
            cache_gate: None,
            journal_compact_bytes: None,
        }
    }
}

impl ListenerConfig {
    /// Decide a fault at `site`: the explicit injector when configured,
    /// otherwise the process-global one. Shared with the service's sharded
    /// listener, which reuses the `listener.*` sites.
    pub(crate) fn fault(&self, site: &str) -> Option<FaultKind> {
        match &self.injector {
            Some(inj) => inj.check(site),
            None => faults::poll(site),
        }
    }
}

/// What one listener run did, returned by [`Listener::stop_report`].
#[derive(Debug, Clone, Default)]
pub struct ListenerReport {
    /// Every file submitted by this run, in submission order (excludes files
    /// recovered from the journal, which a previous run submitted).
    pub submitted: Vec<PathBuf>,
    /// The listener died to an injected `Crash` fault before `stop` (no
    /// final sweep ran).
    pub crashed: bool,
    /// Failed submission attempts that were retried.
    pub submit_retries: u64,
    /// Journal appends that exhausted their retries (the file was submitted
    /// but could not be recorded — a restart may resubmit it).
    pub journal_failures: u64,
    /// Files handled without a submission because the
    /// [`ListenerConfig::cache_gate`] found a verified artifact for them, in
    /// handling order.
    pub cache_skipped: Vec<PathBuf>,
    /// Journal compactions performed ([`ListenerConfig::journal_compact_bytes`]).
    pub compactions: u64,
}

impl ListenerReport {
    /// Fold another report's accounting into this one. The service's shard
    /// workers sweep into a fresh per-sweep report and absorb it into the
    /// campaign's cumulative one afterwards, so no lock is held across a
    /// sweep (holding the report lock while the sweep takes the scan lock
    /// would invert the order a concurrent snapshot takes them in).
    pub fn absorb(&mut self, other: ListenerReport) {
        self.submitted.extend(other.submitted);
        self.crashed |= other.crashed;
        self.submit_retries += other.submit_retries;
        self.journal_failures += other.journal_failures;
        self.cache_skipped.extend(other.cache_skipped);
        self.compactions += other.compactions;
    }
}

/// A running listener thread.
pub struct Listener {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<ListenerReport>,
    state: Arc<Mutex<ScanState>>,
}

pub(crate) fn matching_files(dir: &Path, cfg: &ListenerConfig) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = entries
        .flatten()
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| {
                    n.starts_with(&cfg.prefix)
                        && n.ends_with(&cfg.suffix)
                        && cfg
                            .exclude_suffix
                            .as_deref()
                            .map(|x| !n.ends_with(x))
                            .unwrap_or(true)
                })
                .unwrap_or(false)
        })
        .collect();
    out.sort();
    out
}

/// Per-directory scan state, shared between the poll thread and the
/// [`Listener`] handle (and, in service mode, between shard workers): the
/// seen set, the quiescence size map, and the steady-state cursor.
///
/// The cursor is the heart of the O(new-files) steady state. Matching files
/// are handled in sorted name order, and once a *contiguous prefix* of the
/// sorted listing is fully handled the cursor advances to the prefix's last
/// name: every later sweep dismisses the whole prefix with one binary
/// search instead of probing each name against the seen set, and the
/// prefix's entries are **evicted** from the seen set, so steady-state
/// per-file work and memory track the unhandled tail — not every file ever
/// handled. Eviction is enabled only when a journal is configured: the
/// journal is the durable copy that rebuilds the seen set if the cursor's
/// invariant ever breaks (a file appearing *below* the cursor, detected by
/// comparing a fingerprint of the below-cursor name listing against the
/// one recorded when the cursor advanced — a bare count would miss a
/// deletion and an out-of-order arrival cancelling each other out).
pub(crate) struct ScanState {
    /// Handled files not (yet) covered by the cursor.
    seen: BTreeSet<PathBuf>,
    /// Size at the previous poll for files still being written.
    pending: HashMap<PathBuf, u64>,
    /// Greatest name of the fully-handled sorted prefix; every present
    /// matching file `<=` this path is handled.
    cursor: Option<PathBuf>,
    /// How many matching files were `<= cursor` when it last advanced.
    below: usize,
    /// [`names_fingerprint`] of those below-cursor names at that advance.
    below_fp: u64,
    /// Total files handled (journal-recovered included) — the counter
    /// behind [`Listener::handled`], kept separately because eviction makes
    /// `seen.len()` an undercount.
    handled_total: usize,
}

impl ScanState {
    pub(crate) fn new() -> Self {
        ScanState {
            seen: BTreeSet::new(),
            pending: HashMap::new(),
            cursor: None,
            below: 0,
            below_fp: 0,
            handled_total: 0,
        }
    }

    /// Preload journal-recovered entries; each counts as handled.
    pub(crate) fn recover(&mut self, entries: impl IntoIterator<Item = PathBuf>) {
        let before = self.seen.len();
        self.seen.extend(entries);
        self.handled_total += self.seen.len() - before;
    }

    /// Total files handled so far (recovered included).
    pub(crate) fn handled_total(&self) -> usize {
        self.handled_total
    }

    /// Entries currently resident in memory — bounded by the unhandled tail
    /// once the cursor is active, not by total files handled.
    pub(crate) fn seen_len(&self) -> usize {
        self.seen.len()
    }

    pub(crate) fn is_handled(&self, f: &Path) -> bool {
        self.cursor.as_deref().is_some_and(|c| f <= c) || self.seen.contains(f)
    }

    pub(crate) fn mark_handled(&mut self, f: &Path) {
        self.pending.remove(f);
        self.seen.insert(f.to_path_buf());
        self.handled_total += 1;
    }
}

/// Order-sensitive fingerprint of a sorted name listing, used to detect any
/// change to the below-cursor prefix — including a deletion and an
/// out-of-order arrival that leave the *count* unchanged. In-memory only
/// (recomputed per process), so per-process determinism is all that is
/// required. Hashing the prefix is O(below) per sweep, the same order as
/// the directory listing that produced `files` in the first place.
fn names_fingerprint(files: &[PathBuf]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for f in files {
        f.hash(&mut h);
    }
    h.finish()
}

/// One gated sweep over `dir`: quiescence check, cache gate, submission
/// with retry, journal append, cursor advance/eviction, and size-triggered
/// journal compaction. Returns `false` when an injected crash killed the
/// scanning thread mid-sweep.
///
/// Shared by the single-directory [`Listener`] and the service's sharded
/// listener. `state` must not be swept concurrently by another thread
/// (other threads may read its counters through the mutex).
pub(crate) fn sweep_dir<F>(
    dir: &Path,
    cfg: &ListenerConfig,
    state: &Mutex<ScanState>,
    journal: Option<&Journal>,
    on_file: &mut F,
    report: &mut ListenerReport,
) -> bool
where
    F: FnMut(&Path) -> Result<(), SubmitError>,
{
    let files = matching_files(dir, cfg);
    // Cursor guard: the invariant is "every present matching file `<=
    // cursor` is handled". If the below-cursor name listing drifted from
    // the one recorded when the cursor advanced — detected by fingerprint,
    // not count, so a deletion and an out-of-order arrival cannot cancel
    // each other out — a file appeared below the cursor: rebuild the seen
    // set from the journal and fall back to per-file probing for this sweep.
    let mut start = 0usize;
    // Set when drift was detected but the journal could not be read back:
    // the cursor baseline must not be re-recorded from the drifted listing,
    // or the next sweep would see a clean match and skip the newcomer
    // forever.
    let mut cursor_suspect = false;
    {
        let mut st = state.lock();
        if let Some(cursor) = st.cursor.clone() {
            let below = files.partition_point(|f| f.as_path() <= cursor.as_path());
            if below == st.below && names_fingerprint(&files[..below]) == st.below_fp {
                start = below;
            } else if let Some(j) = journal {
                match j.load() {
                    Ok(entries) => {
                        telemetry::count!("listener", "cursor_rebuilds", 1);
                        st.seen
                            .extend(entries.into_iter().filter(|p| p.parent() == Some(dir)));
                        st.cursor = None;
                        st.below = 0;
                        st.below_fp = 0;
                    }
                    Err(_) => {
                        // The durable copy is unreadable right now; keep
                        // trusting the cursor — skipping is the safe side
                        // for exactly-once (the newcomer waits for a sweep
                        // where the journal reads back).
                        start = below;
                        cursor_suspect = true;
                    }
                }
            }
        }
    }
    for f in &files[start..] {
        if state.lock().is_handled(f) {
            continue;
        }
        if cfg.require_quiescence {
            let Ok(meta) = std::fs::metadata(f) else {
                continue; // raced with a writer's rename/delete
            };
            let size = meta.len();
            let mut st = state.lock();
            if st.pending.get(f) != Some(&size) {
                // First sighting, or still growing: wait for a poll where
                // the size holds steady.
                st.pending.insert(f.clone(), size);
                continue;
            }
        }
        // Cache gate: a verified artifact for this exact file means the
        // submission would recompute something that already exists. Record
        // the file as handled — journal included, so a restart doesn't
        // resubmit it either — without running a job. Checked only after
        // quiescence: a half-written file's digest matches nothing anyway,
        // but there is no point hashing a moving target.
        if let Some(gate) = &cfg.cache_gate {
            if (gate.0)(f) {
                telemetry::count!("listener", "cache_skipped", 1);
                if let Some(j) = journal {
                    if !journal_append(f, cfg, report, j) {
                        return false; // crashed mid-append
                    }
                }
                report.cache_skipped.push(f.clone());
                state.lock().mark_handled(f);
                continue;
            }
        }
        if !submit_one(f, cfg, on_file, report, journal) {
            return false; // crashed mid-submit
        }
        if report.submitted.last().map(PathBuf::as_path) == Some(f.as_path()) {
            state.lock().mark_handled(f);
        }
    }
    // Advance the cursor over the (possibly longer) contiguous handled
    // prefix and evict what it now covers. Journal-gated: evicting without
    // a durable copy would turn a cursor rebuild into double submission.
    // Suspect-gated: while a detected drift awaits its journal rebuild, the
    // stale baseline is kept so the next sweep re-detects it.
    if journal.is_some() && !cursor_suspect {
        let mut st = state.lock();
        let mut idx =
            files.partition_point(|f| st.cursor.as_deref().is_some_and(|c| f.as_path() <= c));
        while idx < files.len() && st.is_handled(&files[idx]) {
            idx += 1;
        }
        if idx > 0 && (st.below != idx || st.cursor.is_none()) {
            let cursor = files[idx - 1].clone();
            let tail = st.seen.split_off(&cursor);
            st.seen = tail;
            st.seen.remove(&cursor);
            st.cursor = Some(cursor);
            st.below = idx;
            st.below_fp = names_fingerprint(&files[..idx]);
        }
    }
    // Size-triggered journal compaction, reusing the torn-append-healing
    // tmp+rename discipline (see [`Journal::rewrite`]): entries whose
    // output file vanished are dead weight a resident process would carry
    // forever. The `listener.compact` fault site lets the chaos harness
    // crash the worst window (survivors staged, rename not yet issued).
    if let (Some(j), Some(threshold)) = (journal, cfg.journal_compact_bytes) {
        // Consult the fault site only when a compaction is actually due, so
        // recorded hit counts track real compactions, not every sweep.
        if j.size_bytes().map(|s| s > threshold).unwrap_or(false) {
            match cfg.fault("listener.compact") {
                Some(FaultKind::Crash) => {
                    telemetry::instant!("faults", "listener.compact", 1);
                    if let Ok(live) = j.load() {
                        let kept = live.into_iter().filter(|p| p.exists()).collect();
                        let _ = j.stage(&kept);
                    }
                    return false; // died between staging and publish
                }
                Some(FaultKind::Stall(d)) => {
                    telemetry::instant!("faults", "listener.compact", 2);
                    std::thread::sleep(d);
                }
                Some(FaultKind::Transient) => {
                    // Compaction is pure maintenance: skip this round, the
                    // next sweep retries.
                    telemetry::instant!("faults", "listener.compact", 0);
                    return true;
                }
                None => {}
            }
            if let Ok(Some(_dropped)) = j.compact_if_larger(threshold, |p| p.exists()) {
                telemetry::count!("listener", "journal_compactions", 1);
                report.compactions += 1;
            }
        }
    }
    true
}

impl Listener {
    /// Start watching `dir`; `on_file` runs once per newly appeared matching
    /// file (the "generate batch script and submit" step). Infallible
    /// convenience wrapper over [`Listener::spawn_with`].
    pub fn spawn<F>(dir: PathBuf, cfg: ListenerConfig, mut on_file: F) -> Listener
    where
        F: FnMut(&Path) + Send + 'static,
    {
        Self::spawn_with(dir, cfg, move |p| {
            on_file(p);
            Ok(())
        })
    }

    /// Start watching `dir` with a fallible submitter: an `Err` from
    /// `on_file` is a transient submission failure, retried under
    /// [`ListenerConfig::retry`]; a file whose attempts all fail stays
    /// unhandled and is retried on a later poll.
    pub fn spawn_with<F>(dir: PathBuf, cfg: ListenerConfig, mut on_file: F) -> Listener
    where
        F: FnMut(&Path) -> Result<(), SubmitError> + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new(ScanState::new()));
        // Crash recovery: files a previous listener run already handled are
        // seen from the start and never resubmitted.
        let journal = cfg.journal.clone().map(Journal::new);
        if let Some(j) = &journal {
            let recovered = j.load().expect("listener journal unreadable");
            telemetry::count!("listener", "journal_recovered", recovered.len());
            state.lock().recover(recovered);
        }
        let stop2 = Arc::clone(&stop);
        let state2 = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let mut report = ListenerReport::default();
            loop {
                if stop2.load(Ordering::Acquire) {
                    // Final sweeps "to catch the last output data" — under
                    // the same quiescence gate as regular polls (a file may
                    // still be mid-write when stop is requested), re-polling
                    // quickly until nothing unhandled remains or the grace
                    // period runs out.
                    let deadline = Instant::now() + cfg.stop_grace;
                    loop {
                        if !sweep_dir(
                            &dir,
                            &cfg,
                            &state2,
                            journal.as_ref(),
                            &mut on_file,
                            &mut report,
                        ) {
                            report.crashed = true;
                            return report;
                        }
                        let all_handled = {
                            let st = state2.lock();
                            matching_files(&dir, &cfg).iter().all(|f| st.is_handled(f))
                        };
                        if all_handled || Instant::now() >= deadline {
                            break;
                        }
                        // Re-poll quickly, but not so quickly that a slow
                        // writer's size appears unchanged between passes.
                        std::thread::sleep(cfg.poll_interval.min(Duration::from_millis(25)));
                    }
                    break;
                }
                telemetry::count!("listener", "scans", 1);
                match cfg.fault("listener.scan") {
                    Some(FaultKind::Crash) => {
                        // The listener process dies: no final sweep, no
                        // journal flush beyond what already committed.
                        telemetry::instant!("faults", "listener.scan", 1);
                        report.crashed = true;
                        return report;
                    }
                    Some(FaultKind::Stall(d)) => {
                        telemetry::instant!("faults", "listener.scan", 2);
                        std::thread::sleep(d);
                    }
                    Some(FaultKind::Transient) => {
                        // Directory scan failed (filesystem hiccup); the
                        // next poll is the retry.
                        telemetry::instant!("faults", "listener.scan", 0);
                    }
                    None => {
                        if !sweep_dir(
                            &dir,
                            &cfg,
                            &state2,
                            journal.as_ref(),
                            &mut on_file,
                            &mut report,
                        ) {
                            report.crashed = true;
                            return report;
                        }
                    }
                }
                // Interruptible sleep: check the stop flag every few ms so
                // stop() never blocks for a whole poll interval.
                let mut remaining = cfg.poll_interval;
                let slice = Duration::from_millis(5);
                while remaining > Duration::ZERO && !stop2.load(Ordering::Acquire) {
                    let nap = remaining.min(slice);
                    std::thread::sleep(nap);
                    remaining = remaining.saturating_sub(nap);
                }
            }
            report
        });
        Listener {
            stop,
            handle,
            state,
        }
    }

    /// Number of files handled so far (journal-recovered files included).
    pub fn handled(&self) -> usize {
        self.state.lock().handled_total()
    }

    /// Entries currently resident in the in-memory seen set. With a journal
    /// configured this is bounded by the *unhandled tail* of the directory —
    /// the cursor evicts handled-and-journaled entries — not by the total
    /// number of files ever handled. Exposed for diagnostics and the
    /// backlog regression tests.
    pub fn seen_len(&self) -> usize {
        self.state.lock().seen_len()
    }

    /// Signal the end of the main application and wait for the final sweep;
    /// returns every file submitted, in submission order.
    #[deprecated(
        since = "0.1.0",
        note = "use stop_report(): stop() discards the crash flag, cache skips, \
                and retry/compaction accounting the report carries"
    )]
    pub fn stop(self) -> Vec<PathBuf> {
        self.stop_report().submitted
    }

    /// Like [`Listener::stop`], but returns the full [`ListenerReport`]
    /// (crash flag, retry counts) for the chaos harness.
    pub fn stop_report(self) -> ListenerReport {
        self.stop.store(true, Ordering::Release);
        self.handle.join().expect("listener thread panicked")
    }
}

/// Submit one quiescent file with retry-with-backoff on transient failures.
///
/// Returns `false` only when an injected `Crash` fault killed the listener.
/// Success is visible to the caller as `report.submitted.last() == Some(f)`;
/// a file whose attempts are exhausted is simply not appended (a later poll
/// retries it from scratch).
pub(crate) fn submit_one<F>(
    f: &Path,
    cfg: &ListenerConfig,
    on_file: &mut F,
    report: &mut ListenerReport,
    journal: Option<&Journal>,
) -> bool
where
    F: FnMut(&Path) -> Result<(), SubmitError>,
{
    let _span = telemetry::span!("listener", "submit");
    for attempt in 0..cfg.retry.max_attempts {
        if attempt > 0 {
            std::thread::sleep(cfg.retry.delay(attempt - 1));
        }
        let outcome = match cfg.fault("listener.submit") {
            Some(FaultKind::Crash) => {
                telemetry::instant!("faults", "listener.submit", 1);
                return false;
            }
            Some(FaultKind::Transient) => {
                telemetry::instant!("faults", "listener.submit", 0);
                Err(SubmitError("injected transient fault".into()))
            }
            Some(FaultKind::Stall(d)) => {
                telemetry::instant!("faults", "listener.submit", 2);
                std::thread::sleep(d);
                on_file(f)
            }
            None => on_file(f),
        };
        match outcome {
            Ok(()) => {
                if let Some(j) = journal {
                    if !journal_append(f, cfg, report, j) {
                        return false; // crashed mid-append
                    }
                }
                telemetry::count!("listener", "submitted", 1);
                report.submitted.push(f.to_path_buf());
                return true;
            }
            Err(_) => report.submit_retries += 1,
        }
    }
    true // attempts exhausted; the file stays unhandled for a later poll
}

/// Append a handled file to the journal, retrying transient failures.
/// Returns `false` when an injected `Crash` fault fired.
pub(crate) fn journal_append(
    f: &Path,
    cfg: &ListenerConfig,
    report: &mut ListenerReport,
    j: &Journal,
) -> bool {
    for attempt in 0..cfg.retry.max_attempts {
        if attempt > 0 {
            std::thread::sleep(cfg.retry.delay(attempt - 1));
        }
        match cfg.fault("listener.journal") {
            Some(FaultKind::Crash) => {
                telemetry::instant!("faults", "listener.journal", 1);
                return false;
            }
            Some(FaultKind::Transient) => {
                telemetry::instant!("faults", "listener.journal", 0);
                continue;
            }
            Some(FaultKind::Stall(d)) => {
                telemetry::instant!("faults", "listener.journal", 2);
                std::thread::sleep(d);
            }
            None => {}
        }
        if j.append(f).is_ok() {
            return true;
        }
    }
    // The submission happened but could not be recorded; a restarted
    // listener may resubmit this file.
    report.journal_failures += 1;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("listener_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn submits_one_job_per_file() {
        let dir = tmpdir("basic");
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                prefix: "l2_".into(),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        for i in 0..3 {
            std::fs::write(dir.join(format!("l2_step{i}.hcio")), b"data").unwrap();
            std::thread::sleep(Duration::from_millis(50));
        }
        // Non-matching files are ignored.
        std::fs::write(dir.join("checkpoint.bin"), b"x").unwrap();
        std::fs::write(dir.join("l2_partial.tmp"), b"x").unwrap();
        let files = listener.stop_report().submitted;
        assert_eq!(files.len(), 3);
        assert_eq!(count.load(Ordering::SeqCst), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn final_sweep_catches_late_files() {
        let dir = tmpdir("late");
        // Very slow polling: the only chance to see the file is the final sweep.
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_secs(3600),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            |_| {},
        );
        std::thread::sleep(Duration::from_millis(30));
        std::fs::write(dir.join("last_step.hcio"), b"data").unwrap();
        let files = listener.stop_report().submitted;
        assert_eq!(files.len(), 1, "final sweep must catch the last output");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn files_are_submitted_exactly_once() {
        let dir = tmpdir("once");
        std::fs::write(dir.join("a.hcio"), b"1").unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        // Let it poll the same file many times.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(listener.handled(), 1);
        let files = listener.stop_report().submitted;
        assert_eq!(files.len(), 1);
        assert_eq!(count.load(Ordering::SeqCst), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partially_written_file_submits_once_after_quiescence() {
        let dir = tmpdir("quiesce");
        let path = dir.join("big.hcio");
        // Record the file size observed at submission time.
        let sizes: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&sizes);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(60),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            move |p| {
                s2.lock().push(std::fs::metadata(p).unwrap().len());
            },
        );
        // Simulate a slow writer: the file grows in small appends spanning
        // several poll intervals, so no two consecutive polls during the
        // write ever observe an unchanged size.
        use std::io::Write;
        let mut fh = std::fs::File::create(&path).unwrap();
        for _ in 0..40 {
            fh.write_all(&[0u8; 64]).unwrap();
            fh.flush().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(fh);
        let total = 40 * 64;
        assert_eq!(
            listener.handled(),
            0,
            "a still-growing file must not be submitted"
        );
        // Writer done: two quiet polls later the job fires, exactly once.
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(listener.handled(), 1, "quiescent file must be submitted");
        let files = listener.stop_report().submitted;
        assert_eq!(files.len(), 1, "exactly one (late) submission");
        assert_eq!(
            sizes.lock().as_slice(),
            &[total],
            "submission must see the complete file"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn excluded_temporaries_are_never_submitted() {
        let dir = tmpdir("tmpskip");
        std::fs::write(dir.join("a.out"), b"done").unwrap();
        std::fs::write(dir.join("b.tmp"), b"in progress").unwrap();
        let listener = Listener::spawn(
            dir.clone(),
            // Default config: match everything, exclude `.tmp`.
            ListenerConfig::default(),
            |_| {},
        );
        std::thread::sleep(Duration::from_millis(100));
        // Even the final sweep must not pick up the temporary.
        let files = listener.stop_report().submitted;
        assert_eq!(files.len(), 1);
        assert!(files[0].ends_with("a.out"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renamed_temporary_is_submitted_under_its_final_name() {
        let dir = tmpdir("rename");
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(10),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            |_| {},
        );
        std::fs::write(dir.join("out.hcio.tmp"), b"staged").unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(listener.handled(), 0);
        std::fs::rename(dir.join("out.hcio.tmp"), dir.join("out.hcio")).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(listener.handled(), 1);
        let files = listener.stop_report().submitted;
        assert_eq!(files.len(), 1);
        assert!(files[0].ends_with("out.hcio"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_tolerated() {
        let dir = std::env::temp_dir().join("listener_test_never_exists_xyz");
        let listener = Listener::spawn(dir, ListenerConfig::default(), |_| {});
        std::thread::sleep(Duration::from_millis(30));
        assert!(listener.stop_report().submitted.is_empty());
    }

    #[test]
    fn stop_waits_for_in_flight_writer_to_quiesce() {
        // Satellite fix: the final sweep must honor the quiescence gate. A
        // file still being written when stop() is called used to be submitted
        // truncated; now stop re-polls until the size holds steady.
        let dir = tmpdir("stopgate");
        let path = dir.join("tail.hcio");
        let sizes: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&sizes);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_secs(3600), // only the final sweep sees it
                suffix: ".hcio".into(),
                stop_grace: Duration::from_secs(5),
                ..Default::default()
            },
            move |p| {
                s2.lock().push(std::fs::metadata(p).unwrap().len());
            },
        );
        std::thread::sleep(Duration::from_millis(30));
        // Writer starts just before stop and keeps appending across the
        // final-sweep passes.
        use std::io::Write;
        let writer = std::thread::spawn(move || {
            let mut fh = std::fs::File::create(&path).unwrap();
            for _ in 0..20 {
                fh.write_all(&[7u8; 32]).unwrap();
                fh.flush().unwrap();
                std::thread::sleep(Duration::from_millis(8));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let files = listener.stop_report().submitted;
        writer.join().unwrap();
        assert_eq!(files.len(), 1, "the late file must still be caught");
        assert_eq!(
            sizes.lock().as_slice(),
            &[20 * 32],
            "final sweep must submit the complete file, not a truncation"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stop_gives_up_on_perpetually_growing_file_after_grace() {
        let dir = tmpdir("stopgrace");
        let path = dir.join("grow.hcio");
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_secs(3600),
                suffix: ".hcio".into(),
                stop_grace: Duration::from_millis(100),
                ..Default::default()
            },
            |_| {},
        );
        std::thread::sleep(Duration::from_millis(20));
        let stop_flag = Arc::new(AtomicBool::new(false));
        let sf = Arc::clone(&stop_flag);
        let writer = std::thread::spawn(move || {
            use std::io::Write;
            let mut fh = std::fs::File::create(&path).unwrap();
            while !sf.load(Ordering::Acquire) {
                fh.write_all(&[1u8; 16]).unwrap();
                fh.flush().unwrap();
                std::thread::sleep(Duration::from_millis(3));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        let files = listener.stop_report().submitted;
        let took = t0.elapsed();
        stop_flag.store(true, Ordering::Release);
        writer.join().unwrap();
        assert!(
            files.is_empty(),
            "a never-quiescent file must not be submitted"
        );
        assert!(
            took < Duration::from_secs(3),
            "stop must give up after grace"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_submit_faults_are_retried_exactly_once_semantics() {
        let dir = tmpdir("faultretry");
        std::fs::write(dir.join("a.hcio"), b"x").unwrap();
        let plan = faults::FaultPlan::new(42)
            .with_site(faults::SiteSpec::transient("listener.submit", 1.0).with_max_faults(2))
            .build();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                injector: Some(Arc::clone(&plan)),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        std::thread::sleep(Duration::from_millis(150));
        let report = listener.stop_report();
        assert_eq!(report.submitted.len(), 1);
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "exactly-once despite retries"
        );
        assert_eq!(report.submit_retries, 2, "both injected faults retried");
        assert!(!report.crashed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashed_listener_restarts_from_journal_without_double_submit() {
        let dir = tmpdir("crashjournal");
        let journal_path = dir.join("listener.journal");
        std::fs::write(dir.join("a.hcio"), b"1").unwrap();
        std::fs::write(dir.join("b.hcio"), b"2").unwrap();
        let submissions: Arc<Mutex<Vec<PathBuf>>> = Arc::new(Mutex::new(Vec::new()));

        // Run 1: crash on the third scan — after a/b have been handled.
        let plan = faults::FaultPlan::new(7)
            .with_site(faults::SiteSpec::crash_at("listener.scan", 4))
            .build();
        let s2 = Arc::clone(&submissions);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path.clone()),
                injector: Some(plan),
                ..Default::default()
            },
            move |p| {
                s2.lock().push(p.to_path_buf());
            },
        );
        // Wait for the crash to land.
        std::thread::sleep(Duration::from_millis(150));
        let report1 = listener.stop_report();
        assert!(report1.crashed, "the injected crash must kill the listener");
        assert_eq!(report1.submitted.len(), 2);

        // A new output appears while the listener is down.
        std::fs::write(dir.join("c.hcio"), b"3").unwrap();

        // Run 2: restart with the same journal, no faults.
        let s3 = Arc::clone(&submissions);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path.clone()),
                ..Default::default()
            },
            move |p| {
                s3.lock().push(p.to_path_buf());
            },
        );
        std::thread::sleep(Duration::from_millis(100));
        let report2 = listener.stop_report();
        assert!(!report2.crashed);
        assert_eq!(report2.submitted.len(), 1, "only the new file is submitted");
        assert!(report2.submitted[0].ends_with("c.hcio"));
        // Across both runs every file was submitted exactly once.
        let subs = submissions.lock();
        assert_eq!(subs.len(), 3);
        let names: BTreeSet<_> = subs.iter().map(|p| p.file_name().unwrap()).collect();
        assert_eq!(names.len(), 3, "no double submissions across restart");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_gate_skips_submission_and_journals_the_skip() {
        let dir = tmpdir("cachegate");
        let journal_path = dir.join("listener.journal");
        std::fs::write(dir.join("hit.hcio"), b"already analyzed").unwrap();
        std::fs::write(dir.join("miss.hcio"), b"new data").unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path.clone()),
                cache_gate: Some(CacheGate::new(|p: &Path| {
                    p.file_name().unwrap().to_str().unwrap().starts_with("hit")
                })),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(listener.handled(), 2, "both files are handled");
        let report = listener.stop_report();
        assert_eq!(report.submitted.len(), 1);
        assert!(report.submitted[0].ends_with("miss.hcio"));
        assert_eq!(report.cache_skipped.len(), 1);
        assert!(report.cache_skipped[0].ends_with("hit.hcio"));
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "no job for the cached file"
        );

        // The skip was journaled: a restarted listener *without* the gate
        // still does not resubmit the cached file.
        let c3 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path),
                ..Default::default()
            },
            move |_| {
                c3.fetch_add(1, Ordering::SeqCst);
            },
        );
        std::thread::sleep(Duration::from_millis(80));
        let report2 = listener.stop_report();
        assert!(report2.submitted.is_empty(), "nothing left to submit");
        assert_eq!(count.load(Ordering::SeqCst), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_recovery_counts_as_handled() {
        let dir = tmpdir("recoverhandled");
        let journal_path = dir.join("listener.journal");
        let handled = dir.join("old.hcio");
        std::fs::write(&handled, b"old").unwrap();
        Journal::new(journal_path.clone()).append(&handled).unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(listener.handled(), 1, "recovered file counts as handled");
        let report = listener.stop_report();
        assert!(
            report.submitted.is_empty(),
            "recovered file is not resubmitted"
        );
        assert_eq!(count.load(Ordering::SeqCst), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_stop_delegates_to_stop_report() {
        // The divergent stop() path is gone: it is now a thin (deprecated)
        // wrapper over stop_report(), so both APIs observe the same run.
        let dir = tmpdir("stopdelegate");
        std::fs::write(dir.join("a.hcio"), b"x").unwrap();
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            |_| {},
        );
        std::thread::sleep(Duration::from_millis(60));
        let files = listener.stop();
        assert_eq!(files.len(), 1);
        assert!(files[0].ends_with("a.hcio"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite regression: a 10k-file backlog recovered from the journal
    /// must not be re-probed file-by-file on every poll. The cursor covers
    /// the handled prefix, the seen set is evicted down to the unhandled
    /// tail, and a genuinely new file is still handled exactly once — even
    /// one that sorts *below* the cursor (out-of-order arrival).
    #[test]
    fn ten_k_backlog_scans_stay_o_new_files() {
        let dir = tmpdir("backlog10k");
        let journal_path = dir.join("shard.journal");
        // Pre-populate the backlog and its journal directly (journaling 10k
        // entries through append() would fsync 10k times).
        let mut journal_text = String::from("hacc-listener-journal v1\n");
        for i in 0..10_000 {
            let p = dir.join(format!("m_{i:05}.hcio"));
            std::fs::write(&p, b"handled long ago").unwrap();
            journal_text.push_str(&p.to_string_lossy());
            journal_text.push('\n');
        }
        std::fs::write(&journal_path, journal_text).unwrap();

        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path.clone()),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        // Sweeps over 10k files take a while in debug builds: wait on the
        // observable counters instead of fixed sleeps.
        let wait_for = |cond: &dyn Fn() -> bool| {
            let deadline = Instant::now() + Duration::from_secs(10);
            while !cond() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
        };
        wait_for(&|| listener.handled() == 10_000 && listener.seen_len() < 16);
        assert_eq!(listener.handled(), 10_000);
        assert_eq!(
            count.load(Ordering::SeqCst),
            0,
            "backlog is never resubmitted"
        );
        assert!(
            listener.seen_len() < 16,
            "handled-and-journaled backlog must be evicted from the seen \
             set, got {} resident entries",
            listener.seen_len()
        );

        // A new file above the cursor: handled exactly once, then evicted.
        std::fs::write(dir.join("m_10000.hcio"), b"new").unwrap();
        wait_for(&|| listener.handled() == 10_001);
        assert_eq!(listener.handled(), 10_001);
        assert_eq!(count.load(Ordering::SeqCst), 1);

        // A file sorting below the cursor breaks the prefix invariant; the
        // guard detects the count drift, rebuilds from the journal, and the
        // newcomer is handled exactly once.
        std::fs::write(dir.join("a_straggler.hcio"), b"late").unwrap();
        wait_for(&|| listener.handled() == 10_002 && listener.seen_len() < 16);
        assert_eq!(listener.handled(), 10_002);
        assert_eq!(count.load(Ordering::SeqCst), 2);
        assert!(
            listener.seen_len() < 16,
            "seen set must shrink back after the rebuild, got {}",
            listener.seen_len()
        );

        let report = listener.stop_report();
        assert_eq!(report.submitted.len(), 2);
        assert!(!report.crashed);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Review regression: the cursor guard must key on the *identity* of
    /// the below-cursor listing, not its count. If an already-handled file
    /// below the cursor is deleted (e.g. swept to tape) and a new file
    /// arrives below the cursor in the same window, the counts cancel; a
    /// count-based guard would report the newcomer handled and silently
    /// never submit it.
    #[test]
    fn cursor_guard_detects_cancelling_delete_and_add() {
        let dir = tmpdir("cursorcancel");
        let journal_path = dir.join("j.journal");
        let j = Journal::new(journal_path);
        let cfg = ListenerConfig {
            suffix: ".hcio".into(),
            ..Default::default()
        };
        // Five handled, journaled files.
        for i in 0..5 {
            let p = dir.join(format!("m_{i:02}.hcio"));
            std::fs::write(&p, b"handled").unwrap();
            j.append(&p).unwrap();
        }
        let state = Mutex::new(ScanState::new());
        state.lock().recover(j.load().unwrap());
        let count = std::cell::Cell::new(0usize);
        let mut report = ListenerReport::default();
        let mut on_file = |_: &Path| {
            count.set(count.get() + 1);
            Ok(())
        };
        // Sweep 1 establishes the cursor over the handled prefix.
        assert!(sweep_dir(
            &dir,
            &cfg,
            &state,
            Some(&j),
            &mut on_file,
            &mut report
        ));
        assert!(state.lock().cursor.is_some(), "cursor must be active");
        assert_eq!(state.lock().seen_len(), 0, "prefix fully evicted");

        // An external sweep deletes one handled file while a straggler
        // lands below the cursor: the below-cursor count is unchanged (5).
        std::fs::remove_file(dir.join("m_03.hcio")).unwrap();
        std::fs::write(dir.join("m_01a.hcio"), b"late").unwrap();

        // Sweep 2 detects the fingerprint drift, rebuilds from the journal,
        // and starts the newcomer's quiescence window; sweep 3 submits it.
        assert!(sweep_dir(
            &dir,
            &cfg,
            &state,
            Some(&j),
            &mut on_file,
            &mut report
        ));
        assert!(sweep_dir(
            &dir,
            &cfg,
            &state,
            Some(&j),
            &mut on_file,
            &mut report
        ));
        assert_eq!(
            count.get(),
            1,
            "the straggler must be submitted exactly once"
        );
        assert_eq!(report.submitted.len(), 1);
        assert!(report.submitted[0].ends_with("m_01a.hcio"));

        // Steady state again: further sweeps submit nothing and the seen
        // set shrinks back under the re-advanced cursor.
        assert!(sweep_dir(
            &dir,
            &cfg,
            &state,
            Some(&j),
            &mut on_file,
            &mut report
        ));
        assert_eq!(count.get(), 1);
        assert_eq!(state.lock().handled_total(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_compaction_drops_swept_outputs_and_survives_restart() {
        let dir = tmpdir("compactlive");
        let journal_path = dir.join("listener.journal");
        let count = Arc::new(AtomicUsize::new(0));
        let spawn = |threshold: Option<u64>, c: Arc<AtomicUsize>| {
            Listener::spawn(
                dir.clone(),
                ListenerConfig {
                    poll_interval: Duration::from_millis(5),
                    suffix: ".hcio".into(),
                    journal: Some(journal_path.clone()),
                    journal_compact_bytes: threshold,
                    ..Default::default()
                },
                move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                },
            )
        };
        // Handle 20 files without compaction.
        for i in 0..20 {
            std::fs::write(dir.join(format!("l2_{i:02}.hcio")), b"data").unwrap();
        }
        let listener = spawn(None, Arc::clone(&count));
        std::thread::sleep(Duration::from_millis(120));
        assert!(!listener.stop_report().crashed);
        assert_eq!(count.load(Ordering::SeqCst), 20);
        let full_size = Journal::new(journal_path.clone()).size_bytes().unwrap();

        // Archive 15 outputs (a real service sweeps drops to tape), then
        // restart with a tight compaction threshold: the journal must shed
        // the dead entries while keeping every live one.
        for i in 0..15 {
            std::fs::remove_file(dir.join(format!("l2_{i:02}.hcio"))).unwrap();
        }
        let listener = spawn(Some(full_size / 2), Arc::clone(&count));
        std::thread::sleep(Duration::from_millis(120));
        let report = listener.stop_report();
        assert!(report.compactions >= 1, "size trigger must have fired");
        assert_eq!(count.load(Ordering::SeqCst), 20, "no resubmissions");
        let j = Journal::new(journal_path.clone());
        assert!(j.size_bytes().unwrap() < full_size);
        let live = j.load().unwrap();
        assert_eq!(live.len(), 5, "exactly the live entries survive");
        for i in 15..20 {
            assert!(live.contains(&dir.join(format!("l2_{i:02}.hcio"))));
        }

        // And a third incarnation over the compacted journal still treats
        // the survivors as handled.
        let listener = spawn(None, Arc::clone(&count));
        std::thread::sleep(Duration::from_millis(80));
        assert!(listener.stop_report().submitted.is_empty());
        assert_eq!(count.load(Ordering::SeqCst), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_during_compaction_recovers_without_losing_entries() {
        let dir = tmpdir("compactcrash");
        let journal_path = dir.join("listener.journal");
        for i in 0..10 {
            std::fs::write(dir.join(format!("l2_{i}.hcio")), b"data").unwrap();
        }
        let count = Arc::new(AtomicUsize::new(0));

        // Incarnation 1: crash at the first compaction attempt — in the
        // worst window, after staging the survivors but before the rename.
        let plan = faults::FaultPlan::new(11)
            .with_site(faults::SiteSpec::crash_at("listener.compact", 0))
            .build();
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path.clone()),
                journal_compact_bytes: Some(64),
                injector: Some(plan),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        std::thread::sleep(Duration::from_millis(150));
        let report1 = listener.stop_report();
        assert!(
            report1.crashed,
            "the compaction crash must kill the listener"
        );
        let handled_before = count.load(Ordering::SeqCst);
        assert!(handled_before > 0);
        let j = Journal::new(journal_path.clone());
        assert!(
            j.staging_path().exists(),
            "crash must strand the staged tmp, not a half-rewritten journal"
        );
        assert_eq!(
            j.load().unwrap().len(),
            handled_before,
            "the live journal must be byte-untouched by the aborted compaction"
        );

        // Incarnation 2 (no faults): nothing is resubmitted, the remaining
        // files are handled, and a clean compaction consumes the stale tmp.
        let c3 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path.clone()),
                journal_compact_bytes: Some(64),
                ..Default::default()
            },
            move |_| {
                c3.fetch_add(1, Ordering::SeqCst);
            },
        );
        std::thread::sleep(Duration::from_millis(150));
        let report2 = listener.stop_report();
        assert!(!report2.crashed);
        assert_eq!(
            count.load(Ordering::SeqCst),
            10,
            "every file analyzed exactly once across the crash"
        );
        assert_eq!(j.load().unwrap().len(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
