//! The co-scheduling "listener" (paper §3.2), derived from the Bellerophon
//! scheme: a background script that polls for new output files from the
//! running simulation and submits an analysis batch job for each one, then
//! resumes checking. A final sweep after the main job completes catches
//! outputs written at the very end of the run.
//!
//! Large simulation outputs take many poll intervals to write (the paper's
//! level-2 files are ~30 GB), so a file's *appearance* is not a safe submit
//! signal — analyzing a half-written container would fail or, worse, silently
//! truncate. Two guards address this:
//!
//! * **quiescence gate** — a new file is submitted only once its size is
//!   unchanged across two consecutive polls ([`ListenerConfig::require_quiescence`]);
//!   the final sweep at [`Listener::stop`] applies the same gate (with
//!   faster re-polls, bounded by [`ListenerConfig::stop_grace`]), so a file
//!   still being written at stop time is never submitted truncated;
//! * **temporary exclusion** — writers that stage through `foo.tmp` + rename
//!   are supported by skipping names with a configured suffix outright
//!   ([`ListenerConfig::exclude_suffix`]).
//!
//! On a real facility the listener itself fails: submissions bounce,
//! directory scans hit filesystem hiccups, and the listener process gets
//! killed. Three mechanisms make those survivable:
//!
//! * **retry with backoff** — a transient scan error skips one poll; a
//!   transient submit error is retried under the capped exponential
//!   [`ListenerConfig::retry`] policy, and a file whose submissions all fail
//!   stays unhandled so a later poll tries again;
//! * **crash-recovery journal** — with [`ListenerConfig::journal`] set,
//!   every handled file is appended to a [`crate::journal::Journal`] and
//!   preloaded on spawn, so a restarted listener never double-submits;
//! * **fault sites** — `listener.scan`, `listener.submit`, and
//!   `listener.journal` consult the [`ListenerConfig::injector`] (or the
//!   globally installed one), letting the chaos harness rehearse all of the
//!   above deterministically.

use crate::journal::Journal;
use faults::{BackoffPolicy, FaultInjector, FaultKind};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A failed submission attempt, reported by the `on_file` callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitError(pub String);

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "submit failed: {}", self.0)
    }
}

impl std::error::Error for SubmitError {}

/// Listener configuration.
#[derive(Debug, Clone)]
pub struct ListenerConfig {
    /// Poll period — "should be chosen to be much higher than the rate at
    /// which the main code generates new output files".
    pub poll_interval: Duration,
    /// Only react to files whose name starts with this prefix…
    pub prefix: String,
    /// …and ends with this suffix.
    pub suffix: String,
    /// Never react to names ending with this suffix, even when they match
    /// `prefix`/`suffix` — covers writers that stage output through a
    /// temporary name before an atomic rename. `None` disables the filter.
    pub exclude_suffix: Option<String>,
    /// Submit a newly appeared file only after its size is unchanged across
    /// two consecutive polls, so in-progress writes are never picked up.
    /// [`Listener::stop`]'s final sweep honors the same gate.
    pub require_quiescence: bool,
    /// Backoff policy for transient submit/journal failures.
    pub retry: BackoffPolicy,
    /// Persisted handled-file set: preloaded on spawn, appended after every
    /// successful submission, so a restarted listener never double-submits.
    pub journal: Option<PathBuf>,
    /// Fault injector consulted at the `listener.*` sites; `None` falls back
    /// to the globally installed injector (usually none — no faults).
    pub injector: Option<Arc<FaultInjector>>,
    /// How long [`Listener::stop`]'s final sweep keeps waiting for files
    /// that are still growing before giving up on them.
    pub stop_grace: Duration,
    /// Artifact-cache gate: consulted with each quiescent file *before*
    /// submission. When it returns `true` — a verified analysis product for
    /// this exact file already exists — the file is recorded as handled
    /// (journal included) without submitting a job, so a crash-restart or a
    /// duplicate scan never re-runs work whose output artifact survives.
    pub cache_gate: Option<CacheGate>,
}

/// A cache-consultation callback (`true` = artifact exists and verifies, so
/// skip the submission), wrapped so [`ListenerConfig`] stays `Debug`.
#[derive(Clone)]
pub struct CacheGate(pub Arc<dyn Fn(&Path) -> bool + Send + Sync>);

impl CacheGate {
    /// Wrap a closure.
    pub fn new<F: Fn(&Path) -> bool + Send + Sync + 'static>(f: F) -> CacheGate {
        CacheGate(Arc::new(f))
    }
}

impl std::fmt::Debug for CacheGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CacheGate(..)")
    }
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            poll_interval: Duration::from_millis(20),
            prefix: String::new(),
            suffix: String::new(),
            exclude_suffix: Some(".tmp".to_string()),
            require_quiescence: true,
            retry: BackoffPolicy {
                base_seconds: 0.005,
                factor: 2.0,
                max_delay_seconds: 0.1,
                max_attempts: 5,
            },
            journal: None,
            injector: None,
            stop_grace: Duration::from_secs(2),
            cache_gate: None,
        }
    }
}

impl ListenerConfig {
    /// Decide a fault at `site`: the explicit injector when configured,
    /// otherwise the process-global one.
    fn fault(&self, site: &str) -> Option<FaultKind> {
        match &self.injector {
            Some(inj) => inj.check(site),
            None => faults::poll(site),
        }
    }
}

/// What one listener run did, returned by [`Listener::stop_report`].
#[derive(Debug, Clone, Default)]
pub struct ListenerReport {
    /// Every file submitted by this run, in submission order (excludes files
    /// recovered from the journal, which a previous run submitted).
    pub submitted: Vec<PathBuf>,
    /// The listener died to an injected `Crash` fault before `stop` (no
    /// final sweep ran).
    pub crashed: bool,
    /// Failed submission attempts that were retried.
    pub submit_retries: u64,
    /// Journal appends that exhausted their retries (the file was submitted
    /// but could not be recorded — a restart may resubmit it).
    pub journal_failures: u64,
    /// Files handled without a submission because the
    /// [`ListenerConfig::cache_gate`] found a verified artifact for them, in
    /// handling order.
    pub cache_skipped: Vec<PathBuf>,
}

/// A running listener thread.
pub struct Listener {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<ListenerReport>,
    seen: Arc<Mutex<BTreeSet<PathBuf>>>,
}

fn matching_files(dir: &Path, cfg: &ListenerConfig) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = entries
        .flatten()
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| {
                    n.starts_with(&cfg.prefix)
                        && n.ends_with(&cfg.suffix)
                        && cfg
                            .exclude_suffix
                            .as_deref()
                            .map(|x| !n.ends_with(x))
                            .unwrap_or(true)
                })
                .unwrap_or(false)
        })
        .collect();
    out.sort();
    out
}

impl Listener {
    /// Start watching `dir`; `on_file` runs once per newly appeared matching
    /// file (the "generate batch script and submit" step). Infallible
    /// convenience wrapper over [`Listener::spawn_with`].
    pub fn spawn<F>(dir: PathBuf, cfg: ListenerConfig, mut on_file: F) -> Listener
    where
        F: FnMut(&Path) + Send + 'static,
    {
        Self::spawn_with(dir, cfg, move |p| {
            on_file(p);
            Ok(())
        })
    }

    /// Start watching `dir` with a fallible submitter: an `Err` from
    /// `on_file` is a transient submission failure, retried under
    /// [`ListenerConfig::retry`]; a file whose attempts all fail stays
    /// unhandled and is retried on a later poll.
    pub fn spawn_with<F>(dir: PathBuf, cfg: ListenerConfig, mut on_file: F) -> Listener
    where
        F: FnMut(&Path) -> Result<(), SubmitError> + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let seen: Arc<Mutex<BTreeSet<PathBuf>>> = Arc::new(Mutex::new(BTreeSet::new()));
        // Crash recovery: files a previous listener run already handled are
        // seen from the start and never resubmitted.
        let journal = cfg.journal.clone().map(Journal::new);
        if let Some(j) = &journal {
            let recovered = j.load().expect("listener journal unreadable");
            telemetry::count!("listener", "journal_recovered", recovered.len());
            seen.lock().extend(recovered);
        }
        let stop2 = Arc::clone(&stop);
        let seen2 = Arc::clone(&seen);
        let handle = std::thread::spawn(move || {
            let mut report = ListenerReport::default();
            // Size at the previous poll for files still being written.
            let mut pending: HashMap<PathBuf, u64> = HashMap::new();
            // One gated sweep over the directory; returns false when an
            // injected crash killed the listener mid-sweep.
            let sweep = |on_file: &mut F,
                         report: &mut ListenerReport,
                         pending: &mut HashMap<PathBuf, u64>|
             -> bool {
                for f in matching_files(&dir, &cfg) {
                    if seen2.lock().contains(&f) {
                        continue;
                    }
                    if cfg.require_quiescence {
                        let Ok(meta) = std::fs::metadata(&f) else {
                            continue; // raced with a writer's rename/delete
                        };
                        let size = meta.len();
                        if pending.get(&f) != Some(&size) {
                            // First sighting, or still growing: wait for a
                            // poll where the size holds steady.
                            pending.insert(f.clone(), size);
                            continue;
                        }
                    }
                    // Cache gate: a verified artifact for this exact file
                    // means the submission would recompute something that
                    // already exists. Record the file as handled — journal
                    // included, so a restart doesn't resubmit it either —
                    // without running a job. Checked only after quiescence:
                    // a half-written file's digest matches nothing anyway,
                    // but there is no point hashing a moving target.
                    if let Some(gate) = &cfg.cache_gate {
                        if (gate.0)(&f) {
                            telemetry::count!("listener", "cache_skipped", 1);
                            if let Some(j) = &journal {
                                if !journal_append(&f, &cfg, report, j) {
                                    return false; // crashed mid-append
                                }
                            }
                            report.cache_skipped.push(f.clone());
                            pending.remove(&f);
                            seen2.lock().insert(f.clone());
                            continue;
                        }
                    }
                    if !submit_one(&f, &cfg, on_file, report, journal.as_ref()) {
                        return false; // crashed mid-submit
                    }
                    if report.submitted.last() == Some(&f) {
                        pending.remove(&f);
                        seen2.lock().insert(f.clone());
                    }
                }
                true
            };
            loop {
                if stop2.load(Ordering::Acquire) {
                    // Final sweeps "to catch the last output data" — under
                    // the same quiescence gate as regular polls (a file may
                    // still be mid-write when stop is requested), re-polling
                    // quickly until nothing unhandled remains or the grace
                    // period runs out.
                    let deadline = Instant::now() + cfg.stop_grace;
                    loop {
                        if !sweep(&mut on_file, &mut report, &mut pending) {
                            report.crashed = true;
                            return report;
                        }
                        let all_handled = {
                            let seen = seen2.lock();
                            matching_files(&dir, &cfg).iter().all(|f| seen.contains(f))
                        };
                        if all_handled || Instant::now() >= deadline {
                            break;
                        }
                        // Re-poll quickly, but not so quickly that a slow
                        // writer's size appears unchanged between passes.
                        std::thread::sleep(cfg.poll_interval.min(Duration::from_millis(25)));
                    }
                    break;
                }
                telemetry::count!("listener", "scans", 1);
                match cfg.fault("listener.scan") {
                    Some(FaultKind::Crash) => {
                        // The listener process dies: no final sweep, no
                        // journal flush beyond what already committed.
                        telemetry::instant!("faults", "listener.scan", 1);
                        report.crashed = true;
                        return report;
                    }
                    Some(FaultKind::Stall(d)) => {
                        telemetry::instant!("faults", "listener.scan", 2);
                        std::thread::sleep(d);
                    }
                    Some(FaultKind::Transient) => {
                        // Directory scan failed (filesystem hiccup); the
                        // next poll is the retry.
                        telemetry::instant!("faults", "listener.scan", 0);
                    }
                    None => {
                        if !sweep(&mut on_file, &mut report, &mut pending) {
                            report.crashed = true;
                            return report;
                        }
                    }
                }
                // Interruptible sleep: check the stop flag every few ms so
                // stop() never blocks for a whole poll interval.
                let mut remaining = cfg.poll_interval;
                let slice = Duration::from_millis(5);
                while remaining > Duration::ZERO && !stop2.load(Ordering::Acquire) {
                    let nap = remaining.min(slice);
                    std::thread::sleep(nap);
                    remaining = remaining.saturating_sub(nap);
                }
            }
            report
        });
        Listener { stop, handle, seen }
    }

    /// Number of files handled so far (journal-recovered files included).
    pub fn handled(&self) -> usize {
        self.seen.lock().len()
    }

    /// Signal the end of the main application and wait for the final sweep;
    /// returns every file submitted, in submission order.
    pub fn stop(self) -> Vec<PathBuf> {
        self.stop_report().submitted
    }

    /// Like [`Listener::stop`], but returns the full [`ListenerReport`]
    /// (crash flag, retry counts) for the chaos harness.
    pub fn stop_report(self) -> ListenerReport {
        self.stop.store(true, Ordering::Release);
        self.handle.join().expect("listener thread panicked")
    }
}

/// Submit one quiescent file with retry-with-backoff on transient failures.
///
/// Returns `false` only when an injected `Crash` fault killed the listener.
/// Success is visible to the caller as `report.submitted.last() == Some(f)`;
/// a file whose attempts are exhausted is simply not appended (a later poll
/// retries it from scratch).
fn submit_one<F>(
    f: &Path,
    cfg: &ListenerConfig,
    on_file: &mut F,
    report: &mut ListenerReport,
    journal: Option<&Journal>,
) -> bool
where
    F: FnMut(&Path) -> Result<(), SubmitError>,
{
    let _span = telemetry::span!("listener", "submit");
    for attempt in 0..cfg.retry.max_attempts {
        if attempt > 0 {
            std::thread::sleep(cfg.retry.delay(attempt - 1));
        }
        let outcome = match cfg.fault("listener.submit") {
            Some(FaultKind::Crash) => {
                telemetry::instant!("faults", "listener.submit", 1);
                return false;
            }
            Some(FaultKind::Transient) => {
                telemetry::instant!("faults", "listener.submit", 0);
                Err(SubmitError("injected transient fault".into()))
            }
            Some(FaultKind::Stall(d)) => {
                telemetry::instant!("faults", "listener.submit", 2);
                std::thread::sleep(d);
                on_file(f)
            }
            None => on_file(f),
        };
        match outcome {
            Ok(()) => {
                if let Some(j) = journal {
                    if !journal_append(f, cfg, report, j) {
                        return false; // crashed mid-append
                    }
                }
                telemetry::count!("listener", "submitted", 1);
                report.submitted.push(f.to_path_buf());
                return true;
            }
            Err(_) => report.submit_retries += 1,
        }
    }
    true // attempts exhausted; the file stays unhandled for a later poll
}

/// Append a handled file to the journal, retrying transient failures.
/// Returns `false` when an injected `Crash` fault fired.
fn journal_append(
    f: &Path,
    cfg: &ListenerConfig,
    report: &mut ListenerReport,
    j: &Journal,
) -> bool {
    for attempt in 0..cfg.retry.max_attempts {
        if attempt > 0 {
            std::thread::sleep(cfg.retry.delay(attempt - 1));
        }
        match cfg.fault("listener.journal") {
            Some(FaultKind::Crash) => {
                telemetry::instant!("faults", "listener.journal", 1);
                return false;
            }
            Some(FaultKind::Transient) => {
                telemetry::instant!("faults", "listener.journal", 0);
                continue;
            }
            Some(FaultKind::Stall(d)) => {
                telemetry::instant!("faults", "listener.journal", 2);
                std::thread::sleep(d);
            }
            None => {}
        }
        if j.append(f).is_ok() {
            return true;
        }
    }
    // The submission happened but could not be recorded; a restarted
    // listener may resubmit this file.
    report.journal_failures += 1;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("listener_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn submits_one_job_per_file() {
        let dir = tmpdir("basic");
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                prefix: "l2_".into(),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        for i in 0..3 {
            std::fs::write(dir.join(format!("l2_step{i}.hcio")), b"data").unwrap();
            std::thread::sleep(Duration::from_millis(50));
        }
        // Non-matching files are ignored.
        std::fs::write(dir.join("checkpoint.bin"), b"x").unwrap();
        std::fs::write(dir.join("l2_partial.tmp"), b"x").unwrap();
        let files = listener.stop();
        assert_eq!(files.len(), 3);
        assert_eq!(count.load(Ordering::SeqCst), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn final_sweep_catches_late_files() {
        let dir = tmpdir("late");
        // Very slow polling: the only chance to see the file is the final sweep.
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_secs(3600),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            |_| {},
        );
        std::thread::sleep(Duration::from_millis(30));
        std::fs::write(dir.join("last_step.hcio"), b"data").unwrap();
        let files = listener.stop();
        assert_eq!(files.len(), 1, "final sweep must catch the last output");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn files_are_submitted_exactly_once() {
        let dir = tmpdir("once");
        std::fs::write(dir.join("a.hcio"), b"1").unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        // Let it poll the same file many times.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(listener.handled(), 1);
        let files = listener.stop();
        assert_eq!(files.len(), 1);
        assert_eq!(count.load(Ordering::SeqCst), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partially_written_file_submits_once_after_quiescence() {
        let dir = tmpdir("quiesce");
        let path = dir.join("big.hcio");
        // Record the file size observed at submission time.
        let sizes: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&sizes);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(60),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            move |p| {
                s2.lock().push(std::fs::metadata(p).unwrap().len());
            },
        );
        // Simulate a slow writer: the file grows in small appends spanning
        // several poll intervals, so no two consecutive polls during the
        // write ever observe an unchanged size.
        use std::io::Write;
        let mut fh = std::fs::File::create(&path).unwrap();
        for _ in 0..40 {
            fh.write_all(&[0u8; 64]).unwrap();
            fh.flush().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(fh);
        let total = 40 * 64;
        assert_eq!(
            listener.handled(),
            0,
            "a still-growing file must not be submitted"
        );
        // Writer done: two quiet polls later the job fires, exactly once.
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(listener.handled(), 1, "quiescent file must be submitted");
        let files = listener.stop();
        assert_eq!(files.len(), 1, "exactly one (late) submission");
        assert_eq!(
            sizes.lock().as_slice(),
            &[total],
            "submission must see the complete file"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn excluded_temporaries_are_never_submitted() {
        let dir = tmpdir("tmpskip");
        std::fs::write(dir.join("a.out"), b"done").unwrap();
        std::fs::write(dir.join("b.tmp"), b"in progress").unwrap();
        let listener = Listener::spawn(
            dir.clone(),
            // Default config: match everything, exclude `.tmp`.
            ListenerConfig::default(),
            |_| {},
        );
        std::thread::sleep(Duration::from_millis(100));
        // Even the final sweep must not pick up the temporary.
        let files = listener.stop();
        assert_eq!(files.len(), 1);
        assert!(files[0].ends_with("a.out"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renamed_temporary_is_submitted_under_its_final_name() {
        let dir = tmpdir("rename");
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(10),
                suffix: ".hcio".into(),
                ..Default::default()
            },
            |_| {},
        );
        std::fs::write(dir.join("out.hcio.tmp"), b"staged").unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(listener.handled(), 0);
        std::fs::rename(dir.join("out.hcio.tmp"), dir.join("out.hcio")).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(listener.handled(), 1);
        let files = listener.stop();
        assert_eq!(files.len(), 1);
        assert!(files[0].ends_with("out.hcio"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_tolerated() {
        let dir = std::env::temp_dir().join("listener_test_never_exists_xyz");
        let listener = Listener::spawn(dir, ListenerConfig::default(), |_| {});
        std::thread::sleep(Duration::from_millis(30));
        assert!(listener.stop().is_empty());
    }

    #[test]
    fn stop_waits_for_in_flight_writer_to_quiesce() {
        // Satellite fix: the final sweep must honor the quiescence gate. A
        // file still being written when stop() is called used to be submitted
        // truncated; now stop re-polls until the size holds steady.
        let dir = tmpdir("stopgate");
        let path = dir.join("tail.hcio");
        let sizes: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&sizes);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_secs(3600), // only the final sweep sees it
                suffix: ".hcio".into(),
                stop_grace: Duration::from_secs(5),
                ..Default::default()
            },
            move |p| {
                s2.lock().push(std::fs::metadata(p).unwrap().len());
            },
        );
        std::thread::sleep(Duration::from_millis(30));
        // Writer starts just before stop and keeps appending across the
        // final-sweep passes.
        use std::io::Write;
        let writer = std::thread::spawn(move || {
            let mut fh = std::fs::File::create(&path).unwrap();
            for _ in 0..20 {
                fh.write_all(&[7u8; 32]).unwrap();
                fh.flush().unwrap();
                std::thread::sleep(Duration::from_millis(8));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let files = listener.stop();
        writer.join().unwrap();
        assert_eq!(files.len(), 1, "the late file must still be caught");
        assert_eq!(
            sizes.lock().as_slice(),
            &[20 * 32],
            "final sweep must submit the complete file, not a truncation"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stop_gives_up_on_perpetually_growing_file_after_grace() {
        let dir = tmpdir("stopgrace");
        let path = dir.join("grow.hcio");
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_secs(3600),
                suffix: ".hcio".into(),
                stop_grace: Duration::from_millis(100),
                ..Default::default()
            },
            |_| {},
        );
        std::thread::sleep(Duration::from_millis(20));
        let stop_flag = Arc::new(AtomicBool::new(false));
        let sf = Arc::clone(&stop_flag);
        let writer = std::thread::spawn(move || {
            use std::io::Write;
            let mut fh = std::fs::File::create(&path).unwrap();
            while !sf.load(Ordering::Acquire) {
                fh.write_all(&[1u8; 16]).unwrap();
                fh.flush().unwrap();
                std::thread::sleep(Duration::from_millis(3));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        let files = listener.stop();
        let took = t0.elapsed();
        stop_flag.store(true, Ordering::Release);
        writer.join().unwrap();
        assert!(
            files.is_empty(),
            "a never-quiescent file must not be submitted"
        );
        assert!(
            took < Duration::from_secs(3),
            "stop must give up after grace"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_submit_faults_are_retried_exactly_once_semantics() {
        let dir = tmpdir("faultretry");
        std::fs::write(dir.join("a.hcio"), b"x").unwrap();
        let plan = faults::FaultPlan::new(42)
            .with_site(faults::SiteSpec::transient("listener.submit", 1.0).with_max_faults(2))
            .build();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                injector: Some(Arc::clone(&plan)),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        std::thread::sleep(Duration::from_millis(150));
        let report = listener.stop_report();
        assert_eq!(report.submitted.len(), 1);
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "exactly-once despite retries"
        );
        assert_eq!(report.submit_retries, 2, "both injected faults retried");
        assert!(!report.crashed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashed_listener_restarts_from_journal_without_double_submit() {
        let dir = tmpdir("crashjournal");
        let journal_path = dir.join("listener.journal");
        std::fs::write(dir.join("a.hcio"), b"1").unwrap();
        std::fs::write(dir.join("b.hcio"), b"2").unwrap();
        let submissions: Arc<Mutex<Vec<PathBuf>>> = Arc::new(Mutex::new(Vec::new()));

        // Run 1: crash on the third scan — after a/b have been handled.
        let plan = faults::FaultPlan::new(7)
            .with_site(faults::SiteSpec::crash_at("listener.scan", 4))
            .build();
        let s2 = Arc::clone(&submissions);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path.clone()),
                injector: Some(plan),
                ..Default::default()
            },
            move |p| {
                s2.lock().push(p.to_path_buf());
            },
        );
        // Wait for the crash to land.
        std::thread::sleep(Duration::from_millis(150));
        let report1 = listener.stop_report();
        assert!(report1.crashed, "the injected crash must kill the listener");
        assert_eq!(report1.submitted.len(), 2);

        // A new output appears while the listener is down.
        std::fs::write(dir.join("c.hcio"), b"3").unwrap();

        // Run 2: restart with the same journal, no faults.
        let s3 = Arc::clone(&submissions);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path.clone()),
                ..Default::default()
            },
            move |p| {
                s3.lock().push(p.to_path_buf());
            },
        );
        std::thread::sleep(Duration::from_millis(100));
        let report2 = listener.stop_report();
        assert!(!report2.crashed);
        assert_eq!(report2.submitted.len(), 1, "only the new file is submitted");
        assert!(report2.submitted[0].ends_with("c.hcio"));
        // Across both runs every file was submitted exactly once.
        let subs = submissions.lock();
        assert_eq!(subs.len(), 3);
        let names: BTreeSet<_> = subs.iter().map(|p| p.file_name().unwrap()).collect();
        assert_eq!(names.len(), 3, "no double submissions across restart");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_gate_skips_submission_and_journals_the_skip() {
        let dir = tmpdir("cachegate");
        let journal_path = dir.join("listener.journal");
        std::fs::write(dir.join("hit.hcio"), b"already analyzed").unwrap();
        std::fs::write(dir.join("miss.hcio"), b"new data").unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path.clone()),
                cache_gate: Some(CacheGate::new(|p: &Path| {
                    p.file_name().unwrap().to_str().unwrap().starts_with("hit")
                })),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(listener.handled(), 2, "both files are handled");
        let report = listener.stop_report();
        assert_eq!(report.submitted.len(), 1);
        assert!(report.submitted[0].ends_with("miss.hcio"));
        assert_eq!(report.cache_skipped.len(), 1);
        assert!(report.cache_skipped[0].ends_with("hit.hcio"));
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "no job for the cached file"
        );

        // The skip was journaled: a restarted listener *without* the gate
        // still does not resubmit the cached file.
        let c3 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path),
                ..Default::default()
            },
            move |_| {
                c3.fetch_add(1, Ordering::SeqCst);
            },
        );
        std::thread::sleep(Duration::from_millis(80));
        let report2 = listener.stop_report();
        assert!(report2.submitted.is_empty(), "nothing left to submit");
        assert_eq!(count.load(Ordering::SeqCst), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_recovery_counts_as_handled() {
        let dir = tmpdir("recoverhandled");
        let journal_path = dir.join("listener.journal");
        let handled = dir.join("old.hcio");
        std::fs::write(&handled, b"old").unwrap();
        Journal::new(journal_path.clone()).append(&handled).unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let listener = Listener::spawn(
            dir.clone(),
            ListenerConfig {
                poll_interval: Duration::from_millis(5),
                suffix: ".hcio".into(),
                journal: Some(journal_path),
                ..Default::default()
            },
            move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            },
        );
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(listener.handled(), 1, "recovered file counts as handled");
        let report = listener.stop_report();
        assert!(
            report.submitted.is_empty(),
            "recovered file is not resubmitted"
        );
        assert_eq!(count.load(Ordering::SeqCst), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
