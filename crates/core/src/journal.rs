//! Crash-recovery journal for the co-scheduling listener.
//!
//! The listener's exactly-once guarantee has to survive the listener process
//! dying between polls: on a real facility the login-node script gets killed
//! and restarted, and a restarted listener must not resubmit analysis jobs
//! for files it already handled. The journal is the persisted handled-file
//! set: one header line, then one absolute path per line, appended after
//! each successful submission.
//!
//! Torn writes are tolerated by construction: an entry is a single
//! `write` of `path + "\n"`, and [`Journal::load`] drops a trailing chunk
//! with no newline terminator. A torn entry therefore reverts to
//! "unhandled" — the restarted listener submits that file again, which is
//! the safe direction only when the fault model's crash points sit *between*
//! per-file handling units (see DESIGN.md "Fault model"); within this repo's
//! injected crashes the submit+append pair is never split, so replay yields
//! the same handled-file set with no duplicates.

use std::collections::BTreeSet;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// First line of every journal file; guards against feeding the listener an
/// unrelated file.
pub const JOURNAL_HEADER: &str = "hacc-listener-journal v1";

/// Append-only handled-file journal at a fixed path.
#[derive(Debug, Clone)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// A journal stored at `path` (created on first append).
    pub fn new(path: PathBuf) -> Self {
        Journal { path }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read the handled-file set back. A missing file is an empty set; a
    /// file with the wrong header is an error; an incomplete (torn) final
    /// line is dropped.
    pub fn load(&self) -> io::Result<BTreeSet<PathBuf>> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeSet::new()),
            Err(e) => return Err(e),
        };
        let text = String::from_utf8_lossy(&bytes);
        let mut lines = text.split_inclusive('\n');
        match lines.next() {
            None => return Ok(BTreeSet::new()),
            Some(header) if header.trim_end_matches('\n') == JOURNAL_HEADER => {}
            Some(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("not a listener journal (header {:?})", other.trim_end()),
                ));
            }
        }
        Ok(lines
            // A chunk without its trailing newline is a torn append: the
            // entry never committed.
            .filter(|l| l.ends_with('\n'))
            .map(|l| PathBuf::from(l.trim_end_matches('\n')))
            .filter(|p| !p.as_os_str().is_empty())
            .collect())
    }

    /// Record `entry` as handled. Creates the file (with header) on first
    /// use. The entry must not contain a newline — the journal is
    /// line-oriented.
    pub fn append(&self, entry: &Path) -> io::Result<()> {
        let line = entry.to_string_lossy();
        if line.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal entries must not contain newlines",
            ));
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&self.path)?;
        if f.metadata()?.len() == 0 {
            f.write_all(format!("{JOURNAL_HEADER}\n").as_bytes())?;
        } else {
            // A torn append from a previous crash left bytes with no
            // newline; terminate them so the fragment cannot corrupt this
            // (good) entry by concatenation. The fragment then reads back as
            // a bogus path no output file matches.
            use std::io::{Read, Seek, SeekFrom};
            f.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            f.read_exact(&mut last)?;
            if last[0] != b'\n' {
                f.write_all(b"\n")?;
            }
        }
        // One write call per entry keeps a torn append detectable as a
        // missing trailing newline.
        f.write_all(format!("{line}\n").as_bytes())?;
        f.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("journal_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn missing_journal_is_an_empty_set() {
        let j = Journal::new(tmpfile("never_written.journal"));
        assert!(j.load().unwrap().is_empty());
    }

    #[test]
    fn append_then_load_roundtrips() {
        let j = Journal::new(tmpfile("roundtrip.journal"));
        let _ = std::fs::remove_file(j.path());
        j.append(Path::new("/out/l2_step0001.hcio")).unwrap();
        j.append(Path::new("/out/l2_step0002.hcio")).unwrap();
        let set = j.load().unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.contains(Path::new("/out/l2_step0001.hcio")));
    }

    #[test]
    fn torn_final_entry_is_dropped() {
        let j = Journal::new(tmpfile("torn.journal"));
        let _ = std::fs::remove_file(j.path());
        j.append(Path::new("/out/a.hcio")).unwrap();
        // Simulate a crash mid-append: bytes with no trailing newline.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(j.path())
            .unwrap();
        f.write_all(b"/out/b.hc").unwrap();
        drop(f);
        let set = j.load().unwrap();
        assert_eq!(set.len(), 1, "torn entry must not count as handled");
        assert!(set.contains(Path::new("/out/a.hcio")));
        // The next append terminates the torn fragment before committing its
        // own line, so the new entry is never corrupted by concatenation.
        j.append(Path::new("/out/c.hcio")).unwrap();
        let set = j.load().unwrap();
        assert!(set.contains(Path::new("/out/c.hcio")));
        assert!(
            set.contains(Path::new("/out/b.hc")),
            "fragment sealed as-is"
        );
    }

    #[test]
    fn wrong_header_is_rejected() {
        let p = tmpfile("wrong_header.journal");
        std::fs::write(&p, "something else\n/out/a.hcio\n").unwrap();
        let err = Journal::new(p).load().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn newline_in_entry_is_rejected() {
        let j = Journal::new(tmpfile("newline.journal"));
        assert!(j.append(Path::new("a\nb")).is_err());
    }
}
