//! Crash-recovery journal for the co-scheduling listener.
//!
//! The listener's exactly-once guarantee has to survive the listener process
//! dying between polls: on a real facility the login-node script gets killed
//! and restarted, and a restarted listener must not resubmit analysis jobs
//! for files it already handled. The journal is the persisted handled-file
//! set: one header line, then one absolute path per line, appended after
//! each successful submission.
//!
//! Torn writes are tolerated by construction: an entry is a single
//! `write` of `path + "\n"`, and [`Journal::load`] drops a trailing chunk
//! with no newline terminator. A torn entry therefore reverts to
//! "unhandled" — the restarted listener submits that file again, which is
//! the safe direction only when the fault model's crash points sit *between*
//! per-file handling units (see DESIGN.md "Fault model"); within this repo's
//! injected crashes the submit+append pair is never split, so replay yields
//! the same handled-file set with no duplicates.

use std::collections::BTreeSet;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// First line of every journal file; guards against feeding the listener an
/// unrelated file.
pub const JOURNAL_HEADER: &str = "hacc-listener-journal v1";

/// Append-only handled-file journal at a fixed path.
#[derive(Debug, Clone)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// A journal stored at `path` (created on first append).
    pub fn new(path: PathBuf) -> Self {
        Journal { path }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read the handled-file set back. A missing file is an empty set; a
    /// file with the wrong header is an error; an incomplete (torn) final
    /// line is dropped.
    pub fn load(&self) -> io::Result<BTreeSet<PathBuf>> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeSet::new()),
            Err(e) => return Err(e),
        };
        let text = String::from_utf8_lossy(&bytes);
        let mut lines = text.split_inclusive('\n');
        match lines.next() {
            None => return Ok(BTreeSet::new()),
            Some(header) if header.trim_end_matches('\n') == JOURNAL_HEADER => {}
            Some(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("not a listener journal (header {:?})", other.trim_end()),
                ));
            }
        }
        Ok(lines
            // A chunk without its trailing newline is a torn append: the
            // entry never committed.
            .filter(|l| l.ends_with('\n'))
            .map(|l| PathBuf::from(l.trim_end_matches('\n')))
            .filter(|p| !p.as_os_str().is_empty())
            .collect())
    }

    /// Record `entry` as handled. Creates the file (with header) on first
    /// use. The entry must not contain a newline — the journal is
    /// line-oriented.
    pub fn append(&self, entry: &Path) -> io::Result<()> {
        let line = entry.to_string_lossy();
        if line.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal entries must not contain newlines",
            ));
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&self.path)?;
        if f.metadata()?.len() == 0 {
            f.write_all(format!("{JOURNAL_HEADER}\n").as_bytes())?;
        } else {
            // A torn append from a previous crash left bytes with no
            // newline; terminate them so the fragment cannot corrupt this
            // (good) entry by concatenation. The fragment then reads back as
            // a bogus path no output file matches.
            use std::io::{Read, Seek, SeekFrom};
            f.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            f.read_exact(&mut last)?;
            if last[0] != b'\n' {
                f.write_all(b"\n")?;
            }
        }
        // One write call per entry keeps a torn append detectable as a
        // missing trailing newline.
        f.write_all(format!("{line}\n").as_bytes())?;
        f.sync_data()
    }

    /// Current size of the backing file in bytes (0 when it does not exist).
    /// Compaction triggers compare against this.
    pub fn size_bytes(&self) -> io::Result<u64> {
        match std::fs::metadata(&self.path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// The staging path used by [`Journal::rewrite`]: `<path>.tmp`.
    pub fn staging_path(&self) -> PathBuf {
        let mut os = self.path.clone().into_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    }

    /// Stage a full journal (header + `entries`) into [`staging_path`]
    /// without committing it. Exposed separately from [`Journal::rewrite`]
    /// so crash-schedule tests can die in the window between staging and
    /// publish; production callers use `rewrite`.
    ///
    /// [`staging_path`]: Journal::staging_path
    pub fn stage(&self, entries: &BTreeSet<PathBuf>) -> io::Result<()> {
        let mut buf = String::with_capacity(64 * (entries.len() + 1));
        buf.push_str(JOURNAL_HEADER);
        buf.push('\n');
        for entry in entries {
            let line = entry.to_string_lossy();
            if line.contains('\n') {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "journal entries must not contain newlines",
                ));
            }
            buf.push_str(&line);
            buf.push('\n');
        }
        let staging = self.staging_path();
        let mut f = std::fs::File::create(&staging)?;
        f.write_all(buf.as_bytes())?;
        f.sync_data()
    }

    /// Publish a previously [`stage`]d journal over the live file via an
    /// atomic rename.
    ///
    /// [`stage`]: Journal::stage
    pub fn commit_staged(&self) -> io::Result<()> {
        std::fs::rename(self.staging_path(), &self.path)
    }

    /// Atomically replace the journal with exactly `entries` (plus the
    /// header), using the same tmp+rename discipline the emitters use for
    /// drops: the new contents are staged at [`Journal::staging_path`] and
    /// renamed over the live file only once fully written and synced.
    ///
    /// Crash safety: a crash before the rename leaves the original journal
    /// untouched (the stale `.tmp` is simply overwritten by the next
    /// rewrite); a crash after the rename leaves the complete new journal.
    /// There is no intermediate state, so recovery never sees a torn
    /// compaction. A rewrite also heals any torn trailing fragment as a side
    /// effect, because only fully committed entries are written back.
    pub fn rewrite(&self, entries: &BTreeSet<PathBuf>) -> io::Result<()> {
        self.stage(entries)?;
        self.commit_staged()
    }

    /// Size-triggered compaction: when the journal has grown past
    /// `threshold_bytes`, rewrite it keeping only the entries `retain`
    /// accepts. Long-lived services call this each sweep with a predicate
    /// like "the output file still exists" — handled files that have been
    /// swept away (or belong to a detached campaign) are dead weight a
    /// resident process would otherwise accumulate forever.
    ///
    /// Returns `Some(dropped_entry_count)` when a compaction ran, `None`
    /// when the journal was below the threshold.
    pub fn compact_if_larger(
        &self,
        threshold_bytes: u64,
        retain: impl Fn(&Path) -> bool,
    ) -> io::Result<Option<usize>> {
        if self.size_bytes()? <= threshold_bytes {
            return Ok(None);
        }
        let before = self.load()?;
        let kept: BTreeSet<PathBuf> = before.iter().filter(|p| retain(p)).cloned().collect();
        let dropped = before.len() - kept.len();
        self.rewrite(&kept)?;
        Ok(Some(dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("journal_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn missing_journal_is_an_empty_set() {
        let j = Journal::new(tmpfile("never_written.journal"));
        assert!(j.load().unwrap().is_empty());
    }

    #[test]
    fn append_then_load_roundtrips() {
        let j = Journal::new(tmpfile("roundtrip.journal"));
        let _ = std::fs::remove_file(j.path());
        j.append(Path::new("/out/l2_step0001.hcio")).unwrap();
        j.append(Path::new("/out/l2_step0002.hcio")).unwrap();
        let set = j.load().unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.contains(Path::new("/out/l2_step0001.hcio")));
    }

    #[test]
    fn torn_final_entry_is_dropped() {
        let j = Journal::new(tmpfile("torn.journal"));
        let _ = std::fs::remove_file(j.path());
        j.append(Path::new("/out/a.hcio")).unwrap();
        // Simulate a crash mid-append: bytes with no trailing newline.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(j.path())
            .unwrap();
        f.write_all(b"/out/b.hc").unwrap();
        drop(f);
        let set = j.load().unwrap();
        assert_eq!(set.len(), 1, "torn entry must not count as handled");
        assert!(set.contains(Path::new("/out/a.hcio")));
        // The next append terminates the torn fragment before committing its
        // own line, so the new entry is never corrupted by concatenation.
        j.append(Path::new("/out/c.hcio")).unwrap();
        let set = j.load().unwrap();
        assert!(set.contains(Path::new("/out/c.hcio")));
        assert!(
            set.contains(Path::new("/out/b.hc")),
            "fragment sealed as-is"
        );
    }

    #[test]
    fn wrong_header_is_rejected() {
        let p = tmpfile("wrong_header.journal");
        std::fs::write(&p, "something else\n/out/a.hcio\n").unwrap();
        let err = Journal::new(p).load().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn newline_in_entry_is_rejected() {
        let j = Journal::new(tmpfile("newline.journal"));
        assert!(j.append(Path::new("a\nb")).is_err());
    }

    #[test]
    fn compaction_drops_dead_entries_and_keeps_live_ones() {
        let j = Journal::new(tmpfile("compact.journal"));
        let _ = std::fs::remove_file(j.path());
        for i in 0..50 {
            j.append(Path::new(&format!("/out/l2_{i:04}.hcio")))
                .unwrap();
        }
        let before = j.size_bytes().unwrap();
        // Below the threshold: nothing happens.
        assert_eq!(j.compact_if_larger(before, |_| true).unwrap(), None);
        assert_eq!(j.size_bytes().unwrap(), before);
        // Over the threshold: keep only every 10th entry.
        let dropped = j
            .compact_if_larger(64, |p| {
                p.to_string_lossy().trim_end_matches(".hcio").ends_with('0')
            })
            .unwrap()
            .expect("journal over threshold must compact");
        assert_eq!(dropped, 45);
        assert!(j.size_bytes().unwrap() < before);
        let set = j.load().unwrap();
        assert_eq!(set.len(), 5);
        assert!(set.contains(Path::new("/out/l2_0040.hcio")));
        assert!(!set.contains(Path::new("/out/l2_0041.hcio")));
        // Appends keep working against the compacted file.
        j.append(Path::new("/out/l2_9999.hcio")).unwrap();
        assert_eq!(j.load().unwrap().len(), 6);
    }

    #[test]
    fn compaction_heals_a_torn_tail() {
        let j = Journal::new(tmpfile("compact_torn.journal"));
        let _ = std::fs::remove_file(j.path());
        j.append(Path::new("/out/a.hcio")).unwrap();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(j.path())
            .unwrap();
        f.write_all(b"/out/torn.hc").unwrap();
        drop(f);
        j.compact_if_larger(0, |_| true).unwrap().unwrap();
        let set = j.load().unwrap();
        assert_eq!(set.len(), 1, "torn fragment must not survive a rewrite");
        assert!(set.contains(Path::new("/out/a.hcio")));
    }

    #[test]
    fn crash_during_compaction_leaves_the_journal_intact() {
        let j = Journal::new(tmpfile("compact_crash.journal"));
        let _ = std::fs::remove_file(j.path());
        let _ = std::fs::remove_file(j.staging_path());
        for i in 0..8 {
            j.append(Path::new(&format!("/out/l2_{i}.hcio"))).unwrap();
        }
        let full = j.load().unwrap();

        // Crash window: the compaction staged its survivors but died before
        // the rename. The live journal is byte-untouched, so recovery sees
        // the full pre-compaction handled set — entries are only ever lost
        // *atomically* with the publish.
        let survivors: BTreeSet<PathBuf> = full.iter().take(2).cloned().collect();
        j.stage(&survivors).unwrap();
        assert!(j.staging_path().exists(), "stage must leave a .tmp behind");
        assert_eq!(
            j.load().unwrap(),
            full,
            "a crash before the rename must not lose any handled entry"
        );

        // The restarted process simply compacts again; the stale .tmp is
        // overwritten, never read.
        std::fs::write(j.staging_path(), b"garbage from a dead incarnation").unwrap();
        let dropped = j.compact_if_larger(0, |p| survivors.contains(p)).unwrap();
        assert_eq!(dropped, Some(6));
        assert_eq!(j.load().unwrap(), survivors);
        assert!(
            !j.staging_path().exists(),
            "publish must consume the staging file"
        );
    }

    #[test]
    fn crash_after_publish_yields_the_compacted_set() {
        let j = Journal::new(tmpfile("compact_post.journal"));
        let _ = std::fs::remove_file(j.path());
        for i in 0..4 {
            j.append(Path::new(&format!("/out/l2_{i}.hcio"))).unwrap();
        }
        let keep: BTreeSet<PathBuf> = [PathBuf::from("/out/l2_0.hcio")].into_iter().collect();
        // stage + commit with nothing in between models a crash immediately
        // after the rename: the new journal is already complete.
        j.stage(&keep).unwrap();
        j.commit_staged().unwrap();
        assert_eq!(j.load().unwrap(), keep);
    }
}
