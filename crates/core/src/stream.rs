//! In-transit streaming: the pub/sub edge between a running simulation and
//! the analysis ranks.
//!
//! The whole-file Level-2 path writes `l2_NNNN.hcio` to a shared directory
//! and lets the listener discover it by scanning. The streaming path skips
//! the filesystem hand-off entirely: the emitter chunks each step's halo
//! particle container ([`cosmotools::genio::chunk_container`]), publishes
//! every chunk into the distributed artifact store as it is produced, and
//! announces it on a [`StreamHub`] topic. Analysis ranks drain the topic
//! with a cursor, fetch chunk payloads back out of the store (paying the
//! modeled remote-fetch cost when a chunk's replicas live on another node),
//! and reassemble the exact container bytes — the chunk protocol is
//! byte-lossless, so digests, cache keys, and final catalogs are identical
//! to the whole-file run.
//!
//! The hub itself is deliberately tiny: an in-memory multi-topic bulletin
//! board. Durability lives in the store (chunks are content-addressed
//! artifacts); the hub only carries *announcements*, so a restarted emitter
//! republishing the same [`ChunkRef`]s is harmless — consumers key pending
//! work by `(step, index)` and re-announcement of an already-assembled step
//! is filtered by the listener's handled-set.

use std::collections::BTreeMap;
use std::sync::Mutex;

use cache::CacheKey;

/// An announcement that one chunk of a step's Level-2 container is now
/// available in the artifact store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    /// Simulation step the chunk belongs to.
    pub step: u64,
    /// Chunk index within the step, `0..total`.
    pub index: u32,
    /// Total chunks in the step (`0` for the block-less sentinel chunk).
    pub total: u32,
    /// Store key the chunk payload was inserted under.
    pub key: CacheKey,
    /// Encoded chunk length in bytes (for transfer accounting).
    pub len: u64,
}

/// A multi-topic in-memory pub/sub board. Topics are campaign ids; each
/// topic is an append-only list of [`ChunkRef`]s that consumers drain with
/// an explicit cursor, so many analysis shards can read the same topic
/// without coordination.
#[derive(Debug, Default)]
pub struct StreamHub {
    topics: Mutex<BTreeMap<u64, Vec<ChunkRef>>>,
}

impl StreamHub {
    /// An empty hub.
    pub fn new() -> StreamHub {
        StreamHub::default()
    }

    /// Publish a chunk announcement on `topic`.
    pub fn publish(&self, topic: u64, chunk: ChunkRef) {
        let mut topics = self.topics.lock().expect("hub poisoned");
        topics.entry(topic).or_default().push(chunk);
    }

    /// Everything published on `topic` at or after `cursor`, plus the new
    /// cursor to pass next time. A topic that does not exist yet drains
    /// empty at cursor 0 — publish order and drain order are independent.
    pub fn drain_from(&self, topic: u64, cursor: usize) -> (Vec<ChunkRef>, usize) {
        let topics = self.topics.lock().expect("hub poisoned");
        match topics.get(&topic) {
            Some(log) if cursor < log.len() => (log[cursor..].to_vec(), log.len()),
            Some(log) => (Vec::new(), log.len()),
            None => (Vec::new(), cursor),
        }
    }

    /// Number of announcements ever published on `topic`.
    pub fn published(&self, topic: u64) -> usize {
        let topics = self.topics.lock().expect("hub poisoned");
        topics.get(&topic).map_or(0, Vec::len)
    }

    /// Drop a finished campaign's topic. Late publishes recreate it; late
    /// drains see an empty topic and keep their cursor.
    pub fn drop_topic(&self, topic: u64) {
        let mut topics = self.topics.lock().expect("hub poisoned");
        topics.remove(&topic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache::{digest_bytes, FingerprintBuilder};

    fn chunk(step: u64, index: u32, total: u32) -> ChunkRef {
        let fp = FingerprintBuilder::new().push_u64(step).finish();
        ChunkRef {
            step,
            index,
            total,
            key: CacheKey::compose("l2chunk", digest_bytes(&[index as u8]), fp),
            len: 100,
        }
    }

    #[test]
    fn drain_with_cursor_sees_each_announcement_exactly_once() {
        let hub = StreamHub::new();
        hub.publish(1, chunk(0, 0, 2));
        hub.publish(1, chunk(0, 1, 2));
        let (batch, cur) = hub.drain_from(1, 0);
        assert_eq!(batch.len(), 2);
        assert_eq!(cur, 2);
        let (batch, cur) = hub.drain_from(1, cur);
        assert!(batch.is_empty());
        assert_eq!(cur, 2);
        hub.publish(1, chunk(1, 0, 1));
        let (batch, cur) = hub.drain_from(1, cur);
        assert_eq!(batch, vec![chunk(1, 0, 1)]);
        assert_eq!(cur, 3);
    }

    #[test]
    fn topics_are_independent_and_unknown_topics_drain_empty() {
        let hub = StreamHub::new();
        hub.publish(7, chunk(0, 0, 1));
        let (batch, cur) = hub.drain_from(8, 0);
        assert!(batch.is_empty());
        assert_eq!(cur, 0);
        let (batch, _) = hub.drain_from(7, 0);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn two_consumers_drain_the_same_topic_independently() {
        let hub = StreamHub::new();
        for i in 0..5 {
            hub.publish(3, chunk(i, 0, 1));
        }
        let (a, _) = hub.drain_from(3, 0);
        let (b, _) = hub.drain_from(3, 2);
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 3);
        assert_eq!(&a[2..], &b[..]);
    }

    #[test]
    fn drop_topic_resets_the_log_but_not_foreign_cursors() {
        let hub = StreamHub::new();
        hub.publish(2, chunk(0, 0, 1));
        assert_eq!(hub.published(2), 1);
        hub.drop_topic(2);
        assert_eq!(hub.published(2), 0);
        let (batch, cur) = hub.drain_from(2, 5);
        assert!(batch.is_empty());
        assert_eq!(cur, 5, "a dropped topic leaves a stale cursor alone");
    }
}
