//! The stand-alone CosmoTools driver as an executable (paper §3.1/§3.2):
//! the same binary the listener's generated batch scripts would invoke.
//!
//! ```text
//! hacc-driver sim --deck deck.ini --out /tmp/run           # simulation + in-situ analysis
//! hacc-driver analyze --level1 /tmp/run/level1.hcio        # full off-line analysis
//! hacc-driver centers --level2 /tmp/run/level2.hcio        # off-line center finding
//! hacc-driver listen --dir /tmp/run --max-files 3          # co-scheduling listener
//! hacc-driver experiments [table1|table2|table3|fig3|fig4|qcontinuum|all]
//! hacc-driver sim --deck deck.ini --out /tmp/run --trace t.json  # + Chrome trace export
//! hacc-driver trace-check t.json                           # validate an exported trace
//! ```

use cosmotools::{
    centers_from_level2, Config, HaloFinderTask, InSituAnalysisManager, PowerSpectrumTask, Product,
    SnapshotMeta, SoMassTask, SubsampleTask,
};
use dpp::Threaded;
use hacc_core::experiments as exp;
use hacc_core::{Listener, ListenerConfig, TitanFrame};
use nbody::{Cosmology, SimConfig, Simulation};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    // `--trace <file>` on any command: record the run and export a Chrome
    // trace-event JSON (load in Perfetto / chrome://tracing) plus a summary
    // table on stdout.
    let trace_out = opt(rest, "--trace");
    let guard = trace_out.as_ref().map(|_| {
        if !telemetry::COMPILED_WITH_RECORDING {
            eprintln!(
                "warning: built without the `recording` feature; \
                 the trace will be empty (rebuild with `--features recording`)"
            );
        }
        telemetry::install(std::sync::Arc::new(telemetry::Recorder::new(
            telemetry::Clock::Wall,
        )))
    });
    let result = match cmd.as_str() {
        "sim" => cmd_sim(rest),
        "analyze" => cmd_analyze(rest),
        "centers" => cmd_centers(rest),
        "listen" => cmd_listen(rest),
        "experiments" => cmd_experiments(rest),
        "trace-check" => cmd_trace_check(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    let result = result.and_then(|()| {
        if let (Some(g), Some(path)) = (guard, trace_out) {
            let trace = g.finish();
            print!("{}", trace.summary_table());
            std::fs::write(&path, trace.chrome_json()).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote trace {path}");
        }
        Ok(())
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hacc-driver sim --deck <file> --out <dir>
  hacc-driver analyze --level1 <file> [--link <frac>] [--min-size <n>]
  hacc-driver centers --level2 <file>
  hacc-driver listen --dir <dir> [--suffix <s>] [--max-files <n>] [--timeout-ms <t>]
  hacc-driver experiments [table1|table2|table3|fig3|fig4|qcontinuum|all]
  hacc-driver trace-check <trace.json>
options (any command):
  --trace <file>   export a Chrome trace-event JSON of the run
                   (build with `--features recording` to capture events)";

/// Pull `--key value` from an argument list.
fn opt(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn req(args: &[String], key: &str) -> Result<String, String> {
    opt(args, key).ok_or_else(|| format!("missing required option {key}"))
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let deck_path = req(args, "--deck")?;
    let out_dir = PathBuf::from(req(args, "--out")?);
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(&deck_path).map_err(|e| format!("{deck_path}: {e}"))?;
    let deck = Config::parse(&text).map_err(|e| e.to_string())?;

    // Simulation parameters come from the deck's [simulation] section.
    let cfg = SimConfig {
        np: deck.get_usize("simulation", "np").unwrap_or(32),
        ng: deck.get_usize("simulation", "ng").unwrap_or(32),
        nsteps: deck.get_usize("simulation", "nsteps").unwrap_or(30),
        seed: deck
            .get_usize("simulation", "seed")
            .map(|s| s as u64)
            .unwrap_or(20150715),
        z_init: deck.get_f64("simulation", "z_init").unwrap_or(30.0),
        z_final: deck.get_f64("simulation", "z_final").unwrap_or(0.0),
        cosmology: Cosmology {
            box_size: deck.get_f64("simulation", "box_size").unwrap_or(162.5),
            ..Cosmology::default()
        },
    };
    let box_size = cfg.cosmology.box_size;
    let backend = Threaded::with_available_parallelism();

    let mut manager = InSituAnalysisManager::new();
    manager.register(Box::new(PowerSpectrumTask::new()));
    manager.register(Box::new(HaloFinderTask::new()));
    manager.register(Box::new(SoMassTask::new()));
    manager.register(Box::new(SubsampleTask::new()));
    manager.configure(&deck).map_err(|e| e.to_string())?;

    println!(
        "sim: {}^3 particles, {} steps, box {} Mpc/h -> {}",
        cfg.np,
        cfg.nsteps,
        box_size,
        out_dir.display()
    );
    let mut sim = Simulation::new(&backend, cfg);
    sim.run_with_hook(&backend, |step, sim| {
        let ran = manager.execute_at(
            step,
            sim.total_steps(),
            sim.redshift(),
            sim.particles(),
            box_size,
            &backend,
        );
        if ran > 0 {
            println!("  step {step:>4}: z = {:.3}, {ran} task(s)", sim.redshift());
        }
    });

    // Write products: Level 1 (if asked), Level 2 + center records.
    if deck.get_bool("simulation", "write_level1").unwrap_or(false) {
        let container = cosmotools::Container {
            meta: SnapshotMeta {
                step: sim.step_index() as u64,
                redshift: sim.redshift(),
                box_size,
            },
            blocks: vec![sim.particles().to_vec()],
        };
        let p = out_dir.join("level1.hcio");
        cosmotools::write_file(&p, &container).map_err(|e| e.to_string())?;
        println!("wrote {}", p.display());
    }
    for prod in manager.take_products() {
        match prod {
            Product::Halos { step, catalog } => {
                let threshold = deck
                    .get_usize("halofinder", "center_threshold")
                    .unwrap_or(300_000);
                let (small, large) = catalog.split_by_size(threshold);
                let centers = cosmotools::centers_from_catalog(&small);
                let txt: String = centers
                    .iter()
                    .map(|c| {
                        format!(
                            "{} {} {:.6} {:.6} {:.6}\n",
                            c.halo_id, c.count, c.center[0], c.center[1], c.center[2]
                        )
                    })
                    .collect();
                let p = out_dir.join(format!("centers_step{step:04}.txt"));
                std::fs::write(&p, txt).map_err(|e| e.to_string())?;
                println!("wrote {} ({} centers)", p.display(), centers.len());
                if !large.is_empty() {
                    let l2 = cosmotools::write_level2_container(
                        &large,
                        SnapshotMeta {
                            step: step as u64,
                            redshift: sim.redshift(),
                            box_size,
                        },
                    );
                    let p = out_dir.join(format!("l2_step{step:04}.hcio"));
                    cosmotools::write_file(&p, &l2).map_err(|e| e.to_string())?;
                    println!(
                        "wrote {} ({} large halos for off-line centering)",
                        p.display(),
                        large.len()
                    );
                }
            }
            Product::PowerSpectrum { step, bins } => {
                let txt: String = bins
                    .iter()
                    .map(|(k, p)| format!("{k:.6e} {p:.6e}\n"))
                    .collect();
                let p = out_dir.join(format!("pk_step{step:04}.txt"));
                std::fs::write(&p, txt).map_err(|e| e.to_string())?;
                println!("wrote {}", p.display());
            }
            other => println!("product `{}` @ step {}", other.name(), other.step()),
        }
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let path = PathBuf::from(req(args, "--level1")?);
    let link: f64 = opt(args, "--link")
        .map(|s| s.parse().unwrap_or(0.2))
        .unwrap_or(0.2);
    let min_size: usize = opt(args, "--min-size")
        .map(|s| s.parse().unwrap_or(40))
        .unwrap_or(40);
    let container = cosmotools::read_file(&path)
        .map_err(|e| e.to_string())?
        .map_err(|e| e.to_string())?;
    println!(
        "level 1: step {}, z = {:.3}, {} particles in {} block(s)",
        container.meta.step,
        container.meta.redshift,
        container.total_particles(),
        container.blocks.len()
    );
    let backend = Threaded::with_available_parallelism();
    let catalog = cosmotools::analyze_level1(&backend, &container, link, min_size, 1e-3);
    println!(
        "found {} halos (min size {min_size}, b = {link})",
        catalog.len()
    );
    for h in catalog.halos.iter().take(10) {
        println!(
            "  halo {:>8}: {:>8} particles, center {:?}",
            h.id,
            h.count(),
            h.mbp_center
                .map(|c| [c[0] as f32, c[1] as f32, c[2] as f32])
        );
    }
    if catalog.len() > 10 {
        println!("  ... and {} more", catalog.len() - 10);
    }
    Ok(())
}

fn cmd_centers(args: &[String]) -> Result<(), String> {
    let path = PathBuf::from(req(args, "--level2")?);
    let container = cosmotools::read_file(&path)
        .map_err(|e| e.to_string())?
        .map_err(|e| e.to_string())?;
    let backend = Threaded::with_available_parallelism();
    let centers = centers_from_level2(&backend, &container, 1e-3);
    println!("{} halos centered:", centers.len());
    for c in &centers {
        println!(
            "halo {:>10} n={:<9} center=({:.4}, {:.4}, {:.4}) phi={:.4e}",
            c.halo_id, c.count, c.center[0], c.center[1], c.center[2], c.potential
        );
    }
    Ok(())
}

fn cmd_listen(args: &[String]) -> Result<(), String> {
    let dir = PathBuf::from(req(args, "--dir")?);
    let suffix = opt(args, "--suffix").unwrap_or_else(|| ".hcio".into());
    let max_files: usize = opt(args, "--max-files")
        .map(|s| s.parse().unwrap_or(usize::MAX))
        .unwrap_or(usize::MAX);
    let timeout_ms: u64 = opt(args, "--timeout-ms")
        .map(|s| s.parse().unwrap_or(60_000))
        .unwrap_or(60_000);
    println!(
        "listening on {} for *{suffix} (max {max_files}, {timeout_ms} ms)",
        dir.display()
    );
    let listener = Listener::spawn(
        dir,
        ListenerConfig {
            suffix,
            ..Default::default()
        },
        |p| println!("submit: analysis job for {}", p.display()),
    );
    let t0 = std::time::Instant::now();
    while listener.handled() < max_files && t0.elapsed().as_millis() < timeout_ms as u128 {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let report = listener.stop_report();
    println!("listener handled {} file(s)", report.submitted.len());
    Ok(())
}

fn cmd_trace_check(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("usage: hacc-driver trace-check <trace.json>".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = telemetry::json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .ok_or_else(|| format!("{path}: missing `traceEvents` array"))?;
    let mut layers: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("cat").and_then(|c| c.as_str()))
        .collect();
    layers.sort_unstable();
    layers.dedup();
    println!(
        "{path}: {} event(s) across {} layer(s){}{}",
        events.len(),
        layers.len(),
        if layers.is_empty() { "" } else { ": " },
        layers.join(", ")
    );
    Ok(())
}

fn cmd_experiments(args: &[String]) -> Result<(), String> {
    // The experiment selector is the first non-flag argument (`--out` /
    // `--trace` may come without one).
    let which = args
        .first()
        .map(|s| s.as_str())
        .filter(|s| !s.starts_with("--"))
        .unwrap_or("all");
    let frame = TitanFrame::default();
    if let Some(out) = opt(args, "--out") {
        let report = hacc_core::full_report(&frame, 20150715);
        std::fs::write(&out, report).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {out}");
        return Ok(());
    }
    let run = |name: &str| -> bool { which == "all" || which == name };
    if run("table1") {
        println!("{}", exp::format_table1(&exp::table1()));
    }
    if run("table2") {
        println!("{}", exp::format_table2(&exp::table2(&frame)));
    }
    if run("table3") {
        let costs = exp::table3_4(&frame, 7);
        println!("{}", exp::format_table3(&costs));
        println!("{}", hacc_core::format_table4(&costs));
    }
    if run("fig3") {
        println!("{}", exp::format_fig3(&exp::fig3(40)));
    }
    if run("fig4") {
        println!("{}", exp::format_fig4(&exp::fig4(&frame, 20150715)));
    }
    if run("qcontinuum") {
        println!("{}", exp::qcontinuum_report(&frame));
    }
    if ![
        "table1",
        "table2",
        "table3",
        "fig3",
        "fig4",
        "qcontinuum",
        "all",
    ]
    .contains(&which)
    {
        return Err(format!("unknown experiment `{which}`"));
    }
    Ok(())
}
