//! # hacc-core — the combined in-situ / co-scheduling workflow engine
//!
//! The paper's primary contribution, reproduced as a library:
//!
//! * [`cost`] — per-phase wall-time and core-hour accounting in the paper's
//!   Table 3/4 conventions.
//! * [`listener`] — the Bellerophon-derived co-scheduling listener that
//!   watches for simulation output and submits analysis jobs while the main
//!   application runs.
//! * [`autosplit`] — the automated in-situ/off-line split threshold and the
//!   co-scheduled job sizing heuristic of §4.1.
//! * [`model`] — the Titan-frame projection: workload descriptors →
//!   projected seconds/core-hours on Titan/Rhea/Moonlight via the `simhpc`
//!   facility models and two calibrated kernel constants.
//! * [`runner`] — *real* end-to-end execution of the in-situ, off-line, and
//!   combined (simple & co-scheduled) workflows on an actual downscaled
//!   simulation, with files on disk and a live listener.
//! * [`service`] — the long-lived multi-campaign service: many concurrent
//!   campaigns over one shared `dpp` pool and one `simhpc` batch queue,
//!   with a sharded, work-stealing listener and admission backpressure.
//! * [`stream`] — the streaming in-transit edge: a pub/sub [`StreamHub`]
//!   over which the emitter announces Level-2 chunks it has published into
//!   the distributed artifact store, so analysis ranks ingest chunks as
//!   they are produced instead of waiting for whole files.
//! * [`experiments`] — one driver per table/figure of the evaluation
//!   (Table 1–4, Figures 3–4, the §4.1 Q Continuum projection, the §4.2
//!   subhalo imbalance).

#![warn(missing_docs)]
// 3-vector component loops read better indexed; the lint fires on them.
#![allow(clippy::needless_range_loop)]

pub mod autosplit;
pub mod cost;
pub mod experiments;
pub mod journal;
pub mod listener;
pub mod model;
pub mod report;
pub mod runner;
pub mod service;
pub mod stream;

pub use autosplit::{choose_split, plan_coschedule, CoSchedulePlan, SplitDecision};
pub use cost::{format_table4, JobCost, PhaseSeconds, WorkflowCost};
pub use journal::Journal;
pub use listener::{Listener, ListenerConfig, ListenerReport, SubmitError};
pub use model::{qcontinuum_projection, QContinuumSummary, RenderProfile, RunSpec, TitanFrame};
pub use report::full_report;
pub use runner::{
    compare_all, measured_table2, MeasuredEpoch, RunnerConfig, TestBed, WorkflowRun,
    RENDER_FAULT_SITE, RUNNER_FAULT_SITE,
};
pub use service::{
    CampaignId, CampaignReport, CampaignSpec, CampaignStatus, ServiceConfig, ServiceError,
    ServiceReport, WorkflowService,
};
pub use stream::{ChunkRef, StreamHub};
