//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the small subset of the `parking_lot` API the workspace actually uses is
//! provided here on top of `std::sync`. Semantics follow `parking_lot`, not
//! `std`: locks are not poisoned — if a thread panics while holding a lock,
//! later lockers simply proceed (the inner `std` poison flag is ignored).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with the `parking_lot` API (no poisoning, no
/// `Result` from [`Mutex::lock`]).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            },
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panicking holder.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
