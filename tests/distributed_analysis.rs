//! Cross-crate integration: a real simulation analyzed through the
//! rank-parallel path (overload regions + per-rank FOF + ownership) must
//! agree with the single-domain periodic reference.

use comm::{CartDecomp, World};
use dpp::Threaded;
use halo::{fof_grid, members_by_group, parallel_fof, FofConfig};
use nbody::{SimConfig, Simulation};

#[test]
fn parallel_analysis_of_real_simulation_matches_single_domain() {
    let backend = Threaded::new(4);
    let cfg = SimConfig {
        np: 32,
        ng: 32,
        nsteps: 30,
        seed: 31415,
        ..SimConfig::default()
    };
    let box_size = cfg.cosmology.box_size;
    let mut sim = Simulation::new(&backend, cfg);
    sim.run(&backend);
    let particles = sim.particles().to_vec();

    let link = 0.2 * box_size / 24.0;
    let min_size = 30;

    // Reference: single-domain periodic FOF.
    let positions: Vec<[f64; 3]> = particles.iter().map(|p| p.pos_f64()).collect();
    let labels = fof_grid(&positions, link, box_size);
    let groups = members_by_group(&labels);
    let mut ref_sizes: Vec<usize> = groups
        .iter()
        .map(|g| g.len())
        .filter(|&s| s >= min_size)
        .collect();
    ref_sizes.sort_unstable();
    assert!(!ref_sizes.is_empty(), "the run must form halos");

    // The paper's overload guarantee requires the shell to be at least as
    // wide as the maximum feasible halo extent; measure it from the
    // reference catalog (FOF chains can stretch far beyond a virial radius).
    let mut max_extent: f64 = 0.0;
    for g in &groups {
        if g.len() < min_size {
            continue;
        }
        let anchor = positions[g[0] as usize];
        for d in 0..3 {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &i in g {
                let mut x = positions[i as usize][d];
                if x - anchor[d] > box_size / 2.0 {
                    x -= box_size;
                } else if x - anchor[d] < -box_size / 2.0 {
                    x += box_size;
                }
                lo = lo.min(x);
                hi = hi.max(x);
            }
            max_extent = max_extent.max(hi - lo);
        }
    }
    let width = (max_extent + 2.0 * link).max(10.0 * link);

    for nranks in [2usize, 4, 8] {
        let decomp = CartDecomp::new(nranks, box_size);
        assert!(
            width <= decomp.min_block_width(),
            "halo extent {max_extent:.1} exceeds what {nranks} ranks can overload"
        );
        let fof = FofConfig {
            link_length: link,
            min_size,
            overload_width: width,
        };
        let world = World::new(nranks);
        let catalogs = world.run(|c| {
            let locals: Vec<_> = particles
                .iter()
                .filter(|p| decomp.owner_of(p.pos_f64()) == c.rank())
                .copied()
                .collect();
            parallel_fof(c, &decomp, &locals, &fof)
        });
        let mut sizes: Vec<usize> = catalogs
            .iter()
            .flat_map(|cat| cat.halos.iter().map(|h| h.count()))
            .collect();
        sizes.sort_unstable();
        assert_eq!(
            sizes, ref_sizes,
            "nranks={nranks}: distributed catalog must match the reference"
        );
        // No duplicates across ranks.
        let mut ids: Vec<u64> = catalogs
            .iter()
            .flat_map(|cat| cat.halos.iter().map(|h| h.id))
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}

#[test]
fn redistribution_preserves_the_particle_set() {
    let backend = Threaded::new(4);
    let cfg = SimConfig {
        np: 16,
        ng: 16,
        nsteps: 8,
        seed: 2718,
        ..SimConfig::default()
    };
    let box_size = cfg.cosmology.box_size;
    let mut sim = Simulation::new(&backend, cfg);
    sim.run(&backend);
    let particles = sim.particles().to_vec();

    let nranks = 8;
    let decomp = CartDecomp::new(nranks, box_size);
    let world = World::new(nranks);
    // Start from a *wrong* distribution (round-robin by tag), redistribute,
    // and verify ownership + conservation.
    let tag_counts = world.run(|c| {
        let mine: Vec<_> = particles
            .iter()
            .filter(|p| p.tag as usize % nranks == c.rank())
            .copied()
            .collect();
        let owned = comm::redistribute(c, &decomp, mine);
        for p in &owned {
            assert_eq!(decomp.owner_of(p.pos_f64()), c.rank());
        }
        owned.iter().map(|p| p.tag).collect::<Vec<_>>()
    });
    let mut all_tags: Vec<u64> = tag_counts.into_iter().flatten().collect();
    all_tags.sort_unstable();
    let mut expect: Vec<u64> = particles.iter().map(|p| p.tag).collect();
    expect.sort_unstable();
    assert_eq!(all_tags, expect, "every particle lands exactly once");
}
