//! Sweep-harness conformance: the smoke sweep's seed-1 summary table is a
//! golden fixture (drift-diffed, `BLESS=1` to regenerate), two sweeps from
//! the same base seed serialize byte-identically, and the swept space spans
//! every workflow strategy and the whole scheduler comparison.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use conformance::golden;
use scenarios::{export, run_sweep, Grammar, SchedulerKind, Strategy, SweepConfig};

fn goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn smoke_config() -> SweepConfig {
    SweepConfig {
        base_seed: 1,
        n_seeds: 25,
        grammar: Grammar::smoke(),
    }
}

/// The CI contract: ≥ 900 runs spanning all five strategies and the Titan
/// policy plus at least four zoo disciplines.
#[test]
fn smoke_sweep_covers_the_required_space() {
    let config = smoke_config();
    let scenarios = config.grammar.expand();
    assert!(scenarios.len() >= 36, "only {} scenarios", scenarios.len());
    assert!(
        scenarios.len() * config.n_seeds >= 900,
        "only {} runs",
        scenarios.len() * config.n_seeds
    );
    let strategies: BTreeSet<Strategy> = scenarios.iter().map(|s| s.strategy).collect();
    assert_eq!(strategies.len(), Strategy::ALL.len());
    let schedulers: BTreeSet<SchedulerKind> = scenarios.iter().map(|s| s.scheduler).collect();
    assert!(schedulers.contains(&SchedulerKind::TitanPolicy));
    assert!(schedulers.len() >= 5, "titan policy + ≥4 zoo disciplines");
}

/// Full smoke sweep: byte-identical artifacts across two same-base-seed
/// runs, and the seed-1 summary table matches the committed golden.
#[test]
fn smoke_sweep_reproduces_and_matches_golden() {
    let config = smoke_config();
    let a = run_sweep(&config);
    let b = run_sweep(&config);

    assert_eq!(
        a.total_runs(),
        config.grammar.expand().len() * config.n_seeds
    );
    assert_eq!(export::to_json(&a), export::to_json(&b), "JSON drifted");
    assert_eq!(export::to_csv(&a), export::to_csv(&b), "CSV drifted");

    let table = export::summary_table(&a);
    assert_eq!(table, export::summary_table(&b), "summary drifted");
    if let Err(msg) =
        golden::compare_or_bless(&goldens_dir().join("sweep_summary_seed1.txt"), &table)
    {
        panic!("{msg}");
    }
}

/// The headline comparison the sweep exists to make: under the light smoke
/// load, every zoo discipline beats the paper's Titan two-small-jobs policy
/// on mean time-to-science for the combined (simple) workflow — by a margin
/// far beyond both confidence intervals.
#[test]
fn zoo_disciplines_beat_the_titan_policy_in_the_sweep() {
    let result = run_sweep(&smoke_config());
    let science = |id: &str| {
        let s = result
            .scenarios
            .iter()
            .find(|s| s.id == id)
            .unwrap_or_else(|| panic!("{id} not swept"));
        let m = s.summary("mean_result_seconds").expect("metric");
        (m.mean, m.ci95)
    };
    let (titan, titan_ci) = science("titan/light/halos/simple/none/titan-policy");
    for zoo in ["easy", "conservative", "priority-qos", "fair-share"] {
        let (mean, ci) = science(&format!("titan/light/halos/simple/none/{zoo}"));
        assert!(
            mean + ci < titan - titan_ci,
            "{zoo}: {mean} ± {ci} not clearly below titan-policy {titan} ± {titan_ci}"
        );
    }
}
