//! Cross-crate integration of the fully rank-parallel path: distributed
//! PM simulation (slab FFT, ghost planes, re-homing) feeding directly into
//! the rank-parallel analysis (overload-region FOF + centers) and the
//! distributed power spectrum — no gather anywhere.

use comm::{CartDecomp, World};
use cosmotools::distributed_power_spectrum;
use halo::{fof_and_centers_timed, FofConfig};
use nbody::{DistSim, SimConfig, Simulation};

fn cfg() -> SimConfig {
    SimConfig {
        np: 16,
        ng: 16,
        nsteps: 20,
        seed: 20150715,
        ..SimConfig::default()
    }
}

#[test]
fn distributed_sim_feeds_distributed_analysis() {
    let nranks = 4;
    let box_size = cfg().cosmology.box_size;
    let link = 0.28 * box_size / 16.0;
    let world = World::new(nranks);
    let results = world.run(|comm| {
        let mut sim = DistSim::new(comm, cfg());
        sim.run();
        assert!(sim.finished());

        // In-situ power spectrum straight off the slab-local particles
        // (DistSim homes particles by x-slab, which is exactly the layout
        // distributed_power_spectrum expects).
        let spec = distributed_power_spectrum(comm, sim.particles(), 16, box_size, 8);
        assert!(!spec.is_empty());

        // Halo analysis needs the near-cubic decomposition: redistribute.
        let decomp = CartDecomp::new(comm.size(), box_size);
        let locals = comm::redistribute(comm, &decomp, sim.particles().to_vec());
        let fof = FofConfig {
            link_length: link,
            min_size: 12,
            overload_width: (10.0 * link).min(0.45 * decomp.min_block_width()),
        };
        let (catalog, _) =
            fof_and_centers_timed(comm, &decomp, &locals, &fof, &dpp::Serial, 1e-3, usize::MAX);
        (spec, catalog.len(), catalog.total_particles())
    });

    // Every rank computed the identical global spectrum.
    for r in 1..nranks {
        assert_eq!(results[0].0.len(), results[r].0.len());
        for (a, b) in results[0].0.iter().zip(&results[r].0) {
            assert_eq!(a.modes, b.modes);
            assert!((a.power - b.power).abs() < 1e-9 * a.power.abs().max(1e-12));
        }
    }
    // Halos exist and are spread across ranks without duplication (count
    // equals a single-rank rerun).
    let total_halos: usize = results.iter().map(|r| r.1).sum();
    assert!(total_halos > 0, "the run must form halos");

    let single = World::new(1).run(|comm| {
        let mut sim = DistSim::new(comm, cfg());
        sim.run();
        let decomp = CartDecomp::new(1, box_size);
        let locals = comm::redistribute(comm, &decomp, sim.particles().to_vec());
        let fof = FofConfig {
            link_length: link,
            min_size: 12,
            overload_width: (10.0 * link).min(0.45 * decomp.min_block_width()),
        };
        let (catalog, _) =
            fof_and_centers_timed(comm, &decomp, &locals, &fof, &dpp::Serial, 1e-3, usize::MAX);
        catalog.len()
    });
    assert_eq!(
        total_halos, single[0],
        "rank count must not change the catalog"
    );
}

#[test]
fn distributed_and_shared_memory_sims_agree_statistically() {
    let mut shared = Simulation::new(&dpp::Serial, cfg());
    shared.run(&dpp::Serial);
    let shared_rms = shared.density_rms(&dpp::Serial);

    let world = World::new(2);
    let rms = world.run(|comm| {
        let mut sim = DistSim::new(comm, cfg());
        sim.run();
        sim.density_rms()
    });
    for r in rms {
        assert!(
            (r / shared_rms - 1.0).abs() < 0.1,
            "distributed rms {r} vs shared {shared_rms}"
        );
    }
}
