//! Tier-1 chaos suite for the in-situ visualization workload: the
//! co-scheduled render stream must keep its guarantees under seeded fault
//! storms — a byte-identical image sequence, exactly-once frame handling
//! across a listener crash/restart, and warm re-runs that recompute nothing.
//!
//! The seed comes from `CHAOS_SEED` (default 1), so CI can sweep seeds:
//!
//! ```text
//! CHAOS_SEED=3 cargo test --release --test render
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cache::ArtifactCache;
use conformance::frame_catalog;
use dpp::Threaded;
use faults::{FaultPlan, SiteSpec};
use hacc_core::listener::{Listener, ListenerConfig};
use hacc_core::runner::{assert_same_centers, RunnerConfig, TestBed};
use hacc_core::{RENDER_FAULT_SITE, RUNNER_FAULT_SITE};
use nbody::SimConfig;
use parking_lot::Mutex;

/// Seed for every plan in this file; override with `CHAOS_SEED=<n>`.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Tests that install a process-global injector must not overlap.
static GLOBAL_INJECTOR_LOCK: Mutex<()> = Mutex::new(());

/// The runner-test configuration plus a 12-pixel render stream.
fn render_cfg(name: &str, with_cache: bool) -> RunnerConfig {
    let workdir = std::env::temp_dir().join(format!("hacc_render_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&workdir);
    let cache = with_cache.then(|| {
        Arc::new(ArtifactCache::open(workdir.join("artifact_cache"), None).expect("open cache"))
    });
    RunnerConfig {
        sim: SimConfig {
            np: 16,
            ng: 16,
            nsteps: 30,
            seed: 4242,
            ..SimConfig::default()
        },
        nranks: 4,
        post_ranks: 2,
        linking_length: 0.28,
        threshold: 60,
        min_size: 12,
        workdir,
        cache,
        render: Some(cosmotools::RenderParams {
            ng: 12,
            ..cosmotools::RenderParams::default()
        }),
        ..Default::default()
    }
}

/// The fault storm: transient faults at the render, in-situ, listener, and
/// comm sites, all driven by one seed.
fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_site(SiteSpec::transient(RENDER_FAULT_SITE, 0.12))
        .with_site(SiteSpec::transient(RUNNER_FAULT_SITE, 0.12))
        .with_site(SiteSpec::transient("listener.submit", 0.15))
        .with_site(SiteSpec::transient("comm.send", 0.10))
        .with_site(SiteSpec::transient("comm.recv", 0.10))
}

/// Headline: a fault-storm run produces a byte-identical image sequence —
/// absorbed transients must not move a single pixel, drop a frame, or
/// change the science output.
#[test]
fn fault_storm_leaves_every_pixel_identical() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let backend = Threaded::new(4);
    let bed = TestBed::create(render_cfg("storm", false), &backend);
    let nsteps = bed.cfg.sim.nsteps as u64;

    // Fault-free baseline (no injector installed).
    let baseline = bed.run_combined_coscheduled(&backend, 4);
    assert_eq!(baseline.frames_rendered, nsteps, "one frame per step");
    assert_eq!(baseline.degraded_steps, 0);
    let reference = frame_catalog(&bed.cfg.workdir);
    assert_eq!(reference.len() as u64, nsteps);

    // Storm run under the global injector (no cache: every frame really
    // renders, so every step's fault decision is exercised).
    let injector = storm_plan(chaos_seed()).build();
    let run = {
        let _guard = faults::install(Arc::clone(&injector));
        bed.run_combined_coscheduled(&backend, 4)
    };
    assert!(
        injector.fault_count() > 0,
        "the storm must actually inject faults"
    );
    let stats = injector.site_stats();
    // One poll per frame plus one per absorbed transient retry.
    let (render_polls, _) = stats.get(RENDER_FAULT_SITE).copied().unwrap_or((0, 0));
    assert!(
        render_polls >= nsteps,
        "every frame consults the fault site: {render_polls} < {nsteps}"
    );
    assert_eq!(run.degraded_steps, 0, "transient faults must not degrade");
    assert_eq!(run.frames_rendered, nsteps, "no frame may be lost");
    assert_eq!(
        frame_catalog(&bed.cfg.workdir),
        reference,
        "absorbed faults must not change a single pixel"
    );
    assert_same_centers(&baseline.centers, &run.centers);
}

/// A cold run under the storm warms the artifact cache; the re-run replays
/// every frame from it — zero re-renders, byte-identical catalog.
#[test]
fn warm_rerun_after_storm_recomputes_no_frames() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let backend = Threaded::new(4);
    let bed = TestBed::create(render_cfg("warm", true), &backend);
    let nsteps = bed.cfg.sim.nsteps as u64;

    let cold = {
        let _guard = faults::install(storm_plan(chaos_seed()).build());
        bed.run_combined_coscheduled(&backend, 4)
    };
    assert_eq!(cold.frames_rendered, nsteps);
    assert_eq!(cold.render_cache_hits, 0, "a cold cache cannot replay");
    let cold_frames = frame_catalog(&bed.cfg.workdir);

    // Warm, fault-free: nothing renders, everything replays.
    let warm = bed.run_combined_coscheduled(&backend, 4);
    assert_eq!(warm.frames_rendered, nsteps);
    assert_eq!(
        warm.render_cache_hits, nsteps,
        "a warm re-run must recompute no frames"
    );
    assert_eq!(frame_catalog(&bed.cfg.workdir), cold_frames);
    assert_same_centers(&cold.centers, &warm.centers);
}

/// Exactly-once frame handling across a listener crash/restart: a journaled
/// listener consuming the frame stream crashes mid-run, more frames land
/// while it is down, and the restarted incarnation picks up exactly the
/// unhandled remainder — every frame delivered once, none lost, none twice.
#[test]
fn frame_listener_crash_restart_is_exactly_once() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let backend = Threaded::new(4);
    let bed = TestBed::create(render_cfg("listener", false), &backend);
    let run = bed.run_combined_coscheduled(&backend, 4);
    let frames = frame_catalog(&bed.cfg.workdir);
    assert_eq!(frames.len() as u64, run.frames_rendered);

    // A downstream consumer's staging directory the frames stream into.
    let dir = std::env::temp_dir().join(format!("hacc_render_consumer_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("frames.journal");
    let handled: Arc<Mutex<Vec<PathBuf>>> = Arc::new(Mutex::new(Vec::new()));

    let half = frames.len() / 2;
    for (name, bytes) in &frames[..half] {
        std::fs::write(dir.join(name), bytes).unwrap();
    }

    // Incarnation 1: crash a few scans in, transient submit faults on top.
    let plan = FaultPlan::new(chaos_seed())
        .with_site(SiteSpec::transient("listener.submit", 0.2))
        .with_site(SiteSpec::crash_at("listener.scan", 6))
        .build();
    let h2 = Arc::clone(&handled);
    let listener = Listener::spawn(
        dir.clone(),
        ListenerConfig {
            poll_interval: Duration::from_millis(5),
            suffix: ".hcim".into(),
            journal: Some(journal.clone()),
            injector: Some(plan),
            ..Default::default()
        },
        move |p| h2.lock().push(p.to_path_buf()),
    );
    std::thread::sleep(Duration::from_millis(250));
    let report1 = listener.stop_report();
    assert!(report1.crashed, "the injected crash must fire");

    // The remaining frames land while the consumer is down.
    for (name, bytes) in &frames[half..] {
        std::fs::write(dir.join(name), bytes).unwrap();
    }

    // Incarnation 2: restart from the journal, fault-free.
    let h3 = Arc::clone(&handled);
    let listener = Listener::spawn(
        dir.clone(),
        ListenerConfig {
            poll_interval: Duration::from_millis(5),
            suffix: ".hcim".into(),
            journal: Some(journal),
            ..Default::default()
        },
        move |p| h3.lock().push(p.to_path_buf()),
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while handled.lock().len() < frames.len() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let report2 = listener.stop_report();
    assert!(!report2.crashed);

    // Across both incarnations: every frame exactly once, and every
    // delivered file is a decodable HCIM image.
    let handled = handled.lock();
    let unique: BTreeSet<_> = handled.iter().collect();
    assert_eq!(unique.len(), frames.len(), "every frame must be handled");
    assert_eq!(
        handled.len(),
        frames.len(),
        "no frame may be handled twice: {:?}",
        *handled
    );
    for p in handled.iter() {
        let bytes = std::fs::read(p).unwrap();
        cosmotools::read_image(&bytes).expect("delivered frame decodes");
    }
    std::fs::remove_dir_all(&dir).ok();
}
