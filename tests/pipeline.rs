#![allow(clippy::needless_range_loop)]
//! Cross-crate integration: initial conditions → simulation → in-situ
//! analysis → Level 2 file → off-line driver → merged Level 3 output.

use cosmotools::{
    centers_from_catalog, centers_from_level2, merge_center_sets, read_container, write_container,
    write_level2_container, Config, HaloFinderTask, InSituAnalysisManager, PowerSpectrumTask,
    Product, SnapshotMeta,
};
use dpp::Threaded;
use halo::HaloCatalog;
use nbody::{SimConfig, Simulation};

fn small_sim(backend: &dyn dpp::Backend) -> (Simulation, f64) {
    let cfg = SimConfig {
        np: 32,
        ng: 32,
        nsteps: 30,
        seed: 2015,
        ..SimConfig::default()
    };
    let box_size = cfg.cosmology.box_size;
    let mut sim = Simulation::new(backend, cfg);
    sim.run(backend);
    (sim, box_size)
}

#[test]
fn full_in_situ_pipeline_produces_all_products() {
    let backend = Threaded::new(4);
    let cfg = SimConfig {
        np: 32,
        ng: 32,
        nsteps: 30,
        seed: 2015,
        ..SimConfig::default()
    };
    let box_size = cfg.cosmology.box_size;

    let mut manager = InSituAnalysisManager::new();
    manager.register(Box::new(PowerSpectrumTask::new()));
    manager.register(Box::new(HaloFinderTask::new()));
    let deck = Config::parse(
        "[powerspectrum]\nevery = 6\nbins = 12\n\
         [halofinder]\nmin_size = 30\ncenter_threshold = 100000\n",
    )
    .unwrap();
    manager.configure(&deck).unwrap();

    let mut sim = Simulation::new(&backend, cfg);
    sim.run_with_hook(&backend, |step, sim| {
        manager.execute_at(
            step,
            sim.total_steps(),
            sim.redshift(),
            sim.particles(),
            box_size,
            &backend,
        );
    });

    let products = manager.take_products();
    let n_spectra = products
        .iter()
        .filter(|p| matches!(p, Product::PowerSpectrum { .. }))
        .count();
    let n_halo_cats = products
        .iter()
        .filter(|p| matches!(p, Product::Halos { .. }))
        .count();
    assert_eq!(n_spectra, 5, "steps 6, 12, 18, 24, 30");
    assert_eq!(n_halo_cats, 1, "final step only");
    // The final catalog contains clustered structure.
    let Some(Product::Halos { catalog, .. }) =
        products.iter().find(|p| matches!(p, Product::Halos { .. }))
    else {
        unreachable!()
    };
    assert!(!catalog.is_empty(), "z = 0 must have halos");
    assert!(catalog.halos.iter().all(|h| h.count() >= 30));
}

#[test]
fn in_situ_writer_offline_reader_roundtrip() {
    // The combined workflow's hand-off: what the in-situ side writes, the
    // off-line driver must reconstruct bit-for-bit and analyze to the same
    // answer.
    let backend = Threaded::new(4);
    let (sim, box_size) = small_sim(&backend);
    let catalog = cosmotools::find_halos_with_centers(
        &backend,
        sim.particles(),
        box_size,
        0.2,
        30,
        usize::MAX,
        1e-3,
    );
    assert!(!catalog.is_empty());

    // Pretend everything above the median size is "large".
    let mut sizes: Vec<usize> = catalog.halos.iter().map(|h| h.count()).collect();
    sizes.sort_unstable();
    let threshold = sizes[sizes.len() / 2];
    let (small, large) = catalog.clone().split_by_size(threshold);

    let meta = SnapshotMeta {
        step: 12,
        redshift: 0.0,
        box_size,
    };
    let container = write_level2_container(&large, meta);
    let bytes = write_container(&container);
    let back = read_container(&bytes).expect("clean roundtrip");
    assert_eq!(back.total_particles(), large.total_particles());

    // Off-line centers must equal the in-situ centers for the same halos.
    let offline_centers = centers_from_level2(&backend, &back, 1e-3);
    for rec in &offline_centers {
        let insitu = catalog
            .halos
            .iter()
            .find(|h| h.id == rec.halo_id)
            .expect("halo exists");
        let c = insitu.mbp_center.expect("centered in the full run");
        for d in 0..3 {
            assert!((c[d] - rec.center[d]).abs() < 1e-6);
        }
    }

    // And the merge covers the whole original catalog exactly once.
    let small_centers = centers_from_catalog(&small);
    let merged = merge_center_sets(small_centers, offline_centers);
    assert_eq!(merged.len(), catalog.len());
}

#[test]
fn corrupted_level2_file_is_rejected_not_misanalyzed() {
    let backend = Threaded::new(2);
    let (sim, box_size) = small_sim(&backend);
    let catalog = cosmotools::find_halos_with_centers(
        &backend,
        sim.particles(),
        box_size,
        0.2,
        30,
        0, // no centers needed
        1e-3,
    );
    let mut large = HaloCatalog::new();
    large.merge(catalog);
    let container = write_level2_container(
        &large,
        SnapshotMeta {
            step: 12,
            redshift: 0.0,
            box_size,
        },
    );
    let bytes = write_container(&container);
    let mut corrupt = bytes.to_vec();
    let n = corrupt.len();
    corrupt[n / 2] ^= 0x5A;
    assert!(
        read_container(&corrupt).is_err(),
        "bit flip inside the payload must be caught by the block CRC"
    );
}
