//! Distributed artifact store suite: the sharded, replicated store and the
//! streaming Level-2 in-transit path must keep the stack's equivalence
//! claim — byte-identical catalogs, exactly-once analysis — under replica
//! faults, remote-fetch faults, and the death of any single store node.
//!
//! The seed comes from `CHAOS_SEED` (default 1), so CI can sweep seeds:
//!
//! ```text
//! CHAOS_SEED=3 cargo test --release --test store
//! ```

use std::path::PathBuf;
use std::time::Duration;

use cache::{SITE_FETCH_REMOTE, SITE_REPLICATE};
use conformance::StoreConfig;
use faults::{FaultPlan, SiteSpec};
use hacc_core::service::{
    reference_catalog, CampaignSpec, CampaignStatus, ServiceConfig, WorkflowService,
};
use parking_lot::Mutex;

/// Seed for every plan in this file; override with `CHAOS_SEED=<n>`.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The exploration test installs the process-global injector; every other
/// test in this binary could consume its armed faults through the global
/// fallback, so all of them serialize on this lock.
static GLOBAL_INJECTOR_LOCK: Mutex<()> = Mutex::new(());

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("hacc_store_suite")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn step_file_name(step: usize) -> String {
    format!("l2_{step:04}.hcio")
}

/// The full store exploration: whole-file vs streamed baselines, a crash
/// schedule on each store fault site, and the node-death sweep over every
/// store node — 100% coverage of `cache.replicate` / `cache.fetch.remote`
/// asserted, every schedule byte-identical.
#[test]
fn store_crash_schedules_and_node_deaths_all_recover() {
    let _g = GLOBAL_INJECTOR_LOCK.lock();
    let mut cfg = StoreConfig::new(scratch("explore"));
    cfg.seed = 0xD157 + chaos_seed();
    let report = conformance::explore_store(&cfg);
    report.assert_exhaustive(&cfg);
    assert_eq!(report.schedules.len(), 2, "one schedule per store site");
    assert_eq!(report.kill_nodes.len(), cfg.nodes);
    // The fetch schedule is the degraded corner: losing the fail-over
    // source mid-read may force recompute, but never more than once per
    // drop and never byte drift (asserted above).
    for s in &report.schedules {
        assert!(
            s.warm_degraded <= cfg.steps as u64 * 2,
            "schedule {} degraded past the recompute budget: {}",
            s.site,
            s.warm_degraded
        );
    }
}

/// A seeded transient-and-stall storm across both store sites: replica
/// writes get skipped, remote fetches hiccup, and the streamed campaign
/// still lands its solo catalog exactly once with zero assembly misses —
/// under-replication degrades durability, never bytes.
#[test]
fn store_fault_storm_never_changes_catalog_bytes() {
    let _g = GLOBAL_INJECTOR_LOCK.lock();
    let seed = chaos_seed();
    let injector = FaultPlan::new(seed)
        .with_site(SiteSpec::transient(SITE_REPLICATE, 0.4).with_max_faults(16))
        .with_site(SiteSpec::transient(SITE_FETCH_REMOTE, 0.4).with_max_faults(16))
        .with_site(
            SiteSpec::stall(SITE_REPLICATE, 0.2, Duration::from_millis(2)).with_max_faults(8),
        )
        .with_recording()
        .build();
    let _guard = faults::install(injector);
    let cfg = ServiceConfig {
        shards: 1,
        poll_interval: Duration::from_millis(3),
        store_nodes: 3,
        store_replicas: 2,
        ..ServiceConfig::new(scratch("storm"))
    };
    let spec = CampaignSpec::streamed("storm", 4000 + seed, 3);
    let svc = WorkflowService::start(cfg).unwrap();
    let id = svc.submit_campaign(spec.clone()).unwrap();
    svc.wait_all();
    let report = svc.shutdown();
    assert!(
        !report.crashed,
        "transients must never kill the incarnation"
    );
    let rep = &report.campaigns[&id.0];
    assert_eq!(rep.status, CampaignStatus::Completed);
    assert_eq!(
        rep.catalog.as_deref(),
        Some(&reference_catalog(&spec)[..]),
        "storm run drifted from the solo catalog"
    );
    for s in 0..spec.steps {
        assert_eq!(
            rep.executions.get(&step_file_name(s)),
            Some(&1),
            "step {s} not exactly-once: {:?}",
            rep.executions
        );
    }
}

/// Losing one replica-holding node between a cold streamed run and a warm
/// one costs remote fetches, not recomputes: the warm run re-analyzes
/// nothing, assembles with zero misses, and lands byte-identical bytes.
#[test]
fn one_node_death_costs_fetches_not_recomputes() {
    let _g = GLOBAL_INJECTOR_LOCK.lock();
    let injector = FaultPlan::new(chaos_seed()).build();
    let _guard = faults::install(injector);
    let root = scratch("node-death");
    let spec = CampaignSpec::streamed("nd", 5100 + chaos_seed(), 3);
    let svc_cfg = || ServiceConfig {
        shards: 1,
        poll_interval: Duration::from_millis(3),
        store_nodes: 3,
        store_replicas: 2,
        ..ServiceConfig::new(&root)
    };

    let svc = WorkflowService::start(svc_cfg()).unwrap();
    let id = svc.submit_campaign(spec.clone()).unwrap();
    svc.wait_all();
    let cold = svc.shutdown().campaigns.remove(&id.0).unwrap();
    assert_eq!(cold.status, CampaignStatus::Completed);

    // The node dies for good: its shard directory is erased, and the shard
    // journals with it, so recovery cannot paper over a durability hole.
    let _ = std::fs::remove_dir_all(root.join("cache").join("node1"));
    for k in 0..4 {
        let _ = std::fs::remove_file(root.join(format!("shard{k}.journal")));
    }

    let svc = WorkflowService::start(svc_cfg()).unwrap();
    let id = svc.submit_campaign(spec.clone()).unwrap();
    svc.wait_all();
    let warm = svc.shutdown().campaigns.remove(&id.0).unwrap();
    assert_eq!(warm.status, CampaignStatus::Completed);
    assert_eq!(
        warm.catalog, cold.catalog,
        "catalog bytes changed after a node death"
    );
    assert_eq!(
        warm.executions.values().sum::<u64>(),
        0,
        "warm re-run recomputed after losing one of two replicas: {:?}",
        warm.executions
    );
    assert_eq!(
        warm.assembly_misses, 0,
        "warm assembly missed the store — a product had a single copy"
    );
    assert_eq!(
        warm.listener.cache_skipped.len(),
        spec.steps,
        "every drop must be satisfied by the store's gate"
    );
}
