//! Cross-crate integration: tracking halo evolution across real snapshots
//! of one simulation (paper §3: halos "merge and accrete mass" over time and
//! the analysis "tracks their evolution to the end of the simulation").

use cosmotools::find_halos_with_centers;
use dpp::Threaded;
use halo::{fit_power_law, track_halos, HaloCatalog};
use nbody::{SimConfig, Simulation};

fn snapshot_catalogs(at_steps: &[usize]) -> Vec<(usize, f64, HaloCatalog)> {
    let backend = Threaded::new(4);
    let cfg = SimConfig {
        np: 32,
        ng: 32,
        nsteps: 30,
        seed: 20150715,
        ..SimConfig::default()
    };
    let box_size = cfg.cosmology.box_size;
    let mut out = Vec::new();
    let mut sim = Simulation::new(&backend, cfg);
    sim.run_with_hook(&backend, |step, sim| {
        if at_steps.contains(&step) {
            let cat = find_halos_with_centers(
                &backend,
                sim.particles(),
                box_size,
                0.2,
                20,
                0, // no centers needed for tracking
                1e-3,
            );
            out.push((step, sim.redshift(), cat));
        }
    });
    out
}

#[test]
fn halos_accrete_and_track_across_snapshots() {
    let snaps = snapshot_catalogs(&[22, 30]);
    assert_eq!(snaps.len(), 2);
    let (_, z_early, early) = &snaps[0];
    let (_, z_late, late) = &snaps[1];
    assert!(z_early > z_late);
    assert!(!early.is_empty() && !late.is_empty());

    let tracking = track_halos(early, late, 0.5);
    // Structure formation: a healthy majority of early halos must have
    // descendants (halos grow; they rarely evaporate).
    assert!(
        tracking.links.len() * 2 > early.len(),
        "{} of {} early halos tracked",
        tracking.links.len(),
        early.len()
    );
    // Accretion: on average descendants are at least as massive.
    let mut grew = 0;
    let mut shrank = 0;
    for link in &tracking.links {
        let e = early
            .halos
            .iter()
            .find(|h| h.id == link.progenitor)
            .unwrap();
        let l = late.halos.iter().find(|h| h.id == link.descendant).unwrap();
        if l.count() >= e.count() {
            grew += 1;
        } else {
            shrank += 1;
        }
    }
    assert!(
        grew > shrank,
        "accretion should dominate: {grew} grew vs {shrank} shrank"
    );
    // Late-time structure keeps forming: new halos appear.
    assert!(
        late.len() + tracking.disrupted.len() >= early.len(),
        "halo counts should not collapse"
    );
}

#[test]
fn measured_mass_function_feeds_the_projection_machinery() {
    // The route DESIGN.md describes: fit the measured catalog's slope, then
    // use the fitted form for projections.
    let snaps = snapshot_catalogs(&[30]);
    let (_, _, cat) = &snaps[0];
    let sizes: Vec<u64> = cat.halos.iter().map(|h| h.count() as u64).collect();
    // Toy catalogs are small; the fit may legitimately decline. If it
    // succeeds, the slope must be a physical mass-function slope.
    if let Some(fit) = fit_power_law(&sizes, 20.0) {
        assert!(
            (0.5..3.5).contains(&fit.alpha),
            "implausible slope {}",
            fit.alpha
        );
    }
    // Either way the census is usable for split decisions.
    let largest = *sizes.iter().max().unwrap();
    let decision = hacc_core::choose_split(60.0, &sizes);
    assert_eq!(
        decision.all_in_situ,
        largest <= decision.threshold,
        "split decision consistent with the census"
    );
}
