//! Multi-campaign service suite: concurrent campaigns over shared
//! shards/pool/cache must behave exactly like solo runs — byte-identical
//! catalogs, exactly-once analysis per campaign, zero cross-campaign bleed —
//! under fault-free, transient-storm, crash-restart, and exhaustive
//! crash-schedule conditions.
//!
//! The seed comes from `CHAOS_SEED` (default 1), so CI can sweep seeds:
//!
//! ```text
//! CHAOS_SEED=3 cargo test --release --test service
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use conformance::multi::MultiConfig;
use faults::{FaultPlan, SiteSpec};
use hacc_core::service::{
    reference_catalog, CampaignSpec, CampaignStatus, ServiceConfig, ServiceError, WorkflowService,
};
use parking_lot::Mutex;

/// Seed for every plan in this file; override with `CHAOS_SEED=<n>`.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The exploration test installs the process-global injector; every other
/// test in this binary could consume its armed faults through the global
/// fallback, so all of them serialize on this lock.
static GLOBAL_INJECTOR_LOCK: Mutex<()> = Mutex::new(());

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("hacc_service_suite")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_cfg(root: PathBuf) -> ServiceConfig {
    ServiceConfig {
        poll_interval: Duration::from_millis(2),
        shards: 3,
        ..ServiceConfig::new(root)
    }
}

fn step_file_name(step: usize) -> String {
    format!("l2_{step:04}.hcio")
}

/// Fault-free: many concurrent campaigns, every catalog byte-identical to
/// its solo run, exactly-once per campaign, and zero bleed (distinct seeds
/// give distinct catalogs; an identical-seed pair gives identical ones).
#[test]
fn concurrent_campaigns_match_their_solo_runs() {
    let _g = GLOBAL_INJECTOR_LOCK.lock();
    let svc = WorkflowService::start(quick_cfg(scratch("fault-free"))).unwrap();
    let mut specs: Vec<CampaignSpec> = (0..5)
        .map(|k| CampaignSpec::new(format!("ff{k}"), 500 + k as u64, 2 + k % 3))
        .collect();
    // A twin of ff0 under a different name: same seed and steps, so its
    // catalog must be byte-identical to ff0's — campaign isolation is by
    // namespace, not by accident of differing inputs.
    specs.push(CampaignSpec::new("ff0-twin", 500, 2));
    let ids: Vec<_> = specs
        .iter()
        .map(|s| svc.submit_campaign(s.clone()).unwrap())
        .collect();
    svc.wait_all();
    let report = svc.shutdown();
    assert!(!report.crashed);
    for (spec, id) in specs.iter().zip(&ids) {
        let rep = &report.campaigns[&id.0];
        assert_eq!(rep.status, CampaignStatus::Completed, "{}", spec.name);
        assert_eq!(
            rep.catalog.as_deref(),
            Some(&reference_catalog(spec)[..]),
            "campaign {} drifted from its solo catalog",
            spec.name
        );
        for s in 0..spec.steps {
            assert_eq!(
                rep.executions.get(&step_file_name(s)),
                Some(&1),
                "campaign {} step {s}: {:?}",
                spec.name,
                rep.executions
            );
        }
    }
    let cat = |i: usize| report.campaigns[&ids[i].0].catalog.clone().unwrap();
    assert_ne!(cat(0), cat(1), "distinct seeds must give distinct catalogs");
    assert_eq!(cat(0), cat(5), "same spec under another name is byte-equal");
    assert_eq!(report.job_records.len(), specs.len());
}

/// A seeded storm of transient faults across every campaign's emit and
/// analysis sites plus the shared submission path: retries absorb all of
/// it, and every campaign still lands its solo catalog exactly once.
#[test]
fn transient_storm_is_absorbed_per_campaign() {
    let _g = GLOBAL_INJECTOR_LOCK.lock();
    let mut cfg = quick_cfg(scratch("storm"));
    cfg.injector = Some(
        FaultPlan::new(chaos_seed())
            .with_site(SiteSpec::transient("service.c*", 0.3).with_max_faults(12))
            .with_site(SiteSpec::transient("listener.submit", 0.2).with_max_faults(6))
            .build(),
    );
    let svc = WorkflowService::start(cfg).unwrap();
    let specs: Vec<CampaignSpec> = (0..4)
        .map(|k| CampaignSpec::new(format!("st{k}"), 700 + k as u64, 2))
        .collect();
    let ids: Vec<_> = specs
        .iter()
        .map(|s| svc.submit_campaign(s.clone()).unwrap())
        .collect();
    svc.wait_all();
    let report = svc.shutdown();
    assert!(
        !report.crashed,
        "transients must never kill the incarnation"
    );
    for (spec, id) in specs.iter().zip(&ids) {
        let rep = &report.campaigns[&id.0];
        assert_eq!(rep.status, CampaignStatus::Completed, "{}", spec.name);
        assert_eq!(
            rep.catalog.as_deref(),
            Some(&reference_catalog(spec)[..]),
            "campaign {} drifted under the storm",
            spec.name
        );
        for s in 0..spec.steps {
            assert_eq!(
                rep.executions.get(&step_file_name(s)),
                Some(&1),
                "campaign {} step {s}: {:?}",
                spec.name,
                rep.executions
            );
        }
    }
}

/// A seed-chosen crash at one campaign's emit or analysis site kills the
/// whole incarnation; restarted services over the same root recover every
/// campaign — not just the crashed one — with exactly-once totals.
#[test]
fn seeded_crash_restart_recovers_every_campaign() {
    let _g = GLOBAL_INJECTOR_LOCK.lock();
    let seed = chaos_seed();
    let root = scratch("crash");
    let specs: Vec<CampaignSpec> = (0..3)
        .map(|k| CampaignSpec::new(format!("cr{k}"), 900 + k as u64, 2))
        .collect();
    // The seed picks the victim campaign and the crashed operation; the
    // injector persists across incarnations so the crash fires exactly once.
    let victim = 1 + (seed % specs.len() as u64);
    let op = if (seed >> 8).is_multiple_of(2) {
        "emit"
    } else {
        "analysis"
    };
    let site = faults::campaign_site(victim, op);
    let injector = FaultPlan::new(seed)
        .with_site(SiteSpec::crash_at(&site, 0))
        .build();

    let mut executions: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut catalogs: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut incarnations = 0;
    while incarnations < 5 && catalogs.len() < specs.len() {
        incarnations += 1;
        let mut cfg = quick_cfg(root.clone());
        cfg.root = root.clone(); // keep journals + cache across incarnations
        cfg.injector = Some(Arc::clone(&injector));
        let svc = WorkflowService::start(cfg).unwrap();
        let ids: Vec<_> = specs
            .iter()
            .filter_map(|s| svc.submit_campaign(s.clone()).ok())
            .collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let settled = ids.iter().all(|id| {
                svc.status(*id)
                    .map(|s| s != CampaignStatus::Running)
                    .unwrap_or(true)
            });
            if settled || svc.crashed() || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let report = svc.shutdown();
        for rep in report.campaigns.values() {
            for (file, n) in &rep.executions {
                *executions
                    .entry((rep.name.clone(), file.clone()))
                    .or_insert(0) += n;
            }
            if rep.status == CampaignStatus::Completed {
                catalogs.insert(rep.name.clone(), rep.catalog.clone().unwrap());
            }
        }
    }
    assert!(
        incarnations >= 2,
        "the crash at {site} must have killed incarnation 1"
    );
    for spec in &specs {
        assert_eq!(
            catalogs.get(&spec.name).map(|c| &c[..]),
            Some(&reference_catalog(spec)[..]),
            "campaign {} recovered catalog drifted",
            spec.name
        );
        for s in 0..spec.steps {
            assert_eq!(
                executions.get(&(spec.name.clone(), step_file_name(s))),
                Some(&1),
                "campaign {} step {s} not exactly-once",
                spec.name
            );
        }
    }
    assert!(
        injector
            .site_stats()
            .get(site.as_str())
            .is_some_and(|&(_, f)| f > 0),
        "armed crash at {site} never fired"
    );
}

/// Saturation is backpressure, not a panic or a silent drop: the bounded
/// batch queue rejects with [`ServiceError::Saturated`], and completions
/// free admission slots.
#[test]
fn saturation_backpressure_and_release() {
    let _g = GLOBAL_INJECTOR_LOCK.lock();
    let mut cfg = quick_cfg(scratch("saturation"));
    cfg.max_pending_jobs = 3;
    let svc = WorkflowService::start(cfg).unwrap();
    let ids: Vec<_> = (0..3)
        .map(|k| {
            svc.submit_campaign(CampaignSpec::new(format!("sat{k}"), 40 + k as u64, 2))
                .unwrap()
        })
        .collect();
    match svc.submit_campaign(CampaignSpec::new("overflow", 99, 2)) {
        Err(ServiceError::Saturated {
            pending: 3,
            limit: 3,
        }) => {}
        other => panic!("expected Saturated{{3,3}}, got {other:?}"),
    }
    for id in &ids {
        assert_eq!(svc.wait(*id).unwrap(), CampaignStatus::Completed);
    }
    let late = svc
        .submit_campaign(CampaignSpec::new("overflow", 99, 2))
        .expect("completions free admission slots");
    assert_eq!(svc.wait(late).unwrap(), CampaignStatus::Completed);
    assert!(!svc.shutdown().crashed);
}

/// The exhaustive multi-campaign crash-schedule sweep: every fault site the
/// service reaches (per-campaign emit/analysis, the shared listener sites,
/// journal compaction, the artifact cache) is crashed in turn, and every
/// schedule must recover each campaign's exact solo catalog with
/// exactly-once analysis and zero cross-campaign bleed.
#[test]
fn multi_campaign_crash_schedules_all_recover() {
    let _g = GLOBAL_INJECTOR_LOCK.lock();
    let cfg = MultiConfig::new(scratch("explore"));
    let report = conformance::explore_multi(&cfg);
    report.assert_exhaustive(&cfg);
    // Shared-infrastructure sites must be part of the explored surface —
    // the sweep is only meaningful if crashes hit the shared pieces too.
    let explored = report.sites_explored();
    for site in [
        "listener.scan",
        "listener.submit",
        "listener.journal",
        "cache.read",
    ] {
        assert!(
            explored.contains(site),
            "shared site `{site}` missing from the explored surface: {explored:?}"
        );
    }
    assert!(
        report.schedules.len() >= 8,
        "suspiciously small schedule sweep: {:?}",
        report.sites_enumerated
    );
}
