//! Deterministic chaos harness: the full co-scheduled workflow runs under
//! seeded fault plans and must keep its guarantees — exactly-once submission,
//! no lost outputs, bounded retries, and a final halo catalog identical to
//! the fault-free run.
//!
//! The seed comes from `CHAOS_SEED` (default 1), so CI can sweep seeds:
//!
//! ```text
//! CHAOS_SEED=3 cargo test --release --test chaos
//! ```
//!
//! Determinism note: fault decisions depend only on `(seed, site, hit
//! index)`. Sites driven by discrete events (scheduler retirements, in-situ
//! analysis steps, comm calls) have reproducible hit counts, so their traces
//! are compared exactly across same-seed runs. The listener's `listener.*`
//! sites are driven by wall-clock polling — the *decision at each hit* is
//! reproducible, but how many polls happen is not, so listener assertions
//! check behavior (exactly-once, recovery) rather than trace equality.

use cache::{digest_bytes, ArtifactCache, CacheKey, FingerprintBuilder};
use dpp::Threaded;
use faults::{FaultKind, FaultPlan, SiteSpec};
use hacc_core::listener::{CacheGate, Listener, ListenerConfig};
use hacc_core::runner::{assert_same_centers, RunnerConfig, TestBed, RUNNER_FAULT_SITE};
use nbody::SimConfig;
use parking_lot::Mutex;
use simhpc::{machine, BatchSimulator, JobRequest, JobState, QueuePolicy, SCHEDULER_FAULT_SITE};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Seed for every plan in this file; override with `CHAOS_SEED=<n>`.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Tests that install a process-global injector must not overlap.
static GLOBAL_INJECTOR_LOCK: Mutex<()> = Mutex::new(());

fn tiny_cfg(name: &str) -> RunnerConfig {
    RunnerConfig {
        sim: SimConfig {
            np: 16,
            ng: 16,
            nsteps: 30,
            seed: 4242,
            ..SimConfig::default()
        },
        nranks: 4,
        post_ranks: 2,
        linking_length: 0.28,
        threshold: 60,
        min_size: 12,
        workdir: std::env::temp_dir().join(format!("hacc_chaos_{name}_{}", std::process::id())),
        ..Default::default()
    }
}

/// The headline chaos plan: ≥10% transient fault probability at the
/// listener, comm, and runner sites, all from one seed.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_site(SiteSpec::transient("listener.scan", 0.15))
        .with_site(SiteSpec::transient("listener.submit", 0.15))
        .with_site(SiteSpec::transient("listener.journal", 0.10))
        .with_site(SiteSpec::transient("comm.send", 0.10))
        .with_site(SiteSpec::transient("comm.recv", 0.10))
        .with_site(SiteSpec::transient(RUNNER_FAULT_SITE, 0.12))
}

/// Headline: the full co-scheduled workflow under faults at every layer
/// produces the same Level 3 catalog as the fault-free run, with every
/// emitted file submitted exactly once and no hangs.
#[test]
fn coscheduled_catalog_survives_chaos() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let backend = Threaded::new(4);
    let bed = TestBed::create(tiny_cfg("headline"), &backend);

    // Fault-free baseline first (no injector installed).
    let baseline = bed.run_combined_coscheduled(&backend, 4);
    assert_eq!(baseline.degraded_steps, 0);
    assert_eq!(baseline.insitu_retries, 0);

    // Chaos run: the global injector covers the listener and comm sites the
    // runner wires up internally.
    let injector = chaos_plan(chaos_seed()).build();
    let run = {
        let _guard = faults::install(Arc::clone(&injector));
        bed.run_combined_coscheduled(&backend, 4)
    };

    assert!(
        injector.fault_count() > 0,
        "the plan must actually inject faults for this test to mean anything"
    );
    // No lost outputs, no double submissions (the runner asserts
    // files == emitted internally), identical science output.
    assert_same_centers(&baseline.centers, &run.centers);
    // Transient in-situ faults were absorbed by bounded retries, not
    // degradation.
    assert_eq!(run.degraded_steps, 0, "transient faults must not degrade");
    let max = u64::from(bed.cfg.insitu_retry.max_attempts);
    let steps = (bed.cfg.sim.nsteps / 4 + 2) as u64;
    assert!(
        run.insitu_retries <= max * steps,
        "retries must stay bounded: {} > {max} * {steps}",
        run.insitu_retries,
    );
}

/// Same seed ⇒ same fault trace and same retry counts at the
/// discrete-event sites (scheduler, comm, runner).
#[test]
fn same_seed_gives_identical_fault_trace() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let backend = Threaded::new(4);
    let bed = TestBed::create(tiny_cfg("determinism"), &backend);

    let mut runs = Vec::new();
    for round in 0..2 {
        let injector = FaultPlan::new(chaos_seed())
            .with_site(SiteSpec::transient("comm.send", 0.10))
            .with_site(SiteSpec::transient("comm.recv", 0.10))
            .with_site(SiteSpec::transient(RUNNER_FAULT_SITE, 0.12))
            .build();
        let run = {
            let _guard = faults::install(Arc::clone(&injector));
            bed.run_combined_coscheduled(&backend, 4)
        };
        let _ = round;
        runs.push((injector.trace(), injector.site_stats(), run.insitu_retries));
    }
    let (trace_a, stats_a, retries_a) = &runs[0];
    let (trace_b, stats_b, retries_b) = &runs[1];
    assert_eq!(trace_a, trace_b, "same seed must replay the same faults");
    assert_eq!(stats_a, stats_b, "same seed must hit sites identically");
    assert_eq!(retries_a, retries_b, "same seed must cost the same retries");
    assert!(!trace_a.is_empty(), "the deterministic plan must fire");
}

/// Listener chaos: a crash mid-run plus a journal-backed restart never
/// double-submits and never loses a file.
#[test]
fn listener_crash_restart_is_exactly_once() {
    let dir = std::env::temp_dir().join(format!("hacc_chaos_listener_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("listener.journal");
    let submissions: Arc<Mutex<Vec<PathBuf>>> = Arc::new(Mutex::new(Vec::new()));

    for i in 0..4 {
        std::fs::write(dir.join(format!("l2_step{i:04}.hcio")), b"data").unwrap();
    }

    // Run 1: transient submit faults plus a crash a few scans in.
    let plan = FaultPlan::new(chaos_seed())
        .with_site(SiteSpec::transient("listener.submit", 0.25))
        .with_site(SiteSpec::crash_at("listener.scan", 6))
        .build();
    let s2 = Arc::clone(&submissions);
    let listener = Listener::spawn(
        dir.clone(),
        ListenerConfig {
            poll_interval: Duration::from_millis(5),
            suffix: ".hcio".into(),
            journal: Some(journal.clone()),
            injector: Some(plan),
            ..Default::default()
        },
        move |p| s2.lock().push(p.to_path_buf()),
    );
    std::thread::sleep(Duration::from_millis(250));
    let report1 = listener.stop_report();
    assert!(report1.crashed, "the injected crash must fire");

    // More outputs appear while the listener is down.
    for i in 4..6 {
        std::fs::write(dir.join(format!("l2_step{i:04}.hcio")), b"data").unwrap();
    }

    // Run 2: restart from the journal, still under transient submit faults.
    let plan = FaultPlan::new(chaos_seed().wrapping_add(1))
        .with_site(SiteSpec::transient("listener.submit", 0.25))
        .build();
    let s3 = Arc::clone(&submissions);
    let listener = Listener::spawn(
        dir.clone(),
        ListenerConfig {
            poll_interval: Duration::from_millis(5),
            suffix: ".hcio".into(),
            journal: Some(journal),
            injector: Some(plan),
            ..Default::default()
        },
        move |p| s3.lock().push(p.to_path_buf()),
    );
    std::thread::sleep(Duration::from_millis(250));
    let report2 = listener.stop_report();
    assert!(!report2.crashed);

    // Across both incarnations: all six files, each exactly once.
    let subs = submissions.lock();
    let unique: BTreeSet<_> = subs.iter().collect();
    assert_eq!(unique.len(), 6, "every output file must be submitted");
    assert_eq!(subs.len(), 6, "no file may be submitted twice: {:?}", *subs);
    std::fs::remove_dir_all(&dir).ok();
}

/// Scheduler chaos: under heavy transient job faults every job still
/// terminates (completed or exhausted), retries stay bounded, and the same
/// seed reproduces the identical outcome list and fault trace.
#[test]
fn scheduler_chaos_terminates_and_replays() {
    let run_once = || {
        let injector = FaultPlan::new(chaos_seed())
            .with_site(SiteSpec::transient(SCHEDULER_FAULT_SITE, 0.3))
            .build();
        let mut sim = BatchSimulator::new(machine::titan(), QueuePolicy::titan());
        sim.inject_faults(Arc::clone(&injector), faults::BackoffPolicy::default());
        for i in 0..40 {
            sim.submit(JobRequest::new(
                format!("job{i}"),
                1 + (i * 7) % 64,
                30.0 + (i as f64) * 3.0,
                (i as f64) * 10.0,
            ));
        }
        let records = sim.run_to_completion();
        (records, sim.job_outcomes().to_vec(), injector.trace())
    };
    let (recs_a, outcomes_a, trace_a) = run_once();
    let (recs_b, outcomes_b, trace_b) = run_once();

    assert_eq!(outcomes_a.len(), 40, "every job must terminate");
    for o in &outcomes_a {
        assert!(o.attempts >= 1 && u64::from(o.attempts) <= 5);
        if o.state == JobState::Exhausted {
            assert_eq!(o.attempts, 5, "exhaustion only after max_attempts");
        }
    }
    assert!(
        trace_a.iter().any(|e| e.kind == FaultKind::Transient),
        "p = 0.3 over 40+ retirements must fire at least once"
    );
    assert_eq!(recs_a, recs_b, "same seed ⇒ same completion records");
    assert_eq!(outcomes_a, outcomes_b, "same seed ⇒ same outcomes");
    assert_eq!(trace_a, trace_b, "same seed ⇒ same fault trace");
}

/// Artifact-cache chaos: with the same seed, the co-scheduled workflow must
/// produce byte-identical catalogs with the cache off, with a cold cache,
/// with a warm cache whose reads and verifications are being poisoned, and
/// with a cache whose entries were all evicted. The cache may only ever turn
/// work into a verified skip or a recompute — never into a different answer.
#[test]
fn cache_on_off_poisoned_and_evicted_catalogs_agree() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let backend = Threaded::new(4);

    // Cache off under the headline chaos plan.
    let bed_off = TestBed::create(tiny_cfg("cache_off"), &backend);
    let run_off = {
        let _guard = faults::install(chaos_plan(chaos_seed()).build());
        bed_off.run_combined_coscheduled(&backend, 4)
    };

    // Cache on, cold, same seed: every artifact is a miss, same catalog.
    let mut cfg = tiny_cfg("cache_on");
    let cache_dir = cfg.workdir.join("artifact_cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    cfg.cache = Some(Arc::new(ArtifactCache::open(&cache_dir, None).unwrap()));
    let mut bed_on = TestBed::create(cfg, &backend);
    let cold = {
        let _guard = faults::install(chaos_plan(chaos_seed()).build());
        bed_on.run_combined_coscheduled(&backend, 4)
    };
    assert_same_centers(&run_off.centers, &cold.centers);
    assert_eq!(cold.cache_hits, 0, "a cold cache cannot hit");
    assert!(cold.cache_misses > 0, "every emitted artifact must miss");

    // Warm re-run with hostile cache sites layered on the chaos plan:
    // transient read errors and forced verification failures poison entries,
    // which must degrade to recompute — never to a wrong catalog.
    let warm = {
        let plan = chaos_plan(chaos_seed())
            .with_site(SiteSpec::transient("cache.read", 0.5))
            .with_site(SiteSpec::transient("cache.verify", 0.5));
        let _guard = faults::install(plan.build());
        bed_on.run_combined_coscheduled(&backend, 4)
    };
    assert_same_centers(&run_off.centers, &warm.centers);
    assert!(
        warm.cache_hits + warm.cache_misses > 0,
        "the warm run must consult the cache"
    );

    // Evict everything: a byte-starved handle over the same directory keeps
    // only the freshly inserted pad, so the next run finds nothing and must
    // recompute it all — again without changing the catalog.
    {
        let starved = ArtifactCache::open(&cache_dir, Some(1)).unwrap();
        let pad = CacheKey::compose(
            "pad",
            digest_bytes(b"pad"),
            FingerprintBuilder::new().finish(),
        );
        starved.insert(pad, b"x").unwrap();
        assert!(
            starved.stats().evictions > 0,
            "the 1-byte budget must evict the warm entries"
        );
    }
    bed_on.cfg.cache = Some(Arc::new(ArtifactCache::open(&cache_dir, None).unwrap()));
    let evicted = {
        let _guard = faults::install(chaos_plan(chaos_seed()).build());
        bed_on.run_combined_coscheduled(&backend, 4)
    };
    assert_same_centers(&run_off.centers, &evicted.centers);
    assert_eq!(evicted.cache_hits, 0, "evicted entries must not hit");
    assert!(evicted.cache_misses > 0, "eviction must force recomputes");
}

/// Cache crash recovery: a crash mid-append tears the last index record.
/// On restart the index heals by dropping the torn tail — the damaged entry
/// can never false-hit, the intact one still gates its file out of the
/// listener, and the healed log accepts new appends.
#[test]
fn torn_cache_index_heals_without_false_hits() {
    let dir = std::env::temp_dir().join(format!("hacc_chaos_cachetorn_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache_dir = dir.join("cache");
    let fp = FingerprintBuilder::new().push_str("torn-test").finish();
    let key_for = |bytes: &[u8]| CacheKey::compose("l2_centers", digest_bytes(bytes), fp);

    {
        let cache = ArtifactCache::open(&cache_dir, None).unwrap();
        cache.insert(key_for(b"contents-a"), b"memo-a").unwrap();
        cache.insert(key_for(b"contents-b"), b"memo-b").unwrap();
    }
    // Kill the writer mid-append of the second record: shear bytes off the
    // index tail, exactly what a crash between write and sync leaves behind.
    let index_path = cache_dir.join("index");
    let bytes = std::fs::read(&index_path).unwrap();
    std::fs::write(&index_path, &bytes[..bytes.len() - 3]).unwrap();

    let cache = Arc::new(ArtifactCache::open(&cache_dir, None).unwrap());
    assert!(
        cache.contains_verified(key_for(b"contents-a")),
        "the intact record must survive healing"
    );
    assert!(
        !cache.contains_verified(key_for(b"contents-b")),
        "the torn record must never produce a hit"
    );

    // The healed cache gates a journaled listener: the surviving artifact is
    // skipped, the torn one is resubmitted for recompute.
    for (name, contents) in [
        ("l2_step0000.hcio", "contents-a"),
        ("l2_step0001.hcio", "contents-b"),
    ] {
        std::fs::write(dir.join(name), contents).unwrap();
    }
    let submissions: Arc<Mutex<Vec<PathBuf>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = Arc::clone(&submissions);
    let gate_cache = Arc::clone(&cache);
    let listener = Listener::spawn(
        dir.clone(),
        ListenerConfig {
            poll_interval: Duration::from_millis(5),
            suffix: ".hcio".into(),
            journal: Some(dir.join("listener.journal")),
            cache_gate: Some(CacheGate::new(move |p| {
                let Ok(b) = std::fs::read(p) else {
                    return false;
                };
                gate_cache.contains_verified(CacheKey::compose("l2_centers", digest_bytes(&b), fp))
            })),
            ..Default::default()
        },
        move |p| s2.lock().push(p.to_path_buf()),
    );
    std::thread::sleep(Duration::from_millis(250));
    let report = listener.stop_report();
    let subs = submissions.lock();
    assert_eq!(subs.len(), 1, "only the torn entry's file is recomputed");
    assert!(subs[0].ends_with("l2_step0001.hcio"));
    assert_eq!(report.cache_skipped.len(), 1);
    assert!(report.cache_skipped[0].ends_with("l2_step0000.hcio"));

    // The healed log keeps appending: re-inserting the recomputed artifact
    // persists across another reopen.
    cache.insert(key_for(b"contents-b"), b"memo-b").unwrap();
    drop(subs);
    let reopened = ArtifactCache::open(&cache_dir, None).unwrap();
    assert!(reopened.contains_verified(key_for(b"contents-a")));
    assert!(reopened.contains_verified(key_for(b"contents-b")));
    std::fs::remove_dir_all(&dir).ok();
}

/// Comm chaos: stalls at the receive site surface as timeouts, never hangs.
#[test]
fn comm_stalls_surface_as_timeouts_not_hangs() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let injector = FaultPlan::new(chaos_seed())
        .with_site(SiteSpec::stall("comm.recv", 1.0, Duration::from_millis(40)))
        .build();
    let _guard = faults::install(Arc::clone(&injector));
    let world = comm::World::new(3);
    let out = world.run(|c| match c.rank() {
        0 => {
            // Rank 2 never sends; the stall-injected receive path must still
            // respect the deadline instead of hanging.
            let r = c.recv_timeout::<u64>(2, 1, Duration::from_millis(120));
            assert!(r.is_err(), "no message can exist: {r:?}");
            // The healthy peer's message still gets through the stalls.
            c.recv_timeout::<u64>(1, 1, Duration::from_secs(10))
                .unwrap()
        }
        1 => {
            c.send(0, 1, 99u64);
            0
        }
        _ => 0,
    });
    assert_eq!(out[0], 99);
    assert!(injector.fault_count() > 0, "the stalls must actually fire");
}
