//! Armed-tracing integration test: the co-scheduled workflow plus the batch
//! facility model run under injected faults with the telemetry recorder in
//! logical-clock mode, and the exported Chrome trace must
//!
//! 1. parse as trace-event JSON,
//! 2. contain spans from all seven instrumented layers
//!    (`dpp`, `comm`, `simhpc`, `runner`, `listener`, `faults`, `cache`), and
//! 3. be **byte-identical** across two runs with the same `CHAOS_SEED`
//!    (the logical clock erases wall-time, and the export orders spans
//!    canonically, so any nondeterminism in the instrumentation shows up
//!    as a diff here).
//!
//! Only compiled with `--features recording`; the plan keeps faults to
//! discrete-event sites (comm, runner, scheduler) whose hit counts replay
//! exactly — the poll-driven `listener.*` sites stay fault-free.
#![cfg(feature = "recording")]

use cache::ArtifactCache;
use dpp::Threaded;
use faults::{FaultPlan, SiteSpec};
use hacc_core::runner::{RunnerConfig, TestBed, RUNNER_FAULT_SITE};
use nbody::SimConfig;
use parking_lot::Mutex;
use simhpc::{machine, BatchSimulator, JobRequest, QueuePolicy, SCHEDULER_FAULT_SITE};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Seed for every plan in this file; override with `CHAOS_SEED=<n>`.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Tests that install process-global state (the fault injector and the
/// telemetry recorder) must not overlap.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn tiny_cfg(name: &str) -> RunnerConfig {
    RunnerConfig {
        sim: SimConfig {
            np: 16,
            ng: 16,
            nsteps: 30,
            seed: 4242,
            ..SimConfig::default()
        },
        nranks: 4,
        post_ranks: 2,
        linking_length: 0.28,
        threshold: 60,
        min_size: 12,
        workdir: std::env::temp_dir().join(format!("hacc_trace_{name}_{}", std::process::id())),
        ..Default::default()
    }
}

/// One armed round: co-scheduled workflow under global comm/runner faults,
/// then the batch facility model under scheduler faults, all on a single
/// logical-clock recorder. Returns the exported Chrome JSON.
fn traced_round(bed: &TestBed, backend: &Threaded) -> String {
    let recorder = telemetry::install(Arc::new(telemetry::Recorder::new(
        telemetry::Clock::Logical,
    )));

    // Global plan covering the discrete-event sites the workflow consults
    // internally (same shape as chaos.rs's determinism test).
    let injector = FaultPlan::new(chaos_seed())
        .with_site(SiteSpec::transient("comm.send", 0.10))
        .with_site(SiteSpec::transient("comm.recv", 0.10))
        .with_site(SiteSpec::transient(RUNNER_FAULT_SITE, 0.12))
        .build();
    {
        let _faults = faults::install(Arc::clone(&injector));
        let run = bed.run_combined_coscheduled(backend, 4);
        assert!(!run.centers.is_empty(), "the workload must do real work");
    }

    // The batch-facility model on the same recorder, with an explicit
    // injector at the scheduler site: covers the `simhpc` layer.
    let sched = FaultPlan::new(chaos_seed())
        .with_site(SiteSpec::transient(SCHEDULER_FAULT_SITE, 0.3))
        .build();
    let mut sim = BatchSimulator::new(machine::titan(), QueuePolicy::titan());
    sim.inject_faults(sched, faults::BackoffPolicy::default());
    for i in 0..40usize {
        sim.submit(JobRequest::new(
            format!("job{i}"),
            1 + (i * 7) % 64,
            30.0 + i as f64 * 3.0,
            i as f64 * 10.0,
        ));
    }
    let _ = sim.run_to_completion();

    recorder.finish().chrome_json()
}

/// A cold artifact cache in a wiped directory: every traced round sees the
/// identical hit/miss sequence, so the cache spans replay byte-for-byte.
fn fresh_cache(dir: &std::path::Path) -> Arc<ArtifactCache> {
    let _ = std::fs::remove_dir_all(dir);
    Arc::new(ArtifactCache::open(dir, None).expect("open trace cache"))
}

#[test]
fn armed_chaos_run_exports_identical_seven_layer_traces() {
    let _serial = GLOBAL_LOCK.lock();
    let backend = Threaded::new(4);
    let mut bed = TestBed::create(tiny_cfg("sevenlayer"), &backend);
    let cache_dir = bed.cfg.workdir.join("trace_cache");

    bed.cfg.cache = Some(fresh_cache(&cache_dir));
    let a = traced_round(&bed, &backend);
    bed.cfg.cache = Some(fresh_cache(&cache_dir));
    let b = traced_round(&bed, &backend);

    let v = telemetry::json::parse(&a).expect("exported trace must parse");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "an armed run must record events");
    let cats: BTreeSet<&str> = events
        .iter()
        .filter_map(|e| e.get("cat").and_then(|c| c.as_str()))
        .collect();
    for layer in [
        "cache", "comm", "dpp", "faults", "listener", "runner", "simhpc",
    ] {
        assert!(
            cats.contains(layer),
            "trace must carry `{layer}` spans, got {cats:?}"
        );
    }

    assert_eq!(
        a, b,
        "same CHAOS_SEED must export byte-identical logical traces"
    );
}
