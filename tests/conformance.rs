//! Tier-1 conformance suite: differential backend agreement, metamorphic
//! physics oracles, exhaustive crash-schedule exploration, golden-run
//! fixtures, and focused listener regressions.
//!
//! Scope knobs:
//!
//! * `CONFORMANCE_SEED=<n>` — seed for the oracle universes and the
//!   explorer's workflow inputs (default 1, so CI can sweep).
//! * `CONFORMANCE_EXHAUSTIVE=1` — crash at *every* recorded `(site, hit)`
//!   pair instead of the first hit per site (the nightly job's setting).
//! * `BLESS=1` (`just bless`) — regenerate the golden fixtures under
//!   `tests/goldens/` instead of comparing against them.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use conformance::explorer::{ExplorerConfig, EXPECTED_SITES};
use conformance::{golden, oracles};
use hacc_core::experiments;
use hacc_core::{format_table4, Listener, ListenerConfig, TitanFrame};
use parking_lot::Mutex;

/// Tests that install a process-global fault injector, or that reach
/// fault-instrumented code (listener, cache, comm), must not overlap with
/// each other: an armed crash schedule in one test would fire inside
/// another.
static GLOBAL_INJECTOR_LOCK: Mutex<()> = Mutex::new(());

fn conf_seed() -> u64 {
    std::env::var("CONFORMANCE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn exhaustive_requested() -> bool {
    std::env::var("CONFORMANCE_EXHAUSTIVE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("conformance-suite")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn check_golden(name: &str, actual: &str) {
    match golden::compare_or_bless(&goldens_dir().join(name), actual) {
        Ok(_) => {}
        Err(msg) => panic!("{msg}"),
    }
}

// ---------------------------------------------------------------------------
// Differential backends
// ---------------------------------------------------------------------------

/// Every dpp op, every backend, every adversarial corpus case: byte
/// agreement with the Serial reference under the documented total-order
/// semantics. Non-finite inputs are in the corpus, so this is where
/// NaN-ordering or chunk-merge regressions surface first.
#[test]
fn dpp_differential_backends_agree() {
    let report = conformance::assert_dpp_conformance();
    // The corpus is not supposed to silently shrink.
    assert!(
        report.checks > 1_000,
        "differential corpus collapsed to {} checks",
        report.checks
    );
    assert!(
        report.backends.len() >= 5,
        "expected threaded/pool-shared/static roster, got {:?}",
        report.backends
    );
}

/// Every kernel rewritten for the SoA/column layout (CIC deposit, FOF,
/// MBP, radix, histogram) against its retained row-layout reference,
/// bit-for-bit, on every backend, over the adversarial particle/coordinate
/// corpus — NaN of either sign, ±inf, signed zeros, denormals, and
/// grain-boundary lengths included.
#[test]
fn layout_rewrites_agree_with_row_references() {
    let report = conformance::assert_layout_conformance();
    for kernel in conformance::REQUIRED_KERNELS {
        let checks = report.checks_by_op.get(kernel).copied().unwrap_or(0);
        assert!(
            checks > 0,
            "layout differential ran zero checks for kernel `{kernel}`"
        );
    }
    assert!(
        report.checks > 400,
        "layout corpus collapsed to {} checks",
        report.checks
    );
    assert!(
        report.backends.len() >= 5,
        "expected the full backend roster, got {:?}",
        report.backends
    );
}

/// The in-situ visualization battery: every backend renders byte-identical
/// frames over the adversarial corpus, and the permutation / projected-mass /
/// LOD-monotonicity / axis-relabel metamorphic oracles all hold.
#[test]
fn render_battery_backends_and_oracles_agree() {
    let report = conformance::assert_render_conformance();
    for oracle in conformance::REQUIRED_RENDER_ORACLES {
        let checks = report.checks_by_op.get(oracle).copied().unwrap_or(0);
        assert!(checks > 0, "render battery ran zero checks for `{oracle}`");
    }
    assert!(
        report.checks > 400,
        "render corpus collapsed to {} checks",
        report.checks
    );
    assert!(
        report.backends.len() >= 5,
        "expected the full backend roster, got {:?}",
        report.backends
    );
}

// ---------------------------------------------------------------------------
// Metamorphic physics oracles
// ---------------------------------------------------------------------------

/// FOF invariance (permutation / periodic translation / rank splits),
/// MBP brute ≡ A*, FFT Parseval + impulse identities, SO-mass monotonicity.
#[test]
fn physics_oracles_hold() {
    // Rank-split invariance runs a comm World (fault-instrumented sites).
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let failures = oracles::run_all(conf_seed());
    assert!(
        failures.is_empty(),
        "{} oracle(s) failed:\n{}",
        failures.len(),
        failures.join("\n---\n")
    );
}

// ---------------------------------------------------------------------------
// Exhaustive crash-schedule exploration
// ---------------------------------------------------------------------------

/// Record-only pass enumerates every fault site the mini-workflow reaches;
/// the sweep then crashes each one and requires a byte-identical recovered
/// catalog with exactly-once analysis. Coverage is asserted against what was
/// *reached*, not a hand-maintained list — plus [`EXPECTED_SITES`] as a
/// floor so a site silently vanishing from the workflow also fails.
#[test]
fn crash_schedules_recover_exactly_once() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let mut cfg = ExplorerConfig::new(scratch("explorer"));
    cfg.seed = conf_seed();
    cfg.exhaustive = exhaustive_requested();
    let report = conformance::explore(&cfg);
    report.assert_exhaustive();
    let expected_min = if cfg.exhaustive {
        // 7 deterministic sites × 3 hits each is the floor; scan adds more.
        EXPECTED_SITES.len() - 1 + 3
    } else {
        EXPECTED_SITES.len()
    };
    assert!(
        report.schedules.len() >= expected_min,
        "only {} schedules explored (expected at least {expected_min})",
        report.schedules.len()
    );
}

/// The render half of the crash story: a record pass enumerates every
/// `render.*` site the co-scheduled workflow reaches, then a sweep crashes
/// each `(site, hit)` — every schedule must lose exactly the crashed frame,
/// recover a byte-identical catalog on a warm re-run, and leave a steady
/// re-run with zero frames to recompute.
#[test]
fn render_crash_schedules_recover_every_frame() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let mut cfg = conformance::RenderExplorerConfig::new(scratch("render-explorer"));
    cfg.seed = conf_seed();
    if exhaustive_requested() {
        cfg.nsteps = 12;
    }
    let report = conformance::explore_render(&cfg);
    report.assert_exhaustive();
    // One frame per step, one schedule per frame: 100% of reached hits.
    assert_eq!(report.reference.len(), cfg.nsteps);
    assert_eq!(report.schedules.len(), cfg.nsteps);
}

// ---------------------------------------------------------------------------
// Listener regressions under crash-like conditions
// ---------------------------------------------------------------------------

/// Regression: orphan `.tmp` files — both pre-existing (stranded by an
/// earlier crash between staging and publish) and appearing mid-run — are
/// never submitted, while properly published files are.
#[test]
fn listener_never_submits_orphan_tmp() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let dir = scratch("tmp-exclusion");
    // Stranded by a "crashed emitter" before the listener ever starts.
    std::fs::write(dir.join("l2_0.tmp"), b"half-written junk").unwrap();
    let submissions: Arc<Mutex<Vec<PathBuf>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = Arc::clone(&submissions);
    let cfg = ListenerConfig {
        poll_interval: Duration::from_millis(5),
        prefix: "l2_".to_string(),
        ..ListenerConfig::default()
    };
    let listener = Listener::spawn_with(dir.clone(), cfg, move |p| {
        s2.lock().push(p.to_path_buf());
        Ok(())
    });
    // A properly published file and a second orphan appearing mid-run.
    std::fs::write(dir.join("l2_1"), b"published payload").unwrap();
    std::fs::write(dir.join("l2_2.tmp"), b"still being staged").unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while listener.handled() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = listener.stop_report();
    let subs = submissions.lock();
    assert_eq!(subs.as_slice(), &[dir.join("l2_1")], "wrong submission set");
    assert_eq!(report.submitted, subs.as_slice());
    assert!(!report.crashed);
    // The orphans are ignored, not deleted: cleanup is the emitter's job.
    assert!(dir.join("l2_0.tmp").exists());
    assert!(dir.join("l2_2.tmp").exists());
}

/// Regression: the quiescence gate holds submission of a file that is
/// growing under its final name until its size is stable — the job must see
/// the complete bytes, in one submission, with zero retries.
#[test]
fn quiescence_gate_defers_slow_writers() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let dir = scratch("quiescence");
    let seen: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = Arc::clone(&seen);
    let cfg = ListenerConfig {
        poll_interval: Duration::from_millis(10),
        prefix: "l2_".to_string(),
        ..ListenerConfig::default()
    };
    let listener = Listener::spawn_with(dir.clone(), cfg, move |p| {
        s2.lock()
            .push(std::fs::read(p).expect("read submitted file"));
        Ok(())
    });
    // Stream the file out under its final name across many poll intervals.
    // The 2ms chunk cadence stays well under the 10ms poll interval, so the
    // size never looks stable until the write is complete.
    let full: Vec<u8> = (0..4096u32).flat_map(|i| i.to_le_bytes()).collect();
    let path = dir.join("l2_slow");
    {
        use std::io::Write as _;
        // No fsync between chunks: a same-host reader sees page-cache writes
        // immediately, and fsync latency would stall the writer past a poll
        // interval, making a partial file look quiescent.
        let mut f = std::fs::File::create(&path).unwrap();
        for chunk in full.chunks(full.len() / 30 + 1) {
            f.write_all(chunk).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while listener.handled() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = listener.stop_report();
    let seen = seen.lock();
    assert_eq!(seen.len(), 1, "expected exactly one submission");
    assert_eq!(seen[0], full, "job saw torn bytes past the quiescence gate");
    assert_eq!(report.submit_retries, 0);
    assert_eq!(report.submitted, vec![path]);
}

// ---------------------------------------------------------------------------
// Golden-run fixtures
// ---------------------------------------------------------------------------

/// Table 1 (strong-scaling model) golden. `just bless` regenerates.
#[test]
fn golden_table1_strong_scaling() {
    check_golden(
        "table1.txt",
        &experiments::format_table1(&experiments::table1()),
    );
}

/// Table 3 (workflow wall-clock costs) golden, fixed seed 1.
#[test]
fn golden_table3_workflow_costs() {
    let costs = experiments::table3_4(&TitanFrame::default(), 1);
    check_golden("table3.txt", &experiments::format_table3(&costs));
}

/// Table 4 (cost-model breakdown) golden, same fixed-seed costs as Table 3.
#[test]
fn golden_table4_cost_breakdown() {
    let costs = experiments::table3_4(&TitanFrame::default(), 1);
    check_golden("table4.txt", &format_table4(&costs));
}

/// The rendered frame stream is a golden too: per-frame content digests of
/// the fault-free co-scheduled reference run at seed 1. Any change to the
/// deposit, projection, tone map, or HCIM container shows up as a
/// line-level digest diff (`just bless` re-blesses deliberate changes).
#[test]
fn golden_render_frame_digests() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let mut cfg = conformance::RenderExplorerConfig::new(scratch("render-golden"));
    cfg.seed = 1;
    let catalog = conformance::render_reference_catalog(&cfg);
    check_golden(
        "render_frames_seed1.txt",
        &conformance::catalog_digest_lines(&catalog),
    );
}

/// The explorer's reference catalog is itself a golden: the mini-workflow's
/// byte output for seed 1 must not drift across refactors (hex-dumped so the
/// fixture is a reviewable text file).
#[test]
fn golden_explorer_reference_catalog() {
    let _serial = GLOBAL_INJECTOR_LOCK.lock();
    let mut cfg = ExplorerConfig::new(scratch("golden-catalog"));
    cfg.seed = 1;
    let catalog = conformance::explorer::reference_catalog(&cfg);
    let hex: String = catalog
        .chunks(32)
        .map(|row| row.iter().map(|b| format!("{b:02x}")).collect::<String>() + "\n")
        .collect();
    check_golden("explorer_catalog_seed1.hex", &hex);
}
