//! The paper's §4.2 comparison, twice:
//!
//! 1. **Measured** — actually execute the in-situ, off-line, and combined
//!    workflows (real files, real redistribution, real listener) on a
//!    downscaled run and report local wall seconds per phase.
//! 2. **Projected** — the Titan-frame model regenerating Tables 3 and 4 at
//!    the paper's 1024³/32-node scale.
//!
//! ```text
//! cargo run --release --example workflow_compare
//! cargo run --release --features recording --example workflow_compare -- --trace out.json
//! ```
//!
//! With `--trace <file>` the run exports a Chrome trace-event JSON
//! (Perfetto-loadable); the telemetry summary table prints either way.

use dpp::Threaded;
use hacc_core::experiments::{format_table3, table3_4};
use hacc_core::{format_table4, TestBed, TitanFrame};
use scenarios::Scenario;

fn main() {
    let trace_out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--trace")
            .and_then(|i| args.get(i + 1).cloned())
    };
    if !telemetry::COMPILED_WITH_RECORDING {
        eprintln!(
            "note: built without `--features recording`; the telemetry summary will be empty"
        );
    }
    let guard = telemetry::install(std::sync::Arc::new(telemetry::Recorder::new(
        telemetry::Clock::Wall,
    )));
    let backend = Threaded::with_available_parallelism();

    // ---------------- measured (real execution) ----------------
    // The setup is named by the scenario grammar: the medium load regime is
    // the historical workflow_compare configuration (32³ particles, 30
    // steps, 8 ranks). Swap the ID to resize the whole experiment.
    let scenario: Scenario = "titan/medium/halos/co-scheduled/none/titan-policy"
        .parse()
        .expect("valid scenario id");
    let mut cfg = scenario.load.runner_config(77);
    cfg.workdir = std::env::temp_dir().join("hacc_workflow_compare");
    println!("== measured: real execution of the three workflows ==");
    println!("scenario: {scenario}");
    let bed = TestBed::create(cfg, &backend);
    println!(
        "simulation: {:.2} s ({} particles)",
        bed.sim_seconds,
        bed.particles.len()
    );

    let in_situ = bed.run_in_situ_only(&backend);
    let off_line = bed.run_offline_only(&backend);
    let combined = bed.run_combined_simple(&backend);
    let intransit = bed.run_combined_intransit(&backend);
    let cosched = bed.run_combined_coscheduled(&backend, 8);

    println!(
        "{:<26} {:>8} {:>8} {:>12} {:>10} {:>8} {:>8}",
        "strategy", "read", "write", "redistribute", "analysis", "halos", "overlap"
    );
    for run in [&in_situ, &off_line, &combined, &intransit, &cosched] {
        println!(
            "{:<26} {:>8.3} {:>8.3} {:>12.3} {:>10.3} {:>8} {:>8}",
            run.strategy,
            run.phases.read,
            run.phases.write,
            run.phases.redistribute,
            run.phases.analysis,
            run.centers.len(),
            run.overlapped_jobs
        );
    }
    // Measured dispatch overhead per strategy: the pool counters the cost
    // model's analysis phase is calibrated against.
    println!(
        "{:<26} {:>12} {:>16}",
        "strategy", "dispatches", "dispatch secs"
    );
    for run in [&in_situ, &off_line, &combined, &intransit, &cosched] {
        println!(
            "{:<26} {:>12} {:>16.4}",
            run.strategy, run.pool_dispatches, run.dispatch_overhead_seconds
        );
    }
    // Every strategy must agree on the science output.
    hacc_core::runner::assert_same_centers(&in_situ.centers, &off_line.centers);
    hacc_core::runner::assert_same_centers(&in_situ.centers, &combined.centers);
    hacc_core::runner::assert_same_centers(&in_situ.centers, &intransit.centers);
    println!("all strategies produced identical Level 3 center sets ✓");

    // Per-rank imbalance of the in-situ analysis (the paper's core story).
    let max_c = in_situ
        .rank_timings
        .iter()
        .map(|t| t.center_seconds)
        .fold(0.0f64, f64::max);
    let min_c = in_situ
        .rank_timings
        .iter()
        .map(|t| t.center_seconds)
        .fold(f64::INFINITY, f64::min);
    println!(
        "center-finding imbalance across {} ranks: slowest {:.3} s / fastest {:.3} s = {:.1}x",
        in_situ.rank_timings.len(),
        max_c,
        min_c,
        max_c / min_c.max(1e-9)
    );

    // ---------------- projected (Titan frame) ----------------
    println!("\n== projected: Tables 3 & 4 at the paper's 1024^3 / 32-node scale ==");
    let frame = TitanFrame::default();
    let costs = table3_4(&frame, 7);
    print!("{}", format_table3(&costs));
    println!();
    print!("{}", format_table4(&costs));

    // Co-scheduling's wall-clock benefit over a full campaign (§4.2): same
    // core-hours, earlier results.
    let spec = hacc_core::RunSpec::small_run(7);
    let after = frame.campaign_mean_result_time(&spec, 10, false);
    let overlapped = frame.campaign_mean_result_time(&spec, 10, true);
    println!(
        "\n10-snapshot campaign, mean time until a snapshot's analysis is ready:\n\
         \x20 analyze after the run: {:.0} s   co-scheduled: {:.0} s ({:.0}% sooner, same core-hours)",
        after,
        overlapped,
        (1.0 - overlapped / after) * 100.0
    );

    // ---------------- telemetry ----------------
    let trace = guard.finish();
    println!("\n== telemetry ==");
    print!("{}", trace.summary_table());
    if let Some(path) = trace_out {
        std::fs::write(&path, trace.chrome_json()).expect("write trace");
        println!("wrote trace {path} (load in Perfetto / chrome://tracing)");
    }
}
