//! A small grammar-driven sweep: the five workflow strategies under two
//! queue disciplines — the paper's Titan policy against EASY backfilling —
//! with transient faults on, 10 seeds each, means ± 95% CIs.
//!
//! ```text
//! cargo run --release --example sweep_demo
//! ```
//!
//! The full harness (smoke and full grammars, JSON/CSV artifacts) lives in
//! the `sweep` binary: `cargo run --release -p scenarios --bin sweep`.

use scenarios::{
    export, run_sweep, AxisSet, FaultPlanKind, Grammar, LoadRegime, MachineKind, SchedulerKind,
    SweepConfig, WorkloadKind,
};

fn main() {
    let grammar = Grammar::new().with_block(
        AxisSet::full()
            .machines([MachineKind::Titan])
            .loads([LoadRegime::Light])
            .workloads([WorkloadKind::Halos])
            .faults([FaultPlanKind::Transient])
            .schedulers([SchedulerKind::TitanPolicy, SchedulerKind::Easy]),
    );
    let config = SweepConfig {
        base_seed: 1,
        n_seeds: 10,
        grammar,
    };
    let result = run_sweep(&config);
    print!("{}", export::summary_table(&result));

    // The paper's point, statistically: co-scheduling reaches results
    // sooner than queue-after-the-run, and the Titan policy's two-small-jobs
    // cap is what makes analysis jobs crawl.
    let pick = |id: &str| {
        result
            .scenarios
            .iter()
            .find(|s| s.id == id)
            .and_then(|s| s.summary("mean_result_seconds"))
            .expect("swept scenario")
            .mean
    };
    let cosched = pick("titan/light/halos/co-scheduled/transient/easy");
    let simple = pick("titan/light/halos/simple/transient/easy");
    let titan_q = pick("titan/light/halos/simple/transient/titan-policy");
    println!();
    println!(
        "mean time-to-science under EASY: co-scheduled {cosched:.0} s vs simple {simple:.0} s \
         ({:.0}% sooner)",
        (1.0 - cosched / simple) * 100.0
    );
    println!(
        "the same simple workflow under the Titan policy waits {titan_q:.0} s \
         ({:.1}x the EASY queue)",
        titan_q / simple
    );
}
