//! Multi-campaign service demo: one long-lived [`WorkflowService`] drives
//! many concurrent campaigns over a shared thread pool, a sharded
//! work-stealing listener, one artifact cache, and one simulated batch
//! queue. Every campaign's recovered catalog must be byte-identical to its
//! solo (serial, single-campaign) run, admission saturation must surface as
//! explicit backpressure rather than a panic or a silent drop, and the
//! assertions panic (nonzero exit) on any violation, so CI runs this
//! example as the service-mode check.
//!
//! ```text
//! cargo run --release --example service_demo
//! ```

use hacc_core::service::{
    reference_catalog, CampaignSpec, CampaignStatus, ServiceConfig, ServiceError, WorkflowService,
};
use std::time::Duration;

fn main() {
    let root = std::env::temp_dir().join("hacc_service_demo");
    let _ = std::fs::remove_dir_all(&root);

    // Ten campaigns through an eight-slot batch queue: the first eight are
    // admitted immediately, the last two must bounce with `Saturated` and
    // get in once completions free admission slots.
    let specs: Vec<CampaignSpec> = (0..10)
        .map(|k| CampaignSpec::new(format!("survey-{k:02}"), 4200 + k as u64, 2 + k % 3))
        .collect();

    let cfg = ServiceConfig {
        shards: 4,
        pool_workers: 4,
        max_pending_jobs: 8,
        poll_interval: Duration::from_millis(2),
        ..ServiceConfig::new(root)
    };
    let svc = WorkflowService::start(cfg).expect("start service");

    let mut ids = Vec::new();
    let mut deferred = Vec::new();
    for spec in &specs {
        match svc.submit_campaign(spec.clone()) {
            Ok(id) => {
                println!("admitted  {:>10}  as {id}", spec.name);
                ids.push((spec.clone(), id));
            }
            Err(ServiceError::Saturated { pending, limit }) => {
                println!(
                    "deferred  {:>10}  (queue saturated: {pending}/{limit})",
                    spec.name
                );
                deferred.push(spec.clone());
            }
            Err(other) => panic!("unexpected submission error: {other}"),
        }
    }
    assert!(
        !deferred.is_empty(),
        "ten campaigns through an eight-slot queue must saturate"
    );
    assert!(
        ids.len() >= 8,
        "expected at least eight concurrently admitted campaigns, got {}",
        ids.len()
    );

    // Backpressure is recoverable: wait for admitted campaigns to finish,
    // then resubmit the deferred ones until each gets a slot.
    svc.wait_all();
    for spec in deferred {
        loop {
            match svc.submit_campaign(spec.clone()) {
                Ok(id) => {
                    println!("admitted  {:>10}  as {id} (after drain)", spec.name);
                    ids.push((spec.clone(), id));
                    break;
                }
                Err(ServiceError::Saturated { .. }) => std::thread::sleep(Duration::from_millis(2)),
                Err(other) => panic!("unexpected resubmission error: {other}"),
            }
        }
    }
    svc.wait_all();
    let report = svc.shutdown();
    assert!(!report.crashed, "fault-free demo must not crash");

    println!(
        "\n{} campaigns over {} scans, {} cross-shard steals, {} batch jobs",
        report.campaigns.len(),
        report.scans,
        report.steals,
        report.job_records.len()
    );

    for (spec, id) in &ids {
        let rep = &report.campaigns[&id.0];
        assert_eq!(
            rep.status,
            CampaignStatus::Completed,
            "campaign {} did not complete",
            spec.name
        );
        let catalog = rep.catalog.as_deref().expect("completed ⇒ catalog");
        let solo = reference_catalog(spec);
        assert_eq!(
            catalog,
            &solo[..],
            "campaign {} drifted from its solo catalog",
            spec.name
        );
        for (file, count) in &rep.executions {
            assert_eq!(
                *count, 1,
                "campaign {} analyzed {file} {count} times",
                spec.name
            );
        }
        assert!(
            rep.pool.dispatches > 0,
            "campaign {} never dispatched through the shared pool",
            spec.name
        );
        println!(
            "  {id}  {:>10}  steps={} catalog={} B (byte-identical to solo run) pool dispatches={}",
            spec.name,
            spec.steps,
            catalog.len(),
            rep.pool.dispatches
        );
    }
    assert_eq!(report.campaigns.len(), specs.len());
    println!("\nservice demo OK: every campaign matches its solo run, saturation was backpressure");
}
