//! Q-Continuum-scale projections (paper §4.1): Table 1 data sizes, Table 2
//! per-node timing extremes, Figure 3 halo mass histogram with the
//! 300,000-particle split, Figure 4 per-node center-time distribution, and
//! the headline core-hour comparison.
//!
//! ```text
//! cargo run --release --example qcontinuum_scaled
//! ```

use hacc_core::experiments::{
    fig3, fig4, format_fig3, format_fig4, format_table1, format_table2, qcontinuum_report,
    subhalo_imbalance, table1, table2,
};
use hacc_core::{choose_split, plan_coschedule, TitanFrame};
use halo::massfn::{qcontinuum, MassFunction};
use rand::SeedableRng;

fn main() {
    let frame = TitanFrame::default();

    println!("{}", format_table1(&table1()));
    println!("{}", format_table2(&table2(&frame)));
    println!("{}", format_fig3(&fig3(40)));
    println!("{}", format_fig4(&fig4(&frame, 20150715)));
    println!("{}", qcontinuum_report(&frame));

    // §4.1: the Moonlight campaign as actually run — 128 file-level jobs.
    let campaign = hacc_core::experiments::moonlight_campaign(&frame, 20150715, 6.0);
    println!(
        "Moonlight campaign: {} single-node jobs; longest {:.1} h (paper 37.8), shortest {:.1} h \
         (paper 6.0), longest block {:.1} h (paper 10.6), total {:.0} node-hours (paper ~1770)\n",
        campaign.n_jobs,
        campaign.longest_hours,
        campaign.shortest_hours,
        campaign.longest_block_hours,
        campaign.node_hours
    );

    // §4.2: the subhalo task's load imbalance.
    let (max, min) = subhalo_imbalance(20150715);
    println!(
        "subhalo finding (32 nodes, parents > 5000 particles): slowest {:.0} s, fastest {:.0} s, imbalance {:.1}x",
        max,
        min,
        max / min
    );
    println!("  (paper: 8172 s vs 1457 s, >5x)\n");

    // The automated split of §4.1 applied to the Q Continuum population.
    let t_io = 600.0; // ~10 minutes to read a 20 TB snapshot
    let mf = MassFunction::q_continuum();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let tail = mf.sample_many_above(&mut rng, qcontinuum::OFFLOADED_HALOS as usize, 300_000.0);
    let decision = choose_split(t_io, &tail);
    println!(
        "autosplit: t_io = {:.0} s -> threshold {} particles; largest sampled halo {} -> {}",
        decision.t_io,
        decision.threshold,
        tail.iter().max().unwrap(),
        if decision.all_in_situ {
            "everything fits in situ"
        } else {
            "off-load required"
        }
    );
    let offloaded: Vec<u64> = tail
        .iter()
        .copied()
        .filter(|&n| n > decision.threshold)
        .collect();
    if let Some(plan) = plan_coschedule(&offloaded) {
        println!(
            "co-schedule plan: {} halos above the autosplit threshold -> {} ranks, \
             total {:.1} h, longest {:.1} h, imbalance {:.2}x",
            offloaded.len(),
            plan.ranks,
            plan.total_seconds / 3600.0,
            plan.longest_single / 3600.0,
            plan.imbalance()
        );
    }
}
