//! Co-scheduling end to end (paper §3.2), two ways:
//!
//! 1. **Live** — a real listener thread watches a directory while the
//!    simulation runs; each emitted Level 2 file triggers a real analysis
//!    job, overlapping the simulation.
//! 2. **Facility model** — the same job stream through the `simhpc` batch
//!    simulator under Titan's queue policy (two-small-jobs cap, capability
//!    priority) vs an analysis cluster's policy, showing why the paper
//!    needed a queue exemption on Titan but not on Rhea.
//!
//! ```text
//! cargo run --release --example coscheduling_demo
//! ```

use dpp::Threaded;
use hacc_core::{RunnerConfig, TestBed};
use nbody::SimConfig;
use simhpc::{machine, BatchSimulator, JobRequest, QueuePolicy};

fn main() {
    if !telemetry::COMPILED_WITH_RECORDING {
        eprintln!(
            "note: built without `--features recording`; the telemetry summary will be empty"
        );
    }
    let guard = telemetry::install(std::sync::Arc::new(telemetry::Recorder::new(
        telemetry::Clock::Wall,
    )));

    // ---------------- live listener ----------------
    let backend = Threaded::with_available_parallelism();
    let cfg = RunnerConfig {
        sim: SimConfig {
            np: 32,
            ng: 32,
            nsteps: 30,
            seed: 99,
            ..SimConfig::default()
        },
        nranks: 8,
        post_ranks: 2,
        threshold: 200,
        min_size: 40,
        workdir: std::env::temp_dir().join("hacc_cosched_demo"),
        ..Default::default()
    };
    println!("== live co-scheduling: simulation + listener + analysis jobs ==");
    let bed = TestBed::create(cfg, &backend);
    let run = bed.run_combined_coscheduled(&backend, 5);
    println!(
        "simulation wall time {:.2} s; {} analysis jobs started before the simulation ended",
        run.phases.sim, run.overlapped_jobs
    );
    println!("final merged catalog: {} halo centers\n", run.centers.len());

    // ---------------- facility queue model ----------------
    println!("== facility model: the same job stream under two queue policies ==");
    // A 10-snapshot run: the simulation holds 32 nodes for 10,000 s and
    // emits a Level 2 file every 250 s; each file needs a 4-node, 1500 s
    // analysis job — so jobs arrive faster than any one finishes ("pile-up
    // in the analysis stack", §3.2).
    let mk_jobs = || -> Vec<JobRequest> {
        let mut jobs = vec![JobRequest::new("simulation", 32, 10_000.0, 0.0)];
        for i in 0..10 {
            jobs.push(JobRequest::new(
                format!("analysis{i:02}"),
                4,
                1500.0,
                250.0 * (i as f64 + 1.0),
            ));
        }
        jobs
    };

    for (label, machine, mut policy) in [
        (
            "Titan (small-job cap = 2)",
            machine::titan(),
            QueuePolicy::titan(),
        ),
        (
            "analysis cluster (Rhea-like)",
            machine::rhea(),
            QueuePolicy::analysis_cluster(),
        ),
    ] {
        policy.base_wait = 0.0; // isolate the structural queue effects
        let mut m = machine;
        m.total_nodes = m.total_nodes.min(512);
        let mut sim = BatchSimulator::new(m, policy);
        for j in mk_jobs() {
            sim.submit(j);
        }
        let recs = sim.run_to_completion();
        let sim_end = recs
            .iter()
            .find(|r| r.name == "simulation")
            .unwrap()
            .end_time;
        let overlapped = recs
            .iter()
            .filter(|r| r.name.starts_with("analysis") && r.start_time < sim_end)
            .count();
        let last_end = recs.iter().map(|r| r.end_time).fold(0.0, f64::max);
        let mean_wait: f64 = recs
            .iter()
            .filter(|r| r.name.starts_with("analysis"))
            .map(|r| r.queue_wait())
            .sum::<f64>()
            / 10.0;
        println!(
            "{label:<32} {overlapped}/10 jobs overlapped the run; mean analysis queue wait {mean_wait:>7.0} s; campaign done at {last_end:>7.0} s"
        );
    }
    println!("\n(the Titan cap serializes the co-scheduled jobs in pairs — the paper's \"queue exemption\" problem;");
    println!(" the analysis cluster runs them as data arrives, which is the workflow the paper advocates)");

    println!("\n== telemetry ==");
    print!("{}", guard.finish().summary_table());
}
