//! A stand-in for the paper's Figure 2: visualize the final-step particle
//! distribution of a small run as a column-density projection — written as a
//! portable PGM image plus an ASCII rendering on stdout.
//!
//! ```text
//! cargo run --release --example density_render
//! ```

use dpp::Threaded;
use nbody::{cic_deposit, SimConfig, Simulation};

fn main() {
    let backend = Threaded::with_available_parallelism();
    let cfg = SimConfig {
        np: 64,
        ng: 64,
        nsteps: 40,
        seed: 314159,
        ..SimConfig::default()
    };
    let box_size = cfg.cosmology.box_size;
    println!("evolving {}^3 particles to z = 0...", cfg.np);
    let mut sim = Simulation::new(&backend, cfg);
    sim.run(&backend);

    // Project the density along z.
    let ng = 64usize;
    let delta = cic_deposit(&backend, sim.particles(), ng, box_size);
    let mut proj = vec![0.0f64; ng * ng];
    for x in 0..ng {
        for y in 0..ng {
            let mut s = 0.0;
            for z in 0..ng {
                s += 1.0 + delta.get(x, y, z);
            }
            proj[x * ng + y] = s;
        }
    }

    // Log-stretch for display.
    let max = proj.iter().cloned().fold(0.0, f64::max);
    let stretched: Vec<f64> = proj
        .iter()
        .map(|&v| (1.0 + v).ln() / (1.0 + max).ln())
        .collect();

    // PGM output.
    let path = std::env::temp_dir().join("hacc_density.pgm");
    let mut pgm = format!("P2\n{ng} {ng}\n255\n");
    for v in &stretched {
        pgm.push_str(&format!("{} ", (v * 255.0) as u8));
    }
    std::fs::write(&path, pgm).expect("write pgm");
    println!("wrote {} ({}x{} PGM)", path.display(), ng, ng);

    // ASCII rendering (coarse).
    let ramp: Vec<char> = " .:-=+*#%@".chars().collect();
    println!(
        "\ncolumn density at z = {:.2} (log stretch):",
        sim.redshift()
    );
    for x in (0..ng).step_by(2) {
        let mut line = String::new();
        for y in 0..ng {
            let v = (stretched[x * ng + y] * (ramp.len() - 1) as f64) as usize;
            line.push(ramp[v.min(ramp.len() - 1)]);
        }
        println!("{line}");
    }
    println!(
        "\ndensity rms grew to {:.1} (clustered filaments and knots = the halos the workflow analyzes)",
        sim.density_rms(&backend)
    );
}
