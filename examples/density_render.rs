//! The paper's in-situ visualization workload (a stand-in for Figure 2):
//! a [`cosmotools::DensityRenderTask`] registered with the
//! [`cosmotools::InSituAnalysisManager`] renders one column-density
//! projection frame per simulation step — LOD particle selection, SoA CIC
//! deposit, axis projection, log-stretch tone map — exactly the algorithm
//! the co-scheduled runner streams and the conformance battery certifies.
//!
//! The final frame lands as an HCIM container (digest printed), and the
//! whole stream is priced through [`hacc_core::RenderProfile`] on the
//! Titan interconnect, the render-phase cost line Tables 3/4 never show.
//!
//! ```text
//! cargo run --release --example density_render
//! ```

use cosmotools::{Config, DensityRenderTask, InSituAnalysisManager, Product};
use dpp::Threaded;
use hacc_core::{RenderProfile, TitanFrame};
use nbody::{SimConfig, Simulation};

fn main() {
    let backend = Threaded::with_available_parallelism();
    let cfg = SimConfig {
        np: 64,
        ng: 64,
        nsteps: 40,
        seed: 314159,
        ..SimConfig::default()
    };
    let box_size = cfg.cosmology.box_size;
    let nsteps = cfg.nsteps;

    // Configure the render task from a CosmoTools deck, the same section the
    // workflow runner reads.
    let deck = "\
[density-render]
enabled = true
ng = 64
axis = z
every = 1
";
    let config = Config::parse(deck).expect("deck parses");
    let mut manager = InSituAnalysisManager::new();
    manager.register(Box::new(DensityRenderTask::new()));
    manager.configure(&config).expect("configure render task");

    println!(
        "evolving {}^3 particles to z = 0, rendering every step...",
        cfg.np
    );
    let mut sim = Simulation::new(&backend, cfg);
    sim.run_with_hook(&backend, |step, s| {
        manager.execute_at(
            step,
            nsteps,
            s.redshift(),
            s.particles(),
            box_size,
            &backend,
        );
    });

    let products = manager.take_products();
    let frames: Vec<_> = products
        .iter()
        .filter_map(|p| match p {
            Product::Image { frame, .. } => Some(frame),
            _ => None,
        })
        .collect();
    assert_eq!(frames.len(), nsteps, "one frame per step");
    let last = frames.last().expect("at least one frame");

    // The final frame as an HCIM container — the exact bytes the runner
    // streams to the post-processing job.
    let path = std::env::temp_dir().join("hacc_density.hcim");
    let digest = cosmotools::write_image_file(&path, last).expect("write image");
    println!(
        "wrote {} ({}x{} HCIM, digest {digest})",
        path.display(),
        last.width,
        last.height
    );

    // ASCII rendering of the tone-mapped pixels (coarse).
    let ng = last.width as usize;
    let ramp: Vec<char> = " .:-=+*#%@".chars().collect();
    println!(
        "\ncolumn density at z = {:.2} (log stretch):",
        sim.redshift()
    );
    for a in (0..ng).step_by(2) {
        let mut line = String::new();
        for b in 0..ng {
            let v = last.pixels[a * ng + b] as usize * (ramp.len() - 1) / 255;
            line.push(ramp[v.min(ramp.len() - 1)]);
        }
        println!("{line}");
    }

    // The render-phase cost line: the frame stream priced as point-to-point
    // fetches over the Titan interconnect (bandwidth-bound, per the paper's
    // co-scheduling cost model).
    let measured: f64 = manager
        .records()
        .iter()
        .filter(|r| r.algorithm == "density-render")
        .map(|r| r.seconds)
        .sum();
    let profile = RenderProfile::every_step(ng, frames.len() as u64);
    let net = &TitanFrame::default().titan.net;
    println!(
        "\nrender phase: {} frames, {:.1} KiB streamed, {:.2} ms modeled stream time on Titan's interconnect, {:.0} ms measured render wall time",
        frames.len(),
        profile.total_bytes() as f64 / 1024.0,
        profile.stream_seconds(net) * 1e3,
        measured * 1e3
    );
    println!(
        "density rms grew to {:.1} (clustered filaments and knots = the halos the workflow analyzes)",
        sim.density_rms(&backend)
    );
}
