//! Distributed artifact store demo: a streamed campaign publishes its
//! Level-2 chunks into the sharded, replicated store; one store node is
//! then killed for good (directory erased, journals wiped), and a warm
//! re-run must recompute *nothing* and land a byte-identical catalog —
//! replication, not luck, keeps every artifact reachable. A second section
//! drives the store directly under Titan's interconnect model and shows
//! the remote-fetch cost of failing over after a node death. Assertions
//! panic (nonzero exit) on any violation, so CI runs this example as the
//! store-mode check.
//!
//! ```text
//! CHAOS_SEED=3 cargo run --release --example store_demo
//! ```

use cache::{
    digest_bytes, CacheKey, DistributedConfig, DistributedStore, FingerprintBuilder,
    RemoteFetchModel,
};
use hacc_core::service::{
    product_primary_node, reference_catalog, CampaignSpec, CampaignStatus, ServiceConfig,
    WorkflowService,
};
use simhpc::machine;
use std::time::Duration;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

const NODES: usize = 3;
const REPLICAS: usize = 2;

fn run_streamed(root: &std::path::Path, spec: &CampaignSpec) -> hacc_core::CampaignReport {
    let cfg = ServiceConfig {
        shards: 2,
        poll_interval: Duration::from_millis(2),
        store_nodes: NODES,
        store_replicas: REPLICAS,
        ..ServiceConfig::new(root)
    };
    let svc = WorkflowService::start(cfg).expect("start service");
    let id = svc.submit_campaign(spec.clone()).expect("submit campaign");
    svc.wait_all();
    let mut report = svc.shutdown();
    assert!(!report.crashed, "fault-free demo must not crash");
    report.campaigns.remove(&id.0).expect("campaign report")
}

fn main() {
    let seed = chaos_seed();
    let root = std::env::temp_dir().join(format!("hacc_store_demo_{seed}"));
    let _ = std::fs::remove_dir_all(&root);
    let spec = CampaignSpec::streamed("survey", 7000 + seed, 4);
    println!(
        "streamed campaign `{}` (seed {seed}): {} drops over a {NODES}-node / {REPLICAS}-replica store",
        spec.name, spec.steps
    );

    // Cold run: every drop streams chunk-by-chunk into the store and is
    // analyzed exactly once.
    let cold = run_streamed(&root, &spec);
    assert_eq!(cold.status, CampaignStatus::Completed);
    let cold_catalog = cold.catalog.clone().expect("completed ⇒ catalog");
    assert_eq!(
        cold_catalog,
        reference_catalog(&spec),
        "streamed catalog drifted from the whole-file solo run"
    );
    let cold_analyses: u64 = cold.executions.values().sum();
    println!(
        "cold run: catalog={} B (byte-identical to the whole-file path), analyses={cold_analyses}",
        cold_catalog.len()
    );

    // The node homing step 0's product dies for good: shard directory
    // erased, and the listener journals with it, so recovery cannot paper
    // over a durability hole — the store's replicas must answer.
    let victim = product_primary_node(&spec, 0, NODES);
    std::fs::remove_dir_all(root.join("cache").join(format!("node{victim}")))
        .expect("victim node directory exists");
    for k in 0..4 {
        let _ = std::fs::remove_file(root.join(format!("shard{k}.journal")));
    }
    println!("killed store node {victim} (directory erased, journals wiped)");

    // Warm re-run: zero recomputes, zero assembly misses, same bytes.
    let warm = run_streamed(&root, &spec);
    assert_eq!(warm.status, CampaignStatus::Completed);
    let warm_analyses: u64 = warm.executions.values().sum();
    assert_eq!(
        warm_analyses, 0,
        "warm re-run recomputed after one node death: {:?}",
        warm.executions
    );
    assert_eq!(warm.assembly_misses, 0, "a product had a single copy");
    assert_eq!(
        warm.catalog.as_deref(),
        Some(&cold_catalog[..]),
        "catalog bytes changed after a node death"
    );
    assert_eq!(
        warm.listener.cache_skipped.len(),
        spec.steps,
        "every drop must be satisfied by the store's gate"
    );
    println!(
        "warm run: recomputed nothing ({} drops gate-skipped), catalog byte-identical",
        warm.listener.cache_skipped.len()
    );

    // Direct store section: the same fail-over under Titan's interconnect
    // model, with the remote-fetch seconds it charges made visible.
    let titan = machine::titan();
    let store = DistributedStore::open(
        root.join("direct_store"),
        DistributedConfig {
            nodes: NODES,
            replicas: REPLICAS,
            fetch: RemoteFetchModel::new(titan.net.latency, titan.net.per_node_bw),
            ..DistributedConfig::default()
        },
    )
    .expect("open direct store");
    let payload = vec![0xA5u8; 1 << 20];
    let keys: Vec<CacheKey> = (0..8u64)
        .map(|i| {
            let mut b = FingerprintBuilder::new();
            b.push_str("store-demo").push_u64(seed).push_u64(i);
            let key = CacheKey::compose("demo", digest_bytes(&payload), b.finish());
            store.insert(key, &payload).expect("insert");
            key
        })
        .collect();
    store.kill_node(store.router().primary(keys[0]));
    for &key in &keys {
        assert!(
            store.lookup(key).is_some(),
            "an artifact became unreachable after one node death"
        );
    }
    let stats = store.stats();
    println!(
        "direct store after killing one node: {} local hits, {} remote hits, \
         {} remote bytes, {:.2} s of interconnect time charged ({}:{:.1e} B/s, {:.1}s latency)",
        stats.local_hits,
        stats.remote_hits,
        stats.remote_bytes,
        store.remote_seconds(),
        titan.name,
        titan.net.per_node_bw,
        titan.net.latency,
    );
    assert!(
        stats.remote_hits > 0,
        "fail-over reads must have gone remote"
    );
    assert!(
        store.remote_seconds() > 0.0,
        "remote fetches must cost time"
    );

    println!("\nstore demo OK: one node death cost remote fetches, never bytes");
}
