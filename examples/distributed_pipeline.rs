//! The fully rank-parallel pipeline, end to end, the way HACC actually runs:
//! every rank holds a slab of the box, the PM solve uses a distributed FFT
//! with ghost-plane exchanges, and the in-situ analysis (FOF with overload
//! regions + MBP centers) runs on the already-distributed particles — no
//! gather, no I/O.
//!
//! ```text
//! cargo run --release --example distributed_pipeline
//! ```

use comm::{CartDecomp, World};
use halo::{fof_and_centers_timed, FofConfig};
use nbody::{DistSim, SimConfig};

fn main() {
    let nranks = 4;
    let cfg = SimConfig {
        np: 32,
        ng: 32,
        nsteps: 30,
        seed: 20150715,
        ..SimConfig::default()
    };
    let box_size = cfg.cosmology.box_size;
    let link = 0.2 * box_size / cfg.np as f64;

    println!(
        "distributed run: {}^3 particles over {nranks} ranks (x-slabs), {} steps",
        cfg.np, cfg.nsteps
    );
    let world = World::new(nranks);
    let cfg_ref = &cfg;
    let results = world.run(move |comm| {
        // --- simulation: distributed FFT + ghost planes + re-homing ---
        let mut sim = DistSim::new(comm, cfg_ref.clone());
        let t0 = std::time::Instant::now();
        sim.run();
        let sim_seconds = t0.elapsed().as_secs_f64();
        let rms = sim.density_rms();

        // --- analysis: re-decompose to near-cubic blocks and run the
        //     rank-parallel FOF with overload regions ---
        let decomp = CartDecomp::new(comm.size(), box_size);
        let locals = comm::redistribute(comm, &decomp, sim.particles().to_vec());
        let fof = FofConfig {
            link_length: link,
            min_size: 20,
            overload_width: (25.0 * link).min(0.45 * decomp.min_block_width()),
        };
        let (catalog, timing) =
            fof_and_centers_timed(comm, &decomp, &locals, &fof, &dpp::Serial, 1e-3, usize::MAX);
        (
            comm.rank(),
            sim_seconds,
            rms,
            locals.len(),
            catalog.len(),
            catalog.halos.iter().map(|h| h.count()).max().unwrap_or(0),
            timing,
        )
    });

    println!("\nper-rank results:");
    println!(
        "{:>4} {:>10} {:>10} {:>9} {:>7} {:>9} {:>10} {:>10}",
        "rank", "sim (s)", "rms", "locals", "halos", "largest", "find (s)", "center (s)"
    );
    let mut total_halos = 0;
    for (rank, sim_s, rms, nloc, nhalos, largest, timing) in &results {
        println!(
            "{rank:>4} {sim_s:>10.2} {rms:>10.2} {nloc:>9} {nhalos:>7} {largest:>9} {:>10.4} {:>10.4}",
            timing.find_seconds, timing.center_seconds
        );
        total_halos += nhalos;
    }
    println!("\ntotal halos found: {total_halos} (each assigned to exactly one rank)");
    let find_max = results
        .iter()
        .map(|r| r.6.find_seconds)
        .fold(0.0f64, f64::max);
    let find_min = results
        .iter()
        .map(|r| r.6.find_seconds)
        .fold(f64::INFINITY, f64::min);
    let c_max = results
        .iter()
        .map(|r| r.6.center_seconds)
        .fold(0.0f64, f64::max);
    let c_min = results
        .iter()
        .map(|r| r.6.center_seconds)
        .fold(f64::INFINITY, f64::min);
    println!(
        "find imbalance {:.2}x, center imbalance {:.1}x — the paper's Table 2 pattern",
        find_max / find_min.max(1e-9),
        c_max / c_min.max(1e-9)
    );
}
