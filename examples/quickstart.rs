//! Quickstart: run a small HACC-style simulation with CosmoTools attached,
//! exactly as the paper's Figure 1 "in-situ" panel: the analysis runs in the
//! same process, on the already-distributed particles, at the steps the
//! input deck requests.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cosmotools::{
    Config, HaloFinderTask, InSituAnalysisManager, PowerSpectrumTask, Product, SoMassTask,
};
use dpp::Threaded;
use nbody::{SimConfig, Simulation};

fn main() {
    let backend = Threaded::with_available_parallelism();

    // The simulation "input deck" side: a 32³ run to z = 0.
    let cfg = SimConfig {
        np: 32,
        ng: 32,
        nsteps: 30,
        seed: 20150715,
        ..SimConfig::default()
    };
    let box_size = cfg.cosmology.box_size;

    // The CosmoTools configuration file.
    let deck = Config::parse(
        "[powerspectrum]\n\
         enabled = true\n\
         every = 10\n\
         bins = 16\n\
         [halofinder]\n\
         enabled = true\n\
         linking_length = 0.2\n\
         min_size = 40\n\
         center_threshold = 100000\n\
         at_final_step = true\n\
         [somass]\n\
         enabled = true\n\
         delta = 200\n",
    )
    .expect("valid deck");

    let mut manager = InSituAnalysisManager::new();
    manager.register(Box::new(PowerSpectrumTask::new()));
    manager.register(Box::new(HaloFinderTask::new()));
    manager.register(Box::new(SoMassTask::new()));
    manager.configure(&deck).expect("configure");

    println!(
        "running {}^3 particles in a ({} Mpc/h)^3 box, {} steps, backend `{}`...",
        cfg.np,
        box_size,
        cfg.nsteps,
        dpp::Backend::name(&backend)
    );
    let t0 = std::time::Instant::now();
    let mut sim = Simulation::new(&backend, cfg);
    sim.run_with_hook(&backend, |step, sim| {
        let ran = manager.execute_at(
            step,
            sim.total_steps(),
            sim.redshift(),
            sim.particles(),
            box_size,
            &backend,
        );
        if ran > 0 {
            println!(
                "  step {step:>3} (z = {:>6.3}): {ran} analysis task(s) ran",
                sim.redshift()
            );
        }
    });
    println!(
        "simulation + in-situ analysis: {:.2} s",
        t0.elapsed().as_secs_f64()
    );

    // Walk the products like the storage system would.
    for p in manager.products() {
        match p {
            Product::PowerSpectrum { step, bins } => {
                let peak = bins
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                println!(
                    "power spectrum @ step {step}: {} bins, peak P(k) at k = {:.3} h/Mpc",
                    bins.len(),
                    peak.0
                );
            }
            Product::Halos { step, catalog } => {
                let centered = catalog
                    .halos
                    .iter()
                    .filter(|h| h.mbp_center.is_some())
                    .count();
                let largest = catalog.halos.iter().map(|h| h.count()).max().unwrap_or(0);
                println!(
                    "halos @ step {step}: {} halos (largest {largest} particles), {centered} centered in situ",
                    catalog.len()
                );
            }
            Product::SoMasses { step, masses } => {
                println!("SO masses @ step {step}: {} halos measured", masses.len());
            }
            Product::Subhalos { step, counts } => {
                println!("subhalos @ step {step}: {} parents searched", counts.len());
            }
            Product::Image { step, frame } => {
                println!(
                    "frame @ step {step}: {}x{} {}-axis projection ({} of {} particles)",
                    frame.width,
                    frame.height,
                    frame.axis.label(),
                    frame.selected,
                    frame.total
                );
            }
        }
    }

    // Timing records — the paper's "negligible overhead" claim is observable.
    println!("\nper-task timings:");
    for r in manager.records() {
        println!(
            "  {:<16} step {:>3}: {:>8.3} s",
            r.algorithm, r.step, r.seconds
        );
    }
}
