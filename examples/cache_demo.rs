//! Incremental re-execution demo: the same workflows run twice against one
//! content-addressed artifact cache. The cold pass computes and stores every
//! artifact; the warm pass must answer all of them from the cache — zero
//! re-run analysis steps — and reproduce every Level 3 catalog byte for
//! byte. The assertions panic (nonzero exit) on any violation, so CI runs
//! this example as the incremental-re-execution check.
//!
//! ```text
//! cargo run --release --example cache_demo
//! ```

use cache::ArtifactCache;
use cosmotools::encode_centers;
use dpp::Threaded;
use hacc_core::{format_table4, JobCost, PhaseSeconds, RunnerConfig, TestBed, WorkflowCost};
use nbody::SimConfig;
use std::sync::Arc;

fn main() {
    let backend = Threaded::with_available_parallelism();
    let workdir = std::env::temp_dir().join("hacc_cache_demo");
    let cache_dir = workdir.join("artifact_cache");
    // Start cold: the first pass must miss for every artifact.
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache = Arc::new(ArtifactCache::open(&cache_dir, Some(256 << 20)).expect("open cache"));

    let cfg = RunnerConfig {
        sim: SimConfig {
            np: 32,
            ng: 32,
            nsteps: 30,
            seed: 77,
            ..SimConfig::default()
        },
        nranks: 8,
        post_ranks: 2,
        threshold: 200,
        min_size: 40,
        workdir,
        cache: Some(Arc::clone(&cache)),
        ..Default::default()
    };
    let bed = TestBed::create(cfg, &backend);
    println!(
        "simulation: {:.2} s ({} particles), artifact cache at {}",
        bed.sim_seconds,
        bed.particles.len(),
        cache.dir().display()
    );

    let run_all = |label: &str| {
        println!("\n-- {label} pass --");
        let runs = [
            bed.run_offline_only(&backend),
            bed.run_combined_simple(&backend),
            bed.run_combined_intransit(&backend),
            bed.run_combined_coscheduled(&backend, 8),
        ];
        for r in &runs {
            println!(
                "{:<26} hits {:>3}  misses {:>3}  read {:>7.3} s  analysis {:>7.3} s  saved {:>7.3} s",
                r.strategy,
                r.cache_hits,
                r.cache_misses,
                r.phases.read,
                r.phases.analysis,
                r.saved_analysis_seconds
            );
        }
        runs
    };
    // The cold pass already shares artifacts *across* strategies (simple and
    // in-transit memoize the same Level 2 centers), so some hits show up
    // even here; the warm pass must then hit for everything.
    let cold = run_all("cold");
    let warm = run_all("warm");

    let mut saved_wall = 0.0;
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(
            encode_centers(&c.centers),
            encode_centers(&w.centers),
            "{}: the warm catalog must be byte-identical with the cold one",
            c.strategy
        );
        assert_eq!(
            w.cache_misses, 0,
            "{}: a warm re-run may not recompute any artifact",
            c.strategy
        );
        assert!(
            w.cache_hits > 0,
            "{}: a warm re-run must answer from the cache",
            c.strategy
        );
        saved_wall += w.saved_analysis_seconds;
    }
    let s = cache.stats();
    println!(
        "\ncache counters: {} hits / {} misses / {} inserts / {} verify failures / {} evictions; {} bytes in {} entries",
        s.hits,
        s.misses,
        s.inserts,
        s.verify_failures,
        s.evictions,
        cache.total_bytes(),
        cache.len()
    );
    println!("warm passes re-ran zero analysis steps and reproduced every catalog byte-for-byte ✓");

    // Credit the measured savings into a Table 4-style report: saved
    // analysis wall-seconds × the nodes an analysis job holds = saved
    // node-seconds, surfaced next to the phase columns.
    let cosched = warm.last().expect("four runs");
    let cost = WorkflowCost {
        strategy: "co-scheduled (warm cache)".into(),
        simulation: JobCost {
            label: "simulation".into(),
            machine: "local".into(),
            nodes: bed.cfg.nranks,
            charge_factor: 1.0,
            phases: PhaseSeconds {
                sim: bed.sim_seconds,
                write: cosched.phases.write,
                ..Default::default()
            },
        },
        post: vec![JobCost {
            label: "post-processing".into(),
            machine: "local".into(),
            nodes: bed.cfg.post_ranks,
            charge_factor: 1.0,
            phases: PhaseSeconds {
                read: cosched.phases.read,
                redistribute: cosched.phases.redistribute,
                analysis: cosched.phases.analysis,
                ..Default::default()
            },
        }],
        saved_node_seconds: saved_wall * bed.cfg.post_ranks as f64,
    };
    println!();
    print!("{}", format_table4(std::slice::from_ref(&cost)));
    assert!(
        cost.saved_core_hours() > 0.0,
        "the warm passes must save measurable analysis time"
    );
}
