# Developer workflow shortcuts. `just` (or `just check`) mirrors CI.

# Run everything CI runs, in the same order.
check: fmt build test clippy

fmt:
    cargo fmt --all --check

build:
    cargo build --release

test:
    cargo test -q --workspace --release

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Dispatch-layer microbenchmarks (persistent pool vs spawn-per-dispatch).
bench-dispatch:
    cargo bench -p bench --bench dispatch_overhead

# Regenerate the paper's tables/figures benches.
bench-paper:
    cargo bench -p bench --bench paper_tables

# Re-measure the SoA/column kernel trajectory and rewrite the committed
# BENCH_kernels.json, then validate it with the CI gate. (The bench harness
# runs from the crate directory, hence the absolute path.)
bench-kernels:
    BENCH_KERNELS_JSON=$(pwd)/BENCH_kernels.json cargo bench -p bench --bench kernels
    cargo run --release -p bench --bin bench_check -- BENCH_kernels.json

# Run the workflow comparison with telemetry armed and export a Chrome
# trace (load trace.json in Perfetto / chrome://tracing).
trace-demo:
    cargo run --release --features recording --example workflow_compare -- --trace trace.json

# Incremental re-execution: every workflow twice against one artifact cache;
# the warm pass must hit for everything and change no catalog byte.
cache-demo:
    cargo run --release --example cache_demo

# Multi-campaign service: ten campaigns through an eight-slot batch queue
# must saturate with backpressure, recover, and match their solo catalogs.
service-demo:
    cargo run --release --example service_demo

# The multi-campaign chaos + crash-schedule suite (CI sweeps CHAOS_SEED 1-3).
service:
    cargo test -q --release --test service

# Distributed artifact store: a streamed campaign, one store node killed for
# good, and a warm re-run that must recompute nothing (byte-compared).
store-demo:
    cargo run --release --example store_demo

# The store crash-schedule + node-death suite (CI sweeps CHAOS_SEED 1-3).
store:
    cargo test -q --release --test store

# In-situ visualization demo: every-step density render through the
# CosmoTools task, final frame as HCIM + ASCII, render-phase cost line.
render-demo:
    cargo run --release --example density_render

# The render chaos suite: fault-storm byte-identity, exactly-once frame
# listener crash/restart, warm re-runs with zero re-renders (CI sweeps
# CHAOS_SEED 1-3).
render:
    cargo test -q --release --test render

# Fast conformance suite: differential backends, physics oracles, bounded
# crash-schedule exploration, listener regressions, golden fixtures.
conformance:
    cargo test -q --release --test conformance
    cargo test -q --release -p conformance

# Nightly scope: crash at every recorded (site, hit) pair instead of the
# first hit per site.
conformance-exhaustive:
    CONFORMANCE_EXHAUSTIVE=1 cargo test -q --release --test conformance

# The smoke scenario sweep: 60 scenarios × 25 seeds on the virtual clock,
# artifacts (JSON/CSV/summary) under target/sweep.
sweep:
    cargo run --release -p scenarios --bin sweep -- --smoke

# The full grammar (648 scenarios: every machine × load × strategy × fault
# plan × scheduler, minus the excluded combinations).
sweep-full:
    cargo run --release -p scenarios --bin sweep -- --full --out target/sweep-full

# Regenerate the golden fixtures under tests/goldens/ after an intentional
# behaviour change (the only sanctioned way to update them).
bless:
    BLESS=1 cargo test -q --release --test conformance golden
    BLESS=1 cargo test -q --release --test sweep
