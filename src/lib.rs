//! # hacc-workflows
//!
//! A reproduction of *"Large-Scale Compute-Intensive Analysis via a Combined
//! In-Situ and Co-Scheduling Workflow Approach"* (SC '15): an analysis
//! framework for a HACC-style cosmological N-body code that combines in-situ
//! analysis with co-scheduled off-line jobs for the compute-intensive,
//! poorly load-balanced tasks.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`dpp`] | portable data-parallel primitives (PISTON/VTK-m equivalent) |
//! | [`comm`] | in-process MPI: ranks, collectives, domain decomposition |
//! | [`fft`] | power-of-two FFTs and 3-D grids |
//! | [`nbody`] | particle-mesh cosmology code (HACC equivalent) |
//! | [`halo`] | FOF halos, MBP centers, SO masses, subhalos, mass functions |
//! | [`cosmotools`] | the in-situ framework, input decks, data levels, binary I/O |
//! | [`simhpc`] | Titan/Rhea/Moonlight platform & batch-queue models |
//! | [`faults`] | deterministic, seed-driven fault injection for the chaos harness |
//! | [`hacc_core`] | the workflow engine: strategies, listener, autosplit, cost model, experiments |
//!
//! ## Quickstart
//!
//! ```
//! use dpp::Threaded;
//! use nbody::{SimConfig, Simulation};
//! use cosmotools::{Config, InSituAnalysisManager, HaloFinderTask, PowerSpectrumTask};
//!
//! let backend = Threaded::new(4);
//! let mut cfg = SimConfig::default();
//! cfg.np = 16; cfg.ng = 16; cfg.nsteps = 4;
//!
//! // Wire up CosmoTools exactly as HACC does: a manager called from the
//! // simulation's main loop, configured from an input deck.
//! let mut manager = InSituAnalysisManager::new();
//! manager.register(Box::new(PowerSpectrumTask::new()));
//! manager.register(Box::new(HaloFinderTask::new()));
//! let deck = Config::parse(cosmotools::default_deck()).unwrap();
//! manager.configure(&deck).unwrap();
//!
//! let mut sim = Simulation::new(&backend, cfg.clone());
//! let box_size = cfg.cosmology.box_size;
//! sim.run_with_hook(&backend, |step, sim| {
//!     manager.execute_at(step, sim.total_steps(), sim.redshift(),
//!                        sim.particles(), box_size, &backend);
//! });
//! assert!(!manager.products().is_empty());
//! ```

pub use comm;
pub use cosmotools;
pub use dpp;
pub use faults;
pub use fft;
pub use hacc_core;
pub use halo;
pub use nbody;
pub use simhpc;
